//! mic-q-EGO: multi-infill-criteria q-EGO (the paper's Algorithm 2).
//!
//! Like KB-q-EGO, but each fantasy step maximizes **two** criteria on
//! the *same* model state — Expected Improvement (explorative) and the
//! confidence-bound criterion UCB (exploitative, Table 3's "EI/UCB
//! 50%") — yielding two candidates per model conditioning. This halves
//! the number of sequential surrogate updates per cycle, the mechanism
//! the paper credits for mic-q-EGO's better large-batch behaviour.

use super::acq_multistart;
use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_acq::single::{optimize_single, ExpectedImprovement, UpperConfidenceBound};
use pbo_gp::FantasySurrogate;
use pbo_opt::Bounds;
use pbo_problems::Problem;

/// Build one multi-infill batch of `q` candidates. Returns the batch
/// plus the summed multistart restart shortfall. Generic over the
/// surrogate backend, like [`super::kb_qego::kb_batch`].
pub fn mic_batch<S: FantasySurrogate>(
    gp: &S,
    bounds: &Bounds,
    q: usize,
    cfg: &AlgoConfig,
    seed: u64,
) -> (Vec<Vec<f64>>, usize) {
    let mut model = gp.clone();
    let mut batch: Vec<Vec<f64>> = Vec::with_capacity(q);
    let mut shortfall = 0usize;
    let mut step = 0u64;
    while batch.len() < q {
        let f_best = model.best_observed(false);
        let ei = ExpectedImprovement { f_best };
        let ms = acq_multistart(cfg, seed.wrapping_add(step));
        let r1 = optimize_single(&model as &dyn pbo_gp::Surrogate, &ei, bounds, &[], &ms);
        shortfall += r1.restart_shortfall;
        let x1 = r1.x;
        batch.push(x1.clone());

        let mut fantasies: Vec<(Vec<f64>, f64)> = vec![(x1.clone(), model.predict_mean(&x1))];
        if batch.len() < q {
            // Second criterion on the *same* model state (Alg. 2 lines
            // 6–7: both argmax calls precede the partial update).
            let ucb = UpperConfidenceBound { beta: cfg.acq.ucb_beta };
            let ms2 = acq_multistart(cfg, seed.wrapping_add(step).wrapping_add(0x0CB));
            let r2 = optimize_single(&model as &dyn pbo_gp::Surrogate, &ucb, bounds, &[], &ms2);
            shortfall += r2.restart_shortfall;
            let x2 = r2.x;
            fantasies.push((x2.clone(), model.predict_mean(&x2)));
            batch.push(x2);
        }
        if batch.len() < q {
            // One partial update for the pair (line 11).
            let xs: Vec<Vec<f64>> = fantasies.iter().map(|(x, _)| x.clone()).collect();
            let ys: Vec<f64> = fantasies.iter().map(|(_, y)| *y).collect();
            if let Ok(updated) = model.condition_on(&xs, &ys) {
                model = updated;
            }
        }
        step += 2;
    }
    (batch, shortfall)
}

/// Drive a prepared engine with mic-q-EGO to budget exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::MicQEgo, e)
}

/// Run mic-q-EGO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("mic-q-ego")
        .build()
        .expect("invalid mic-q-EGO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn produces_exactly_q_candidates_even_for_odd_q() {
        let p = SyntheticFn::ackley(3);
        for q in [1usize, 2, 3, 5] {
            let budget = Budget::cycles(1, q).with_initial_samples(8);
            let r = run(&p, budget, AlgoConfig::test_profile(), 2);
            assert_eq!(r.n_simulations(), 8 + q, "q = {q}");
        }
    }

    #[test]
    fn fewer_conditionings_than_kb() {
        // Structural property: for q candidates, mic performs
        // ceil(q/2) − 1 conditionings vs KB's q − 1. We verify through
        // the public behaviour that both produce valid batches and that
        // mic is never slower in fixed-cost accounting (same per-call
        // price, fewer heavy steps is an implementation detail — here we
        // simply check both run to completion with equal recorded
        // cycles).
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(2, 4).with_initial_samples(8);
        let mic = run(&p, budget, AlgoConfig::test_profile(), 9);
        let kb = super::super::kb_qego::run(&p, budget, AlgoConfig::test_profile(), 9);
        assert_eq!(mic.n_cycles(), kb.n_cycles());
        assert_eq!(mic.n_simulations(), kb.n_simulations());
    }

    #[test]
    fn improves_over_initial_design() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 4);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }
}
