//! Cached-distance fitting workspace and inverse-free MLL evaluation.
//!
//! The naive [`crate::fit::mll_and_grad`] recomputes every pairwise
//! coordinate difference twice per evaluation (once inside
//! `Kernel::matrix`, once in the gradient contraction), allocates three
//! fresh `n x n` matrices, and forms the explicit inverse `K_y⁻¹` — an
//! extra `2n³` flops on top of the factorization. L-BFGS calls the
//! objective dozens of times per fit on *the same data*, so everything
//! that depends only on `x` is hoisted into a [`FitWorkspace`] prepared
//! once per [`crate::fit::fit_with`] / [`crate::fit::refit_warm_with`]
//! call:
//!
//! - packed per-dimension squared differences `(x_a[j] − x_b[j])²` for
//!   every pair `b < a` (pair-major: pair `p = a(a−1)/2 + b` owns `d`
//!   contiguous entries, and row `a`'s pairs are contiguous), from which
//!   every kernel and gradient evaluation re-derives scaled distances
//!   with one fused multiply-add pass per pair;
//! - reusable `K_y`, Cholesky-factor, and `L⁻ᵀ` buffers, so steady-state
//!   MLL evaluations allocate only O(n) scratch.
//!
//! The gradient never materializes `K_y⁻¹`. With `M = L⁻ᵀ`
//! (each row computed by an independent sparse triangular solve, in
//! parallel — see `Cholesky::inv_lower_t_into`):
//!
//! - `(K_y⁻¹)_ab = Σ_{k ≥ max(a,b)} M_ak M_bk` — a contiguous suffix dot
//!   product, fused directly into the per-pair lengthscale contraction;
//! - `tr(K_y⁻¹) = ‖M‖_F²`, which closes the outputscale and noise
//!   gradients through trace identities (derived below) without ever
//!   touching the full `n²` sum the naive path does:
//!
//! With `W = ααᵀ − K_y⁻¹`, `K = K_y − σ_n² I` and `K_y α = r`:
//!
//! `Σ_ab W_ab K_ab = αᵀr − n − σ_n² (αᵀα − tr K_y⁻¹)`  (outputscale),
//! `Σ_a  W_aa      = αᵀα − tr K_y⁻¹`                    (noise).
//!
//! Per evaluation this replaces `~4n³` flops (factor + inverse + two
//! O(n²d) difference passes) with `n³/3` (factor) + `n³/2` (triangular
//! inverse, gradient path only) + one O(n²d/2) fused contraction —
//! and the value-only path used to score multistart candidates skips
//! the triangular inverse entirely. The gradient-path assembly also
//! computes the radial gradient factor of every pair from the same
//! shared transcendental as the kernel value
//! ([`KernelType::rho_and_grad`]), so the contraction loop contains no
//! `sqrt`/`exp` at all.

use crate::kernel::KernelType;
use crate::{GpError, Result};
use pbo_linalg::vec_ops::dot;
use pbo_linalg::{parallel, Cholesky, Matrix};

/// Reusable buffers for repeated MLL evaluations on one training set.
///
/// Prepare once per fitting call with [`FitWorkspace::prepare`]; the
/// buffers survive across calls (and across engine cycles) so steady
/// state reuses prior allocations whenever shapes repeat.
#[derive(Debug)]
pub struct FitWorkspace {
    n: usize,
    d: usize,
    /// Packed pair-major squared differences: pair `p = a(a−1)/2 + b`
    /// (`b < a`) owns entries `[p·d, (p+1)·d)`.
    sqdiff: Vec<f64>,
    /// `n x n` buffer for `K_y` assembly (strict upper triangle unused —
    /// the factorization reads only the lower triangle and diagonal).
    ky: Matrix,
    /// Recycled backing store for the Cholesky factor.
    lbuf: Option<Matrix>,
    /// `n x n` buffer for `M = L⁻ᵀ` (gradient path only).
    minv: Matrix,
    /// Pair-major interleaved `[s²·rho(r), g(r)]` per pair (gradient path
    /// only): the assembly pass computes the kernel value and the radial
    /// gradient factor from one shared transcendental, so the pair
    /// contraction never re-derives distances.
    rg: Vec<f64>,
    /// Ragged row offsets into `rg`: row `a` owns `rg[a(a−1)..a(a+1)]`.
    rg_offsets: Vec<usize>,
    /// Copy of the design matrix the distance table was built from. When
    /// the next [`prepare`](FitWorkspace::prepare) sees a design whose
    /// leading rows equal this cache, only the new rows' pairs are
    /// appended (`O(n q d)` instead of `O(n² d)`) — the engine's
    /// append-only growth pattern across cycles. Any other change (a
    /// subsampled fitting view, reordered rows, a different problem)
    /// misses the check and triggers a full rebuild, so the cache can
    /// never serve stale distances.
    xcache: Matrix,
}

impl Default for FitWorkspace {
    fn default() -> Self {
        FitWorkspace::new()
    }
}

impl FitWorkspace {
    /// Empty workspace; buffers are sized lazily by [`prepare`].
    ///
    /// [`prepare`]: FitWorkspace::prepare
    pub fn new() -> Self {
        FitWorkspace {
            n: 0,
            d: 0,
            sqdiff: Vec::new(),
            ky: Matrix::zeros(0, 0),
            lbuf: None,
            minv: Matrix::zeros(0, 0),
            rg: Vec::new(),
            rg_offsets: Vec::new(),
            xcache: Matrix::zeros(0, 0),
        }
    }

    /// Number of training points currently prepared.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Input dimension currently prepared.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// (Re)compute the packed squared-difference table for the rows of
    /// `x` and (re)size the matrix buffers — once per fitting call,
    /// amortized over every subsequent MLL evaluation.
    ///
    /// When `x` extends the previously prepared design by appended rows
    /// (the engine's growth pattern between cycles, verified by an
    /// `O(n d)` prefix comparison against the cached copy), only the new
    /// rows' pairs are computed: `O(n q d)` instead of `O(n² d)`. The
    /// appended entries evaluate the identical per-pair expression, so
    /// the resulting table is bit-identical to a from-scratch rebuild
    /// (covered by a test). Any prefix mismatch — subsampled fitting
    /// views, reordered or edited rows — falls back to the full rebuild.
    pub fn prepare(&mut self, x: &Matrix) {
        let n = x.rows();
        let d = x.cols();
        let n0 = self.n;
        let pairs = n * n.saturating_sub(1) / 2;
        let prefix_hit = d == self.d
            && n0 > 0
            && n >= n0
            && self.xcache.rows() == n0
            && self.xcache.cols() == d
            && (0..n0).all(|i| x.row(i) == self.xcache.row(i));
        let start = if prefix_hit { n0 } else { 0 };
        self.n = n;
        self.d = d;
        if !prefix_hit {
            self.sqdiff.clear();
        }
        self.sqdiff.resize(pairs * d, 0.0);
        let mut p = start * start.saturating_sub(1) / 2 * d;
        for a in start..n {
            let xa = x.row(a);
            for b in 0..a {
                let xb = x.row(b);
                for j in 0..d {
                    let diff = xa[j] - xb[j];
                    self.sqdiff[p] = diff * diff;
                    p += 1;
                }
            }
        }
        self.xcache.reset_zeros(n, d);
        self.xcache.as_mut_slice().copy_from_slice(x.as_slice());
        self.rg_offsets.clear();
        self.rg_offsets.reserve(n + 1);
        for a in 0..=n {
            self.rg_offsets.push(a * a.saturating_sub(1));
        }
        if self.ky.rows() != n || self.ky.cols() != n {
            self.ky = Matrix::zeros(n, n);
            self.minv = Matrix::zeros(n, n);
            self.lbuf = None;
        }
    }

    /// Assemble `K_y` (kernel matrix plus noise on the diagonal) into the
    /// cached buffer from the packed squared differences: lower triangle
    /// and diagonal only, in parallel row blocks. The strict upper
    /// triangle is never read (the Cholesky reads `a[(i, j)]` with
    /// `j ≤ i` only), so no mirror pass is needed.
    fn assemble_ky(
        &mut self,
        family: KernelType,
        outputscale: f64,
        noise: f64,
        inv_ls2: &[f64],
    ) {
        let n = self.n;
        let d = self.d;
        let sqdiff = &self.sqdiff;
        // Half the entries of a transcendental-weighted full assembly.
        let work = n * n * (8 * d + 16) / 2;
        parallel::for_each_row_chunk(self.ky.as_mut_slice(), n, work, |a, row| {
            let base = a * a.saturating_sub(1) / 2 * d;
            for b in 0..a {
                let sq = &sqdiff[base + b * d..base + (b + 1) * d];
                let mut r2 = 0.0;
                for j in 0..d {
                    r2 += sq[j] * inv_ls2[j];
                }
                row[b] = outputscale * family.rho(r2.sqrt());
            }
            row[a] = outputscale + noise;
        });
    }

    /// Gradient-path assembly: fill the interleaved `rg` buffer with
    /// `[s²·rho(r), g(r)]` per pair, computing the kernel value and the
    /// radial gradient factor from the *same* transcendental
    /// (`KernelType::rho_and_grad`). `K_y` is never materialized densely
    /// on this path — the factorization reads the packed kernel values
    /// in place via `Cholesky::factor_packed_reusing` (stride 2).
    fn assemble_rg(&mut self, family: KernelType, outputscale: f64, inv_ls2: &[f64]) {
        let n = self.n;
        let d = self.d;
        self.rg.resize(n * n.saturating_sub(1), 0.0);
        let sqdiff = &self.sqdiff;
        let work = n * n * (8 * d + 16) / 2;
        parallel::for_each_ragged_row_chunk(&mut self.rg, &self.rg_offsets, work, |a, row| {
            let base = a * a.saturating_sub(1) / 2 * d;
            for b in 0..a {
                let sq = &sqdiff[base + b * d..base + (b + 1) * d];
                let mut r2 = 0.0;
                for j in 0..d {
                    r2 += sq[j] * inv_ls2[j];
                }
                let (rho, gf) = family.rho_and_grad(r2.sqrt());
                row[2 * b] = outputscale * rho;
                row[2 * b + 1] = gf;
            }
        });
    }
}

/// Per-evaluation parameter decode shared by the value and gradient
/// paths. Matches `fit::unpack`'s arithmetic exactly (`exp` then square)
/// so workspace and naive paths agree to rounding error.
struct Decoded {
    outputscale: f64,
    noise: f64,
    inv_ls2: Vec<f64>,
}

fn decode(d: usize, params: &[f64]) -> Result<Decoded> {
    if params.len() != d + 2 {
        return Err(GpError::BadHyperparameters(format!(
            "{} params for dim {d}",
            params.len()
        )));
    }
    let inv_ls2 = params[..d]
        .iter()
        .map(|v| {
            let l = v.exp();
            1.0 / (l * l)
        })
        .collect();
    Ok(Decoded { outputscale: params[d].exp(), noise: params[d + 1].exp(), inv_ls2 })
}

/// Factor `K_y` and compute the profiled-trend MLL pieces. Returns the
/// factorization (whose backing buffer must be returned to the workspace
/// via `into_l`) plus the value, weights `α`, and residual `r`.
fn factored(
    ws: &mut FitWorkspace,
    family: KernelType,
    y_std: &[f64],
    dec: &Decoded,
    with_grad: bool,
) -> Result<(Cholesky, f64, Vec<f64>, Vec<f64>)> {
    let n = ws.n;
    if y_std.len() != n {
        return Err(GpError::BadTrainingData(format!(
            "{} targets for {n} prepared points",
            y_std.len()
        )));
    }
    let buf = ws.lbuf.take().unwrap_or_else(|| Matrix::zeros(0, 0));
    // The packed gradient-path factorization is bit-identical to the
    // dense one (see `Cholesky::factor_packed_reusing`), so the value
    // and gradient paths agree exactly.
    let chol = if with_grad {
        ws.assemble_rg(family, dec.outputscale, &dec.inv_ls2);
        Cholesky::factor_packed_reusing(&ws.rg, 2, dec.outputscale + dec.noise, n, buf)?
    } else {
        ws.assemble_ky(family, dec.outputscale, dec.noise, &dec.inv_ls2);
        Cholesky::factor_reusing(&ws.ky, buf)?
    };

    let ones = vec![1.0; n];
    let (kinv_ones, kinv_y) = chol.solve_pair(&ones, y_std)?;
    let denom = dot(&ones, &kinv_ones).max(1e-300);
    let trend = dot(&ones, &kinv_y) / denom;
    let r: Vec<f64> = y_std.iter().map(|v| v - trend).collect();
    let alpha: Vec<f64> =
        kinv_y.iter().zip(&kinv_ones).map(|(a, b)| a - trend * b).collect();
    let mll = -0.5 * dot(&r, &alpha)
        - 0.5 * chol.log_det()
        - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    Ok((chol, mll, alpha, r))
}

/// Workspace-backed log marginal likelihood, value only.
///
/// Skips all gradient machinery (no triangular inverse): one kernel
/// assembly from the cached distances, one buffer-reusing factorization,
/// two triangular solves. This is the path multistart scoring and any
/// gradient-free probe should take.
pub fn mll_value_ws(
    family: KernelType,
    ws: &mut FitWorkspace,
    y_std: &[f64],
    params: &[f64],
) -> Result<f64> {
    let dec = decode(ws.d, params)?;
    let (chol, mll, _alpha, _r) = factored(ws, family, y_std, &dec, false)?;
    ws.lbuf = Some(chol.into_l());
    Ok(mll)
}

/// Workspace-backed log marginal likelihood and gradient in
/// log-parameter space. Numerically equivalent to
/// [`crate::fit::mll_and_grad`] (property-tested to ≤1e-10 relative
/// error) but inverse-free: `K_y⁻¹` entries are suffix dot products of
/// `M = L⁻ᵀ` rows, fused into the pair contraction, and the outputscale
/// / noise gradients close through trace identities (module docs).
pub fn mll_and_grad_ws(
    family: KernelType,
    ws: &mut FitWorkspace,
    y_std: &[f64],
    params: &[f64],
) -> Result<(f64, Vec<f64>)> {
    let dec = decode(ws.d, params)?;
    let (chol, mll, alpha, r) = factored(ws, family, y_std, &dec, true)?;
    let n = ws.n;
    let d = ws.d;
    chol.inv_lower_t_into(&mut ws.minv);
    ws.lbuf = Some(chol.into_l());

    let m = &ws.minv;
    let sqdiff = &ws.sqdiff;
    let rg = &ws.rg;
    let rg_offsets = &ws.rg_offsets;
    let alpha_ref = &alpha;
    let dec_ref = &dec;
    // Lengthscale contraction over pairs b < a, parallel over contiguous
    // row chunks (each chunk owns one partial accumulator). Row `a`
    // costs ~a(n−a) suffix-dot flops; contiguous chunking is imbalanced
    // but within ~2x of optimal, which the fan-out tolerates. The radial
    // gradient factors were stored by the assembly pass, so the loop is
    // free of transcendentals and distance recomputation; the common
    // `1/ℓ_j²` factor is applied once at the end, and rows are consumed
    // two at a time so each streamed `M` row `b` is charged against both —
    // halving the dominant memory traffic. Both are pure reassociations
    // worth ~eps relative error, far inside the 1e-10 equivalence budget.
    let chunk = 64usize;
    let n_chunks = n.div_ceil(chunk).max(1);
    let partials: Vec<Vec<f64>> = parallel::par_map(n_chunks, 1, |c| {
        let mut g = vec![0.0; d];
        let mut accum = |a: usize, b: usize, kinv_ab: f64| {
            let w = alpha_ref[a] * alpha_ref[b] - kinv_ab;
            let wgf = w * dec_ref.outputscale * rg[rg_offsets[a] + 2 * b + 1];
            let base = a * a.saturating_sub(1) / 2 * d;
            let sq = &sqdiff[base + b * d..base + (b + 1) * d];
            for j in 0..d {
                g[j] += wgf * sq[j];
            }
        };
        let lo = c * chunk;
        let hi = ((c + 1) * chunk).min(n);
        let mut a = lo;
        while a < hi {
            if a + 1 < hi {
                let ma = m.row(a);
                let ma1 = m.row(a + 1);
                for b in 0..a {
                    let mb = m.row(b);
                    let k0 = dot(&ma[a..], &mb[a..]);
                    let k1 = dot(&ma1[a + 1..], &mb[a + 1..]);
                    accum(a, b, k0);
                    accum(a + 1, b, k1);
                }
                accum(a + 1, a, dot(&ma1[a + 1..], &ma[a + 1..]));
                a += 2;
            } else {
                let ma = m.row(a);
                for b in 0..a {
                    accum(a, b, dot(&ma[a..], &m.row(b)[a..]));
                }
                a += 1;
            }
        }
        g
    });
    let mut grad = vec![0.0; d + 2];
    for p in &partials {
        for j in 0..d {
            grad[j] += p[j];
        }
    }
    for j in 0..d {
        grad[j] *= dec.inv_ls2[j];
    }
    let tr_kinv = dot(m.as_slice(), m.as_slice());
    let ata = dot(&alpha, &alpha);
    let diag_w = ata - tr_kinv;
    grad[d] = 0.5 * (dot(&alpha, &r) - n as f64 - dec.noise * diag_w);
    grad[d + 1] = 0.5 * dec.noise * diag_w;
    Ok((mll, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::mll_and_grad;
    use pbo_sampling::SeedStream;
    use rand::Rng;

    fn training_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let stream = SeedStream::new(seed);
        let mut rng = stream.fork_named("ws-data").rng();
        let mut x = Matrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..d {
                let v: f64 = rng.gen();
                x[(i, j)] = v;
                s += (2.0 + j as f64) * v;
            }
            y.push(s.sin() + 0.1 * s);
        }
        (x, y)
    }

    fn standardized(y: &[f64]) -> Vec<f64> {
        let m = pbo_linalg::vec_ops::mean(y);
        let s = pbo_linalg::vec_ops::variance(y).sqrt().max(1e-8);
        y.iter().map(|v| (v - m) / s).collect()
    }

    #[test]
    fn workspace_matches_naive_all_families() {
        let (x, y) = training_data(17, 3, 42);
        let y_std = standardized(&y);
        let params =
            vec![(0.3f64).ln(), (0.8f64).ln(), (1.5f64).ln(), (1.7f64).ln(), (2e-4f64).ln()];
        let mut ws = FitWorkspace::new();
        ws.prepare(&x);
        for family in [KernelType::Matern52, KernelType::Matern32, KernelType::Rbf] {
            let (v_naive, g_naive) = mll_and_grad(family, &x, &y_std, &params).unwrap();
            let (v_ws, g_ws) = mll_and_grad_ws(family, &mut ws, &y_std, &params).unwrap();
            assert!(
                (v_naive - v_ws).abs() <= 1e-10 * (1.0 + v_naive.abs()),
                "{}: value {v_naive} vs {v_ws}",
                family.name()
            );
            for (i, (a, b)) in g_ws.iter().zip(&g_naive).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-10 * (1.0 + b.abs()),
                    "{} grad[{i}]: ws {a} vs naive {b}",
                    family.name()
                );
            }
            let v_only = mll_value_ws(family, &mut ws, &y_std, &params).unwrap();
            assert_eq!(v_only, v_ws, "{}", family.name());
        }
    }

    #[test]
    fn repeated_evaluations_reuse_buffers_correctly() {
        // Evaluate at several parameter vectors in sequence through the
        // same workspace; stale-buffer bugs would poison later results.
        let (x, y) = training_data(12, 2, 7);
        let y_std = standardized(&y);
        let mut ws = FitWorkspace::new();
        ws.prepare(&x);
        let stream = SeedStream::new(99);
        let mut rng = stream.fork_named("params").rng();
        for _ in 0..8 {
            let params = vec![
                rng.gen_range(-2.0..1.0),
                rng.gen_range(-2.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-9.0..-2.0),
            ];
            let (v_naive, g_naive) =
                mll_and_grad(KernelType::Matern52, &x, &y_std, &params).unwrap();
            let (v_ws, g_ws) =
                mll_and_grad_ws(KernelType::Matern52, &mut ws, &y_std, &params).unwrap();
            assert!((v_naive - v_ws).abs() <= 1e-10 * (1.0 + v_naive.abs()));
            for (a, b) in g_ws.iter().zip(&g_naive) {
                assert!((a - b).abs() <= 1e-10 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn prepare_handles_growing_training_sets() {
        // Engine reuse pattern: the same workspace sees n grow cycle by
        // cycle. Each prepare must fully rebuild the distance table.
        let mut ws = FitWorkspace::new();
        for n in [5usize, 9, 14] {
            let (x, y) = training_data(n, 2, n as u64);
            let y_std = standardized(&y);
            ws.prepare(&x);
            assert_eq!(ws.n(), n);
            let params = vec![(0.5f64).ln(), (0.5f64).ln(), 0.0, (1e-4f64).ln()];
            let (v_naive, _) =
                mll_and_grad(KernelType::Matern52, &x, &y_std, &params).unwrap();
            let v_ws =
                mll_value_ws(KernelType::Matern52, &mut ws, &y_std, &params).unwrap();
            assert!((v_naive - v_ws).abs() <= 1e-10 * (1.0 + v_naive.abs()));
        }
    }

    #[test]
    fn incremental_prepare_is_bit_identical_to_full_rebuild() {
        // Append-only growth must take the O(nqd) prefix path and still
        // produce a distance table (and therefore MLL values) that are
        // bit-identical to a from-scratch prepare.
        let (x_full, y) = training_data(21, 3, 33);
        let y_std = standardized(&y);
        let params = vec![(0.4f64).ln(), (0.9f64).ln(), (1.1f64).ln(), 0.0, (1e-3f64).ln()];

        let mut inc = FitWorkspace::new();
        for n in [9usize, 13, 21] {
            let view = Matrix::from_fn(n, 3, |i, j| x_full[(i, j)]);
            inc.prepare(&view);
        }
        let mut fresh = FitWorkspace::new();
        fresh.prepare(&x_full);
        assert_eq!(inc.sqdiff.len(), fresh.sqdiff.len());
        for (i, (a, b)) in inc.sqdiff.iter().zip(&fresh.sqdiff).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sqdiff[{i}]");
        }
        let v_inc = mll_value_ws(KernelType::Matern52, &mut inc, &y_std, &params).unwrap();
        let v_fresh = mll_value_ws(KernelType::Matern52, &mut fresh, &y_std, &params).unwrap();
        assert_eq!(v_inc.to_bits(), v_fresh.to_bits());
    }

    #[test]
    fn prepare_prefix_mismatch_triggers_full_rebuild() {
        // Editing a row inside the prefix (the subsample/reorder case)
        // must invalidate the cache, not serve stale distances.
        let (x1, _) = training_data(10, 2, 8);
        let mut ws = FitWorkspace::new();
        ws.prepare(&x1);
        let mut x2 = x1.clone();
        x2[(3, 1)] += 0.25;
        ws.prepare(&x2);
        let mut fresh = FitWorkspace::new();
        fresh.prepare(&x2);
        for (i, (a, b)) in ws.sqdiff.iter().zip(&fresh.sqdiff).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sqdiff[{i}]");
        }
        // Shrinking is also a miss.
        let x3 = Matrix::from_fn(6, 2, |i, j| x2[(i, j)]);
        ws.prepare(&x3);
        let mut fresh3 = FitWorkspace::new();
        fresh3.prepare(&x3);
        assert_eq!(ws.sqdiff.len(), fresh3.sqdiff.len());
        for (a, b) in ws.sqdiff.iter().zip(&fresh3.sqdiff) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn single_point_training_set() {
        let x = Matrix::from_rows(&[vec![0.3, 0.7]]).unwrap();
        let y_std = vec![0.0];
        let mut ws = FitWorkspace::new();
        ws.prepare(&x);
        let params = vec![0.0, 0.0, 0.0, (1e-2f64).ln()];
        let (v, g) =
            mll_and_grad_ws(KernelType::Matern52, &mut ws, &y_std, &params).unwrap();
        let (vn, gn) = mll_and_grad(KernelType::Matern52, &x, &y_std, &params).unwrap();
        assert!((v - vn).abs() <= 1e-12 * (1.0 + vn.abs()));
        for (a, b) in g.iter().zip(&gn) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let (x, _) = training_data(6, 2, 1);
        let mut ws = FitWorkspace::new();
        ws.prepare(&x);
        let params = vec![0.0, 0.0, 0.0, (1e-4f64).ln()];
        assert!(matches!(
            mll_value_ws(KernelType::Rbf, &mut ws, &[0.0; 3], &params),
            Err(GpError::BadTrainingData(_))
        ));
        assert!(matches!(
            mll_value_ws(KernelType::Rbf, &mut ws, &[0.0; 6], &params[..3]),
            Err(GpError::BadHyperparameters(_))
        ));
    }
}
