//! Workspace-level property tests: invariants that must hold across
//! crate boundaries for arbitrary inputs.

use pbo::acq::single::{ExpectedImprovement, ProbabilityOfImprovement};
use pbo::acq::Acquisition;
use pbo::gp::kernel::{Kernel, KernelType};
use pbo::gp::GaussianProcess;
use pbo::linalg::Matrix;
use pbo::uphes::schedule::Schedule;
use pbo::uphes::Simulator;
use proptest::prelude::*;

fn gp_from_data(xs: &[Vec<f64>], ys: &[f64]) -> GaussianProcess {
    let x = Matrix::from_rows(xs).unwrap();
    let mut kernel = Kernel::new(KernelType::Matern52, xs[0].len());
    kernel.lengthscales = vec![0.4; xs[0].len()];
    GaussianProcess::new(x, ys, kernel, 1e-5).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gp_predictions_finite_for_arbitrary_data(
        raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, -100.0f64..100.0), 4..20),
        probe in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let xs: Vec<Vec<f64>> = raw.iter().map(|(a, b, _)| vec![*a, *b]).collect();
        let ys: Vec<f64> = raw.iter().map(|(_, _, y)| *y).collect();
        let gp = gp_from_data(&xs, &ys);
        let (m, v) = gp.predict(&[probe.0, probe.1]);
        prop_assert!(m.is_finite());
        prop_assert!(v.is_finite() && v >= 0.0);
    }

    #[test]
    fn ei_nonnegative_pi_is_probability(
        raw in prop::collection::vec((0.0f64..1.0, -5.0f64..5.0), 4..15),
        probe in 0.0f64..1.0,
    ) {
        let xs: Vec<Vec<f64>> = raw.iter().map(|(a, _)| vec![*a]).collect();
        let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();
        let gp = gp_from_data(&xs, &ys);
        let f_best = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let ei = ExpectedImprovement { f_best };
        let pi = ProbabilityOfImprovement { f_best };
        let e = ei.value(&gp, &[probe]);
        let p = pi.value(&gp, &[probe]);
        prop_assert!(e >= 0.0, "EI = {e}");
        prop_assert!((0.0..=1.0).contains(&p), "PI = {p}");
    }

    #[test]
    fn ei_gradient_matches_fd_on_random_models(
        raw in prop::collection::vec((0.0f64..1.0, -2.0f64..2.0), 5..12),
        probe in 0.05f64..0.95,
    ) {
        let xs: Vec<Vec<f64>> = raw.iter().map(|(a, _)| vec![*a]).collect();
        let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();
        // Skip degenerate all-equal targets (zero-variance posterior).
        prop_assume!(pbo::linalg::vec_ops::variance(&ys) > 1e-6);
        let gp = gp_from_data(&xs, &ys);
        let f_best = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let ei = ExpectedImprovement { f_best };
        let (_, g) = ei.value_grad(&gp, &[probe]);
        let fd = pbo::opt::fd_gradient(|x| ei.value(&gp, x), &[probe], 1e-6);
        prop_assert!((g[0] - fd[0]).abs() < 1e-3 * (1.0 + fd[0].abs()),
                     "grad {} vs fd {}", g[0], fd[0]);
    }

    #[test]
    fn uphes_profit_always_finite_and_bounded(
        x in prop::collection::vec(0.0f64..1.0, 12),
    ) {
        let sim = Simulator::maizeret(1);
        let p = sim.expected_profit(&x);
        prop_assert!(p.is_finite());
        // Physical sanity: one day of an 8 MW plant cannot make or lose
        // more than ~50 k EUR even under maximal penalties.
        prop_assert!(p.abs() < 50_000.0, "profit {p}");
    }

    #[test]
    fn uphes_breakdown_consistent_for_any_decision(
        x in prop::collection::vec(0.0f64..1.0, 12),
    ) {
        let sim = Simulator::maizeret(2);
        let b = sim.evaluate_detailed(&x);
        let recomposed = b.energy_revenue - b.pumping_cost + b.reserve_revenue
            - b.penalties + b.water_value;
        prop_assert!((b.profit - recomposed).abs() < 1e-6);
        prop_assert!(b.pumping_cost >= 0.0);
        prop_assert!(b.penalties >= 0.0);
        prop_assert!(b.reserve_revenue >= 0.0);
    }

    #[test]
    fn schedule_decode_total_within_physical_limits(
        x in prop::collection::vec(0.0f64..1.0, 12),
    ) {
        let s = Schedule::decode(&x);
        for t in 0..pbo::uphes::STEPS {
            let p = s.power_at_step(t);
            let r = s.reserve_at_step(t);
            prop_assert!((-8.0..=8.0).contains(&p));
            prop_assert!((0.0..=3.0).contains(&r));
        }
    }
}
