#!/bin/bash
# Reproduction driver. Assumes scripts/ci.sh has passed first.
#
#   scripts/run_experiments.sh                   # full repro sweep (all tables/figures)
#   scripts/run_experiments.sh table7 fig9 ...   # selected artifacts
#   scripts/run_experiments.sh --bench-acq       # re-measure the BENCH_acq.json numbers
#   scripts/run_experiments.sh --bench-fit       # re-measure the BENCH_fit.json numbers
#
# Extra repro arguments pass through, e.g.:
#   scripts/run_experiments.sh table6 --runs 10 --profile paper
#
# Replication grids run through the checkpointing orchestrator: add
# --jobs N to shard a grid over N workers (artifacts are byte-identical
# for any N) and --resume to continue an interrupted sweep from the
# checkpoints under results/checkpoints/. JOBS=N (env) sets a default
# worker count for a plain sweep:
#   JOBS=4 scripts/run_experiments.sh table5
#   scripts/run_experiments.sh table5 --jobs 4 --resume
#
# --bench-acq / --bench-fit write machine-readable per-benchmark lines
# (mean/stddev/min ns) to results/bench_acq.jsonl / results/bench_fit.jsonl
# via the vendored criterion shim's CRITERION_SHIM_OUT hook. Run them on
# an otherwise idle machine. Note for BENCH_acq.json: the recorded file
# was measured in a single-core container, so its new_threadsN row shows
# no fan-out gain; on a multi-core host the same command is what
# demonstrates the parallel-multistart speedup (new_threadsN vs
# prepr_serial), bit-identical to the 1-thread run. Narrow a re-run to
# the headline group with CRITERION_SHIM_FILTER=acq_ei_multistart.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

case "${1:-}" in
  --bench-acq)
    out=results/bench_acq.jsonl
    : > "$out"
    echo "== acquisition_scaling bench -> $out =="
    # Absolute path: the bench binary's CWD is the *package* dir, so a
    # relative CRITERION_SHIM_OUT would be dropped silently.
    CRITERION_SHIM_OUT="$PWD/$out" cargo bench -q -p pbo-bench --bench acquisition_scaling
    echo "done; compare against BENCH_acq.json"
    ;;
  --bench-fit)
    out=results/bench_fit.jsonl
    : > "$out"
    echo "== fit_scaling bench -> $out =="
    CRITERION_SHIM_OUT="$PWD/$out" cargo bench -q -p pbo-bench --bench fit_scaling
    echo "done; compare against BENCH_fit.json"
    ;;
  *)
    artifacts=("$@")
    [[ ${#artifacts[@]} -eq 0 ]] && artifacts=(all)
    # JOBS=N applies a default worker count unless --jobs was given
    # explicitly among the pass-through arguments.
    if [[ -n "${JOBS:-}" ]] && [[ ! " ${artifacts[*]} " == *" --jobs "* ]]; then
      artifacts+=(--jobs "$JOBS")
    fi
    cargo run --release -p pbo-bench --bin repro -- "${artifacts[@]}"
    ;;
esac
