//! The techno-economic UPHES simulator: decision vector → expected
//! daily profit \[EUR\].

use crate::geometry::{default_lower, default_upper, Reservoir};
use crate::machine::{Dispatch, Machine, Mode};
use crate::market::{DayAheadMarket, ReserveMarket};
use crate::scenario::{Scenario, ScenarioSet};
use crate::schedule::Schedule;
use crate::{DECISION_DIM, G, RHO, STEPS, STEP_HOURS};

/// Full plant/market configuration with Maizeret-like defaults.
#[derive(Debug, Clone)]
pub struct PlantConfig {
    /// Upper (surface) reservoir.
    pub upper: Reservoir,
    /// Lower (underground pit) reservoir.
    pub lower: Reservoir,
    /// Pump-turbine unit.
    pub machine: Machine,
    /// Day-ahead market.
    pub market: DayAheadMarket,
    /// Reserve market.
    pub reserve: ReserveMarket,
    /// Initial fill fraction of the upper basin.
    pub initial_upper_frac: f64,
    /// Initial fill fraction of the lower basin.
    pub initial_lower_frac: f64,
    /// Elevation of the surrounding water table \[m\] (groundwater flows
    /// into the pit while its surface sits below this).
    pub aquifer_elevation: f64,
    /// Groundwater exchange coefficient [m³/s per m of level gap].
    pub groundwater_coeff: f64,
    /// Penalty per infeasible dispatch event \[EUR\] (plus a per-MW term).
    pub infeasible_penalty: f64,
    /// Extra infeasibility penalty per MW of rejected setpoint \[EUR/MW\].
    pub infeasible_penalty_per_mw: f64,
    /// Penalty per direct pump↔turbine reversal between consecutive
    /// blocks \[EUR\]: the machine needs an idle changeover to reverse
    /// (penstock drain + rotation reversal), so schedules that flip
    /// modes back-to-back violate the unit-commitment constraint.
    pub reversal_penalty: f64,
    /// Penalty per m³ of reservoir-bound violation \[EUR/m³\].
    pub volume_penalty: f64,
    /// Terminal water value as a fraction of the mean energy price.
    pub water_value_factor: f64,
    /// Scenarios averaged per evaluation.
    pub n_scenarios: usize,
    /// Scenario master seed (common random numbers).
    pub scenario_seed: u64,
}

impl Default for PlantConfig {
    fn default() -> Self {
        PlantConfig {
            upper: default_upper(),
            lower: default_lower(),
            machine: Machine::default(),
            market: DayAheadMarket::default(),
            reserve: ReserveMarket::default(),
            // The day starts with the upper basin nearly drained (the
            // previous evening's peak was sold): profitable generation
            // requires pumping first, which couples the blocks and
            // makes unstructured schedules run the reservoir dry.
            initial_upper_frac: 0.20,
            initial_lower_frac: 0.44,
            aquifer_elevation: -82.0,
            groundwater_coeff: 0.06,
            infeasible_penalty: 160.0,
            infeasible_penalty_per_mw: 22.0,
            reversal_penalty: 650.0,
            volume_penalty: 0.02,
            water_value_factor: 0.6,
            n_scenarios: 8,
            scenario_seed: 0xC0FFEE,
        }
    }
}

/// Profit decomposition of one evaluation (scenario averages).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfitBreakdown {
    /// Revenue from sold energy \[EUR\].
    pub energy_revenue: f64,
    /// Cost of pumping energy \[EUR\] (positive number).
    pub pumping_cost: f64,
    /// Reserve capacity + activation remuneration \[EUR\].
    pub reserve_revenue: f64,
    /// Infeasible-dispatch and reserve-shortfall penalties \[EUR\].
    pub penalties: f64,
    /// Terminal water (storage delta) value \[EUR\].
    pub water_value: f64,
    /// Average number of infeasible quarter-hours per scenario.
    pub infeasible_steps: f64,
    /// Net expected profit \[EUR\].
    pub profit: f64,
}

/// The simulator: owns a frozen scenario set so the objective is a
/// deterministic function of the decision vector.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: PlantConfig,
    scenarios: ScenarioSet,
}

impl Simulator {
    /// Build with the given configuration (generates the scenario set).
    pub fn new(cfg: PlantConfig) -> Self {
        let scenarios =
            ScenarioSet::generate(cfg.n_scenarios, &cfg.market, &cfg.reserve, cfg.scenario_seed);
        Simulator { cfg, scenarios }
    }

    /// Default Maizeret-like instance with the given scenario seed.
    pub fn maizeret(seed: u64) -> Self {
        Simulator::new(PlantConfig { scenario_seed: seed, ..PlantConfig::default() })
    }

    /// Plant configuration.
    pub fn config(&self) -> &PlantConfig {
        &self.cfg
    }

    /// Expected daily profit \[EUR\] for a unit-cube decision vector.
    pub fn expected_profit(&self, x_unit: &[f64]) -> f64 {
        self.evaluate_detailed(x_unit).profit
    }

    /// Expected profit with the full revenue/penalty decomposition.
    pub fn evaluate_detailed(&self, x_unit: &[f64]) -> ProfitBreakdown {
        assert_eq!(x_unit.len(), DECISION_DIM);
        let schedule = Schedule::decode(x_unit);
        // Deterministic unit-commitment violation: direct pump↔turbine
        // reversals between consecutive blocks.
        let reversals = schedule
            .block_power
            .windows(2)
            .filter(|w| w[0] * w[1] < 0.0)
            .count() as f64;
        let reversal_penalty = reversals * self.cfg.reversal_penalty;
        let mut acc = ProfitBreakdown::default();
        for scenario in self.scenarios.iter() {
            let b = self.simulate_one(&schedule, scenario);
            acc.energy_revenue += b.energy_revenue;
            acc.pumping_cost += b.pumping_cost;
            acc.reserve_revenue += b.reserve_revenue;
            acc.penalties += b.penalties;
            acc.water_value += b.water_value;
            acc.infeasible_steps += b.infeasible_steps;
            acc.profit += b.profit;
        }
        let n = self.scenarios.len().max(1) as f64;
        acc.energy_revenue /= n;
        acc.pumping_cost /= n;
        acc.reserve_revenue /= n;
        acc.penalties /= n;
        acc.water_value /= n;
        acc.infeasible_steps /= n;
        acc.profit /= n;
        acc.penalties += reversal_penalty;
        acc.profit -= reversal_penalty;
        acc
    }

    /// Simulate the schedule against one scenario.
    fn simulate_one(&self, schedule: &Schedule, sc: &Scenario) -> ProfitBreakdown {
        let cfg = &self.cfg;
        let dt_s = STEP_HOURS * 3600.0;
        let mut vu = cfg.initial_upper_frac * cfg.upper.capacity();
        let mut vl = cfg.initial_lower_frac * cfg.lower.capacity();
        let vu0 = vu;
        let mut out = ProfitBreakdown::default();

        for t in 0..STEPS {
            let head =
                cfg.upper.surface_elevation(vu) - cfg.lower.surface_elevation(vl);
            let price = sc.prices[t];
            let activation = sc.activations[t];
            let offer = schedule.reserve_at_step(t);
            let base = schedule.power_at_step(t);
            // Upward regulation: raise net output by the activated MW.
            let target = base + activation * offer;

            // Reserve capacity is remunerated for every reserved quarter.
            out.reserve_revenue += offer * STEP_HOURS * cfg.reserve.capacity_price;

            match cfg.machine.dispatch(target, head) {
                Dispatch::Ok { mode, flow, .. } => {
                    // Water moves: positive flow = upper → lower.
                    let dv = flow * dt_s;
                    vu -= dv;
                    vl += dv;
                    // Reservoir-bound violations: clamp and penalize.
                    for (v, cap) in [(&mut vu, cfg.upper.capacity()), (&mut vl, cfg.lower.capacity())] {
                        if *v < 0.0 {
                            out.penalties += -*v * cfg.volume_penalty;
                            *v = 0.0;
                        } else if *v > cap {
                            out.penalties += (*v - cap) * cfg.volume_penalty;
                            *v = cap;
                        }
                    }
                    let energy = target.abs() * STEP_HOURS; // MWh
                    match mode {
                        Mode::Turbine => {
                            // Split the sold energy into the base part at
                            // the day-ahead price and the activated part
                            // at the activation price.
                            let activated = (activation * offer).min(target.max(0.0)) * STEP_HOURS;
                            let base_energy = energy - activated;
                            out.energy_revenue += base_energy * price
                                + activated * price * cfg.reserve.activation_price_factor;
                        }
                        Mode::Pump => {
                            out.pumping_cost += energy * price;
                            // Activation served by pumping less: the
                            // avoided purchase is already in `energy`;
                            // the delivered regulation is remunerated.
                            let delivered = activation * offer * STEP_HOURS;
                            out.reserve_revenue += delivered
                                * price
                                * (cfg.reserve.activation_price_factor - 1.0);
                        }
                        Mode::Idle => {
                            // Idle with an activation request means the
                            // request was zero (|target| < 0.05) — no
                            // energy exchanged.
                        }
                    }
                }
                Dispatch::Rejected(_) => {
                    out.penalties +=
                        cfg.infeasible_penalty + cfg.infeasible_penalty_per_mw * target.abs();
                    if activation > 0.0 && offer > 0.0 {
                        // Activated reserve not delivered.
                        out.penalties += activation * offer * STEP_HOURS
                            * cfg.reserve.shortfall_penalty;
                    }
                    out.infeasible_steps += 1.0;
                }
            }

            // Hydrology between decisions: groundwater exchange with the
            // pit and natural inflow into the upper basin.
            let gw_gap =
                cfg.aquifer_elevation + sc.groundwater_bias - cfg.lower.surface_elevation(vl);
            let q_gw = cfg.groundwater_coeff * gw_gap;
            vl = (vl + q_gw * dt_s).clamp(0.0, cfg.lower.capacity());
            vu = (vu + sc.inflow_upper * dt_s).clamp(0.0, cfg.upper.capacity());
        }

        // Terminal water value: energy content of the storage delta at a
        // discounted mean price (keeps "drain everything" from being
        // optimal for free).
        let eta_ref = 0.85;
        let delta_mwh =
            RHO * G * self.cfg.machine.h_nominal * (vu - vu0) * eta_ref / 3.6e9;
        out.water_value =
            delta_mwh * cfg.market.mean_price() * cfg.water_value_factor;

        out.profit = out.energy_revenue - out.pumping_cost + out.reserve_revenue
            - out.penalties
            + out.water_value;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_sampling::SeedStream;
    use rand::Rng;

    fn sim() -> Simulator {
        Simulator::maizeret(7)
    }

    /// All-idle, no reserve: a feasible do-nothing day.
    const IDLE: [f64; 12] =
        [0.45, 0.45, 0.45, 0.45, 0.45, 0.45, 0.45, 0.45, 0.0, 0.0, 0.0, 0.0];

    #[test]
    fn idle_schedule_is_feasible_and_cheap() {
        let b = sim().evaluate_detailed(&IDLE);
        assert_eq!(b.infeasible_steps, 0.0);
        assert_eq!(b.energy_revenue, 0.0);
        assert_eq!(b.pumping_cost, 0.0);
        // Natural inflow gives a small positive water value; penalties 0.
        assert!(b.penalties.abs() < 1e-9);
        assert!(b.profit.abs() < 400.0, "idle profit {}", b.profit);
    }

    #[test]
    fn deterministic_per_decision() {
        let s = sim();
        let x = [0.2, 0.45, 0.8, 0.45, 0.1, 0.45, 0.9, 0.45, 0.3, 0.0, 0.5, 0.0];
        assert_eq!(s.expected_profit(&x), s.expected_profit(&x));
    }

    #[test]
    fn arbitrage_schedule_beats_idle() {
        // Pump during the cheap night (blocks 0-1, 00:00–06:00), sell in
        // the morning and evening peaks (block 3 ≈ 09:00–12:00 and
        // block 6 ≈ 18:00–21:00). Setpoints are head-aware: −7.8 MW
        // stays inside the pump window as the head rises overnight;
        // 8 MW clears the cavitation band while the head is still high
        // (block 3), and 7.3 MW is the robust choice once the head has
        // dropped back toward nominal (block 6).
        let x = [
            0.36, 0.36, // pump ~−7.8 MW through the night
            0.45, 1.0, // idle 06-09, turbine 8 MW 09-12 (high head)
            0.45, 0.45, // idle 12-18
            0.92, 0.45, // turbine ~7.3 MW 18-21 (head near nominal)
            0.0, 0.0, 0.0, 0.0, // no reserve
        ];
        let s = sim();
        let arb = s.evaluate_detailed(&x);
        let idle = s.evaluate_detailed(&IDLE);
        assert!(
            arb.profit > idle.profit,
            "arbitrage {} vs idle {} (penalties {}, infeasible {})",
            arb.profit,
            idle.profit,
            arb.penalties,
            arb.infeasible_steps
        );
    }

    #[test]
    fn random_decisions_are_usually_penalized() {
        let s = sim();
        let mut rng = SeedStream::new(123).fork_named("rand").rng();
        let mut worse_than_idle = 0;
        let n = 200;
        let idle = s.expected_profit(&IDLE);
        for _ in 0..n {
            let x: Vec<f64> = (0..12).map(|_| rng.gen::<f64>()).collect();
            if s.expected_profit(&x) < idle {
                worse_than_idle += 1;
            }
        }
        // The landscape must be hostile to random search (paper §4:
        // best of ~12000 random points is still ~ −1200 EUR).
        assert!(
            worse_than_idle > n * 6 / 10,
            "only {worse_than_idle}/{n} random schedules worse than idle"
        );
    }

    #[test]
    fn profit_decomposition_is_consistent() {
        let s = sim();
        let x = [0.2, 0.3, 0.45, 0.8, 0.45, 0.6, 0.9, 0.45, 0.4, 0.2, 0.0, 0.6];
        let b = s.evaluate_detailed(&x);
        let recomposed = b.energy_revenue - b.pumping_cost + b.reserve_revenue - b.penalties
            + b.water_value;
        assert!((b.profit - recomposed).abs() < 1e-9);
    }

    #[test]
    fn more_scenarios_change_but_stabilize_the_estimate() {
        let mk = |n: usize| {
            Simulator::new(PlantConfig { n_scenarios: n, scenario_seed: 40, ..Default::default() })
        };
        let x = [0.2, 0.2, 0.45, 0.75, 0.45, 0.45, 0.75, 0.45, 0.2, 0.0, 0.0, 0.0];
        let p8 = mk(8).expected_profit(&x);
        let p64 = mk(64).expected_profit(&x);
        let p128 = mk(128).expected_profit(&x);
        // Larger scenario sets converge: 64 vs 128 closer than 8 vs 128.
        assert!((p64 - p128).abs() <= (p8 - p128).abs() + 150.0,
                "p8={p8} p64={p64} p128={p128}");
    }

    #[test]
    fn reserve_offers_without_headroom_get_punished() {
        let s = sim();
        // Full-throttle turbine all day + max reserve: activations can
        // never be served (8 MW is already the cap).
        let mut x = [1.0; 12];
        for r in x.iter_mut().skip(8) {
            *r = 1.0;
        }
        let with_reserve = s.evaluate_detailed(&x);
        let mut x2 = x;
        for r in x2.iter_mut().skip(8) {
            *r = 0.0;
        }
        let without = s.evaluate_detailed(&x2);
        assert!(
            with_reserve.penalties > without.penalties,
            "reserve shortfall not penalized: {} vs {}",
            with_reserve.penalties,
            without.penalties
        );
    }

    #[test]
    fn head_drifts_as_water_moves() {
        // Pumping all night raises the upper basin => larger head.
        let s = sim();
        let pump_all = {
            let mut x = [0.2; 12];
            for r in x.iter_mut().skip(8) {
                *r = 0.0;
            }
            x
        };
        let b = s.evaluate_detailed(&pump_all);
        // All-pump is expensive, and at some point the upper basin fills /
        // head leaves the safe window, producing penalties or volume
        // clamps — either way the profit must be clearly negative.
        assert!(b.profit < -500.0, "all-pump profit {}", b.profit);
        assert!(b.pumping_cost > 0.0);
    }
}
