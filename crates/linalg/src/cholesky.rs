//! Jitter-stabilised Cholesky factorization with incremental extension.
//!
//! Gaussian-process regression spends essentially all of its time here:
//! one factorization per marginal-likelihood evaluation, plus `O(n^2)`
//! solves for predictions. The Kriging-Believer acquisition loop needs to
//! *grow* a factored system by a handful of fantasy points per step;
//! [`Cholesky::extend`] does that in `O(n^2 q)` instead of a fresh
//! `O(n^3)` factorization.

use crate::matrix::Matrix;
use crate::parallel;
use crate::vec_ops::{axpy, dot};
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `L * L^T = A`.
///
/// The factor is stored as a full square [`Matrix`] whose strict upper
/// triangle is kept at zero, so rows of `L` are contiguous slices — the
/// layout the forward-substitution inner loop wants.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal to reach positive
    /// definiteness (0.0 when none was needed).
    jitter: f64,
}

/// Initial jitter tried when a pivot goes non-positive.
const JITTER_START: f64 = 1e-10;
/// Jitter escalation factor per retry.
const JITTER_GROWTH: f64 = 10.0;
/// Maximum number of jitter escalations before giving up.
const JITTER_TRIES: usize = 10;

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// If a pivot fails, the factorization is retried with an escalating
    /// diagonal jitter (`1e-10 * mean_diag`, growing tenfold up to
    /// [`JITTER_TRIES`] times). This mirrors the standard GP-library
    /// treatment of nearly singular kernel matrices (e.g. duplicated
    /// training inputs produced by fantasy points).
    pub fn factor(a: &Matrix) -> Result<Self> {
        Self::factor_reusing(a, Matrix::zeros(0, 0))
    }

    /// Like [`factor`](Self::factor), but reuses `buf` as the storage for
    /// `L` (reallocating only when the shape differs). The MLL objective
    /// factors once per evaluation, so recycling this `n x n` buffer
    /// removes the dominant allocation of the fitting hot loop. Recover
    /// the buffer afterwards with [`into_l`](Self::into_l).
    pub fn factor_reusing(a: &Matrix, buf: Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky of {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.all_finite() {
            return Err(LinalgError::NonFinite("cholesky input"));
        }
        let n = a.rows();
        let mut l = if buf.rows() == n && buf.cols() == n { buf } else { Matrix::zeros(n, n) };
        let mean_diag = if n == 0 {
            1.0
        } else {
            a.diag().iter().map(|v| v.abs()).sum::<f64>() / n as f64
        };
        // Above the bit-exactness boundary the reassociated-arithmetic
        // policy applies, so the cache-blocked parallel sweep is allowed
        // to replace the serial row kernel (see `try_factor_blocked_into`).
        let blocked = n > BIT_EXACT_MAX_N;
        let mut jitter = 0.0;
        for attempt in 0..=JITTER_TRIES {
            let res = if blocked {
                Self::try_factor_blocked_into(a, jitter, &mut l)
            } else {
                Self::try_factor_into(a, jitter, &mut l)
            };
            match res {
                Ok(()) => return Ok(Cholesky { l, jitter }),
                Err(e) => {
                    if attempt == JITTER_TRIES {
                        return Err(e);
                    }
                    jitter = if jitter == 0.0 {
                        JITTER_START * mean_diag.max(f64::MIN_POSITIVE)
                    } else {
                        jitter * JITTER_GROWTH
                    };
                }
            }
        }
        unreachable!("jitter loop always returns")
    }

    /// Factor a symmetric positive-definite matrix given only its strict
    /// lower triangle in packed pair-major form plus a *uniform*
    /// diagonal: entry `(i, j)` with `j < i` lives at
    /// `packed[(i(i−1)/2 + j) · stride]`. A `stride > 1` lets callers
    /// interleave other per-pair payloads (the GP fitting workspace
    /// stores `[kernel value, gradient factor]` pairs and factors with
    /// `stride = 2`), so the matrix never has to be materialized densely.
    ///
    /// Produces a bit-identical factor to
    /// [`factor_reusing`](Self::factor_reusing) on the equivalent dense
    /// matrix, including the jitter-escalation behaviour.
    pub fn factor_packed_reusing(
        packed: &[f64],
        stride: usize,
        diag: f64,
        n: usize,
        buf: Matrix,
    ) -> Result<Self> {
        if stride == 0 || packed.len() < n * n.saturating_sub(1) / 2 * stride {
            return Err(LinalgError::ShapeMismatch(format!(
                "packed cholesky: {} entries (stride {stride}) for order {n}",
                packed.len()
            )));
        }
        if !diag.is_finite() || packed.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NonFinite("packed cholesky input"));
        }
        let mut l = if buf.rows() == n && buf.cols() == n { buf } else { Matrix::zeros(n, n) };
        let mean_diag = diag.abs();
        let blocked = n > BIT_EXACT_MAX_N;
        let mut jitter = 0.0;
        for attempt in 0..=JITTER_TRIES {
            let res = if blocked {
                Self::try_factor_packed_blocked_into(packed, stride, diag, jitter, &mut l)
            } else {
                Self::try_factor_packed_into(packed, stride, diag, jitter, &mut l)
            };
            match res {
                Ok(()) => return Ok(Cholesky { l, jitter }),
                Err(e) => {
                    if attempt == JITTER_TRIES {
                        return Err(e);
                    }
                    jitter = if jitter == 0.0 {
                        JITTER_START * mean_diag.max(f64::MIN_POSITIVE)
                    } else {
                        jitter * JITTER_GROWTH
                    };
                }
            }
        }
        unreachable!("jitter loop always returns")
    }

    /// Packed-input companion of [`try_factor_into`](Self::try_factor_into):
    /// identical per-element arithmetic (the same `dot` over the same
    /// slices feeds every entry, so the factor is bit-identical to the
    /// dense path), sourcing `a[(i, j)]` from the packed strided lower
    /// triangle and `a[(i, i)]` from the uniform diagonal.
    ///
    /// Rows are produced two at a time: the inner elimination streams
    /// each prior row `j` once and charges it against both output rows,
    /// halving the dominant memory traffic of the factorization and
    /// giving the hardware two independent dot chains to overlap. The
    /// evaluation order still respects every dependency, so the values
    /// (not just the tolerances) match the one-row form exactly.
    fn try_factor_packed_into(
        packed: &[f64],
        stride: usize,
        diag: f64,
        jitter: f64,
        l: &mut Matrix,
    ) -> Result<()> {
        let n = l.rows();
        let pivot_checked = |s: f64| -> Result<f64> {
            let pivot = diag + jitter - s;
            if pivot <= 0.0 || !pivot.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot });
            }
            Ok(pivot.sqrt())
        };
        let data = l.as_mut_slice();
        let mut i = 0;
        while i < n {
            let base0 = i * i.saturating_sub(1) / 2 * stride;
            let (head, tail) = data.split_at_mut(i * n);
            if i + 1 < n {
                let base1 = (i + 1) * i / 2 * stride;
                let (r0, rest) = tail.split_at_mut(n);
                let r1 = &mut rest[..n];
                for j in 0..i {
                    let rj = &head[j * n..j * n + j];
                    let s0 = if j == 0 { 0.0 } else { dot(&r0[..j], rj) };
                    let s1 = if j == 0 { 0.0 } else { dot(&r1[..j], rj) };
                    let ljj = head[j * n + j];
                    r0[j] = (packed[base0 + j * stride] - s0) / ljj;
                    r1[j] = (packed[base1 + j * stride] - s1) / ljj;
                }
                r0[i] = pivot_checked(dot(&r0[..i], &r0[..i]))?;
                r0[i + 1..].fill(0.0);
                let s = dot(&r1[..i], &r0[..i]);
                r1[i] = (packed[base1 + i * stride] - s) / r0[i];
                r1[i + 1] = pivot_checked(dot(&r1[..=i], &r1[..=i]))?;
                r1[i + 2..].fill(0.0);
                i += 2;
            } else {
                let r0 = &mut tail[..n];
                for j in 0..i {
                    let rj = &head[j * n..j * n + j];
                    let s = if j == 0 { 0.0 } else { dot(&r0[..j], rj) };
                    r0[j] = (packed[base0 + j * stride] - s) / head[j * n + j];
                }
                r0[i] = pivot_checked(dot(&r0[..i], &r0[..i]))?;
                r0[i + 1..].fill(0.0);
                i += 1;
            }
        }
        Ok(())
    }

    /// One factorization attempt with a fixed diagonal jitter.
    fn try_factor(a: &Matrix, jitter: f64) -> Result<Matrix> {
        let mut l = Matrix::zeros(a.rows(), a.rows());
        Self::try_factor_into(a, jitter, &mut l)?;
        Ok(l)
    }

    /// Factorization attempt writing into a caller-owned buffer. Every
    /// entry of `l` (including the strict upper triangle, which is
    /// zeroed) is overwritten, so stale contents are harmless.
    fn try_factor_into(a: &Matrix, jitter: f64, l: &mut Matrix) -> Result<()> {
        let n = a.rows();
        debug_assert_eq!(l.rows(), n);
        debug_assert_eq!(l.cols(), n);
        for i in 0..n {
            for j in 0..=i {
                // Dot-product (ijk) form: both row prefixes are contiguous.
                let s = if j == 0 { 0.0 } else { dot(&l.row(i)[..j], &l.row(j)[..j]) };
                if i == j {
                    let pivot = a[(i, i)] + jitter - s;
                    if pivot <= 0.0 || !pivot.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot });
                    }
                    l[(i, j)] = pivot.sqrt();
                } else {
                    l[(i, j)] = (a[(i, j)] - s) / l[(j, j)];
                }
            }
            l.row_mut(i)[i + 1..].fill(0.0);
        }
        Ok(())
    }

    /// Blocked factorization attempt for systems past [`BIT_EXACT_MAX_N`]:
    /// loads the lower triangle of `a` (plus `jitter` on the diagonal)
    /// into `l` and runs the right-looking panel sweep of
    /// [`blocked_factor_in_place`]. The per-entry arithmetic is a
    /// reassociation of the serial row kernel (partial sums per panel
    /// instead of one full-prefix dot), so results agree with
    /// [`try_factor_into`](Self::try_factor_into) to summation-order ulps
    /// — permitted above the bit-exactness boundary — while the trailing
    /// updates fan out across threads.
    fn try_factor_blocked_into(a: &Matrix, jitter: f64, l: &mut Matrix) -> Result<()> {
        let n = a.rows();
        debug_assert_eq!(l.rows(), n);
        debug_assert_eq!(l.cols(), n);
        for i in 0..n {
            let row = l.row_mut(i);
            row[..=i].copy_from_slice(&a.row(i)[..=i]);
            row[i] += jitter;
            row[i + 1..].fill(0.0);
        }
        blocked_factor_in_place(l)
    }

    /// Packed-input companion of
    /// [`try_factor_blocked_into`](Self::try_factor_blocked_into):
    /// materialises the strided pair-major lower triangle plus uniform
    /// diagonal into `l`, then runs the same in-place blocked sweep — so
    /// the packed and dense paths stay bit-identical to each other above
    /// [`BIT_EXACT_MAX_N`] exactly as they are below it.
    fn try_factor_packed_blocked_into(
        packed: &[f64],
        stride: usize,
        diag: f64,
        jitter: f64,
        l: &mut Matrix,
    ) -> Result<()> {
        let n = l.rows();
        for i in 0..n {
            let base = i * i.saturating_sub(1) / 2 * stride;
            let row = l.row_mut(i);
            for (j, v) in row[..i].iter_mut().enumerate() {
                *v = packed[base + j * stride];
            }
            row[i] = diag + jitter;
            row[i + 1..].fill(0.0);
        }
        blocked_factor_in_place(l)
    }

    /// Append `q` rows to the factorization **without touching the first
    /// `n` rows**, reproducing the serial row kernel of
    /// [`try_factor_into`](Self::try_factor_into) exactly.
    ///
    /// The blocks extend `A` to `[[A, B], [Bᵀ, C]]` with `B` of shape
    /// `n x q` and `C` of shape `q x q` (`C` must already carry any noise
    /// term on its diagonal). Row-by-row factorization computes row `i`
    /// from rows `< i` only, so the first `n` rows of the from-scratch
    /// factor of the extended matrix are the rows of `self` — this method
    /// just runs the same kernel over rows `n..n+q` in `O(n²q)`.
    ///
    /// **Bit-compat contract:** whenever a from-scratch
    /// [`factor`](Self::factor) of the extended matrix settles on the
    /// same jitter as `self`, the result here is bit-identical to it
    /// (pinned by a property test). Kernel-type matrices with a uniform
    /// diagonal escalate jitter through the identical sequence (the mean
    /// diagonal is diagonal-value-invariant to `n`), so for those inputs
    /// the contract covers every case in which this method succeeds. The
    /// one divergence — the appended rows fail at `self`'s jitter, where
    /// a from-scratch factor would escalate further and perturb the first
    /// `n` rows — returns an error instead, and callers fall back to a
    /// full refactorization.
    ///
    /// Unlike [`extend`](Self::extend) (which serves the fantasy loop and
    /// trades bit-identity for local jitter escalation), no jitter is
    /// added beyond `self.jitter`.
    pub fn extend_exact(&self, b: &Matrix, c: &Matrix) -> Result<Cholesky> {
        let n = self.n();
        let q = c.rows();
        if b.rows() != n || b.cols() != q || !c.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "extend_exact: base order {n}, B {}x{}, C {}x{}",
                b.rows(),
                b.cols(),
                c.rows(),
                c.cols()
            )));
        }
        if !b.all_finite() || !c.all_finite() {
            return Err(LinalgError::NonFinite("extend_exact input"));
        }
        let m = n + q;
        let jitter = self.jitter;
        let mut l = Matrix::zeros(m, m);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        for ii in 0..q {
            let i = n + ii;
            for j in 0..=i {
                // Same dot-product (ijk) elimination as `try_factor_into`,
                // sourcing the matrix entry from the B/C blocks.
                let s = if j == 0 { 0.0 } else { dot(&l.row(i)[..j], &l.row(j)[..j]) };
                let aij = if j < n { b[(j, ii)] } else { c[(ii, j - n)] };
                if i == j {
                    let pivot = aij + jitter - s;
                    if pivot <= 0.0 || !pivot.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot });
                    }
                    l[(i, j)] = pivot.sqrt();
                } else {
                    l[(i, j)] = (aij - s) / l[(j, j)];
                }
            }
            l.row_mut(i)[i + 1..].fill(0.0);
        }
        Ok(Cholesky { l, jitter })
    }

    /// Consume the factorization, returning the `L` storage for reuse by
    /// a later [`factor_reusing`](Self::factor_reusing).
    pub fn into_l(self) -> Matrix {
        self.l
    }

    /// Order of the factored matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    #[inline]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was applied (0 if none).
    #[inline]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Solve `L y = b` (forward substitution) in place.
    pub fn solve_lower_in_place(&self, b: &mut [f64]) {
        let n = self.n();
        debug_assert_eq!(b.len(), n);
        for i in 0..n {
            let s = dot(&self.l.row(i)[..i], &b[..i]);
            b[i] = (b[i] - s) / self.l[(i, i)];
        }
    }

    /// Solve `L^T x = y` (backward substitution) in place.
    pub fn solve_lower_t_in_place(&self, b: &mut [f64]) {
        let n = self.n();
        debug_assert_eq!(b.len(), n);
        for i in (0..n).rev() {
            let mut s = b[i];
            // Column i of L below the diagonal == row entries l[j][i], j>i.
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * b[j];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Row-major transpose of the factor: `lt[(i, j)] = l[(j, i)]`, with
    /// the strict lower triangle kept at zero. Callers that hold this
    /// alongside the factor can run the backward substitution over
    /// contiguous rows (see [`solve_transposed_in_place`]) instead of
    /// striding down columns of `L` one cache line per element.
    pub fn transposed_factor(&self) -> Matrix {
        self.l.transpose()
    }

    /// Solve `A x = b` via the two triangular solves. Returns a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n() {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve: order {} with rhs of {}",
                self.n(),
                b.len()
            )));
        }
        let mut x = b.to_vec();
        self.solve_lower_in_place(&mut x);
        self.solve_lower_t_in_place(&mut x);
        Ok(x)
    }

    /// Solve `A x = b` for two right-hand sides in one sweep. The
    /// backward substitution strides down columns of `L`, so sharing each
    /// `l[(j, i)]` load across both systems halves the strided traffic.
    /// Bitwise identical to two independent [`solve`](Self::solve) calls
    /// (same per-element operations in the same order).
    pub fn solve_pair(&self, b1: &[f64], b2: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        let n = self.n();
        if b1.len() != n || b2.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_pair: order {n} with rhs of {} and {}",
                b1.len(),
                b2.len()
            )));
        }
        let mut x1 = b1.to_vec();
        let mut x2 = b2.to_vec();
        for i in 0..n {
            let row = self.l.row(i);
            let s1 = dot(&row[..i], &x1[..i]);
            let s2 = dot(&row[..i], &x2[..i]);
            x1[i] = (x1[i] - s1) / row[i];
            x2[i] = (x2[i] - s2) / row[i];
        }
        for i in (0..n).rev() {
            let mut s1 = x1[i];
            let mut s2 = x2[i];
            for j in (i + 1)..n {
                let lji = self.l[(j, i)];
                s1 -= lji * x1[j];
                s2 -= lji * x2[j];
            }
            let lii = self.l[(i, i)];
            x1[i] = s1 / lii;
            x2[i] = s2 / lii;
        }
        Ok((x1, x2))
    }

    /// Solve `L Y = B` for every column of a row-major right-hand side at
    /// once, in place. Each elimination step is an `axpy` across a whole
    /// row of `B`, so the inner loop vectorises over the RHS columns
    /// instead of striding down one column at a time.
    pub fn solve_lower_multi_in_place(&self, b: &mut Matrix) {
        let n = self.n();
        debug_assert_eq!(b.rows(), n);
        let m = b.cols();
        if m == 0 {
            return;
        }
        let data = b.as_mut_slice();
        for i in 0..n {
            let (done, rest) = data.split_at_mut(i * m);
            let row_i = &mut rest[..m];
            let l_i = self.l.row(i);
            for (j, lij) in l_i[..i].iter().enumerate() {
                axpy(-lij, &done[j * m..(j + 1) * m], row_i);
            }
            let inv = 1.0 / l_i[i];
            for v in row_i.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Solve `L^T X = Y` for every column of a row-major right-hand side
    /// at once, in place (companion to
    /// [`solve_lower_multi_in_place`](Self::solve_lower_multi_in_place)).
    pub fn solve_lower_t_multi_in_place(&self, b: &mut Matrix) {
        let n = self.n();
        debug_assert_eq!(b.rows(), n);
        let m = b.cols();
        if m == 0 {
            return;
        }
        let data = b.as_mut_slice();
        for i in (0..n).rev() {
            let (head, tail) = data.split_at_mut((i + 1) * m);
            let row_i = &mut head[i * m..];
            for j in (i + 1)..n {
                let lji = self.l[(j, i)];
                axpy(-lji, &tail[(j - i - 1) * m..(j - i) * m], row_i);
            }
            let inv = 1.0 / self.l[(i, i)];
            for v in row_i.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Solve `A X = B` in place via the two blocked triangular solves.
    pub fn solve_matrix_in_place(&self, b: &mut Matrix) -> Result<()> {
        if b.rows() != self.n() {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_matrix: order {} with rhs {}x{}",
                self.n(),
                b.rows(),
                b.cols()
            )));
        }
        self.solve_lower_multi_in_place(b);
        self.solve_lower_t_multi_in_place(b);
        Ok(())
    }

    /// Solve `A X = B` for a matrix right-hand side. Returns a fresh
    /// matrix; use [`solve_matrix_in_place`](Self::solve_matrix_in_place)
    /// to avoid the copy.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = b.clone();
        self.solve_matrix_in_place(&mut out)?;
        Ok(out)
    }

    /// `log det A = 2 * sum_i log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.n()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `b^T A^{-1} b` using a single forward solve:
    /// with `L y = b`, the form equals `y^T y`.
    pub fn quad_form(&self, b: &[f64]) -> Result<f64> {
        if b.len() != self.n() {
            return Err(LinalgError::ShapeMismatch("quad_form rhs".into()));
        }
        let mut y = b.to_vec();
        self.solve_lower_in_place(&mut y);
        Ok(dot(&y, &y))
    }

    /// Dense `A^{-1}`. Kept for the naive marginal-likelihood gradient
    /// path (the reference implementation the workspace-cached gradient
    /// is property-tested against) and for tests; the fitting hot path
    /// uses [`inv_lower_t_into`](Self::inv_lower_t_into) instead.
    pub fn inverse(&self) -> Matrix {
        let mut inv = Matrix::identity(self.n());
        self.solve_lower_multi_in_place(&mut inv);
        self.solve_lower_t_multi_in_place(&mut inv);
        inv
    }

    /// Write `L^{-T}` into `out` row-major: `out[a][k] = (L^{-1})_{k,a}`,
    /// zero below the diagonal (`k < a`). Row `a` is the solution of
    /// `L x = e_a`, a sparse forward solve touching only the trailing
    /// `n - a` entries; rows are independent, so they are computed in
    /// parallel over row blocks.
    ///
    /// Consumers get, without ever materialising `A^{-1}`:
    /// - `(A^{-1})_{ab} = Σ_{k ≥ max(a,b)} out[a][k] · out[b][k]`
    ///   (a contiguous suffix dot product of two rows), and
    /// - `tr(A^{-1}) = ‖out‖_F²`.
    pub fn inv_lower_t_into(&self, out: &mut Matrix) {
        let n = self.n();
        assert_eq!(out.rows(), n, "inv_lower_t_into: row mismatch");
        assert_eq!(out.cols(), n, "inv_lower_t_into: col mismatch");
        let l = &self.l;
        // Total flops ~ n³/6; parallel::for_each_row_chunk decides whether
        // that clears the spawn threshold.
        let work = n * n * n / 6;
        parallel::for_each_row_chunk(out.as_mut_slice(), n, work, |a, row| {
            row[..a].fill(0.0);
            row[a] = 1.0 / l[(a, a)];
            for k in (a + 1)..n {
                let s = dot(&l.row(k)[a..k], &row[a..k]);
                row[k] = -s / l[(k, k)];
            }
        });
    }

    /// Extend the factorization of `A` to the factorization of
    ///
    /// ```text
    /// [ A   B ]
    /// [ B^T C ]
    /// ```
    ///
    /// where `B` is `n x q` (cross block) and `C` is `q x q`. Runs in
    /// `O(n^2 q + n q^2 + q^3)`. The same jitter that stabilised `A` is
    /// applied to `C`'s diagonal, with local escalation if the trailing
    /// block itself fails.
    pub fn extend(&self, b: &Matrix, c: &Matrix) -> Result<Cholesky> {
        let n = self.n();
        let q = c.rows();
        if b.rows() != n || b.cols() != q || !c.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "extend: base order {n}, B {}x{}, C {}x{}",
                b.rows(),
                b.cols(),
                c.rows(),
                c.cols()
            )));
        }
        // S (q x n) solves L S^T = B, i.e. each row of S is L^{-1} b_col.
        let mut s = Matrix::zeros(q, n);
        let mut col = vec![0.0; n];
        for j in 0..q {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_lower_in_place(&mut col);
            s.row_mut(j).copy_from_slice(&col);
        }
        // Trailing block: M M^T = C + jitter*I - S S^T.
        let mut trailing = Matrix::from_fn(q, q, |i, j| c[(i, j)] - dot(s.row(i), s.row(j)));
        trailing.symmetrize();
        trailing.add_diag(self.jitter);
        let mean_diag = if q == 0 {
            1.0
        } else {
            trailing.diag().iter().map(|v| v.abs()).sum::<f64>() / q as f64
        };
        let mut local_jitter = 0.0;
        let m = loop {
            match Cholesky::try_factor(&trailing, local_jitter) {
                Ok(m) => break m,
                Err(e) => {
                    if local_jitter > JITTER_GROWTH.powi(JITTER_TRIES as i32) * JITTER_START {
                        return Err(e);
                    }
                    local_jitter = if local_jitter == 0.0 {
                        JITTER_START * mean_diag.max(f64::MIN_POSITIVE)
                    } else {
                        local_jitter * JITTER_GROWTH
                    };
                }
            }
        };
        // Assemble [[L, 0], [S, M]].
        let mut l = Matrix::zeros(n + q, n + q);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        for i in 0..q {
            l.row_mut(n + i)[..n].copy_from_slice(s.row(i));
            l.row_mut(n + i)[n..n + q].copy_from_slice(m.row(i));
        }
        Ok(Cholesky { l, jitter: self.jitter.max(local_jitter) })
    }
}

/// Largest system order at which the posterior hot paths promise
/// bit-identical arithmetic to their naive references. At or below this
/// size [`solve_transposed_in_place`] keeps the sequential subtract
/// chain of the column-strided solve (where the multi-accumulator
/// reduction's setup overhead barely pays anyway), and the GP/acq
/// workspace paths keep dividing by lengthscales instead of multiplying
/// by reciprocals — so seeded BO trajectories (all integration runs use
/// n ≲ 100 training points) do not shift with these optimizations.
/// Above it, the fast reassociated forms kick in and agreement is to
/// summation-order ulps instead.
pub const BIT_EXACT_MAX_N: usize = 128;

/// Panel width of the blocked right-looking factorization. A 64-wide
/// panel keeps the `64 x 64` diagonal block (32 KiB) and a panel-column
/// stripe resident in L1/L2 while the trailing update streams the rest
/// of the matrix once per sweep.
const CHOL_PANEL: usize = 64;

/// Cache-blocked right-looking Cholesky sweep, in place.
///
/// On entry `l` holds the lower triangle of the (jittered) input with a
/// zeroed strict upper triangle; on exit it holds the factor. Each sweep
/// factors a `CHOL_PANEL`-wide diagonal panel serially, then applies the
/// panel to the rows below it — a TRSM pass and a SYRK trailing update —
/// fanned out over [`parallel::par_map_workers`] in dynamically scheduled
/// row bands.
///
/// **Determinism:** every row's arithmetic is a fixed sequence — the
/// panel order is serial, and within a band each row is eliminated with
/// the same dots in the same order — and band boundaries only decide
/// *which worker* computes a row, never *what* it computes. The SYRK
/// reads panel columns from a snapshot copied into `scratch` before the
/// fan-out, so no worker observes another worker's writes. Results are
/// therefore bit-identical for any thread count (pinned by the
/// determinism suite), while still reassociated relative to the serial
/// row kernel (partial per-panel sums), which is why this path only
/// engages past [`BIT_EXACT_MAX_N`].
fn blocked_factor_in_place(l: &mut Matrix) -> Result<()> {
    let n = l.rows();
    let mut scratch: Vec<f64> = Vec::new();
    let mut k = 0;
    while k < n {
        let kb = CHOL_PANEL.min(n - k);
        // Panel: factor the kb x kb diagonal block over columns k.. (the
        // contributions of columns < k were subtracted by prior sweeps).
        {
            let data = l.as_mut_slice();
            for i in k..k + kb {
                for j in k..=i {
                    let s = if j == k {
                        0.0
                    } else {
                        dot(&data[i * n + k..i * n + j], &data[j * n + k..j * n + j])
                    };
                    if i == j {
                        let pivot = data[i * n + i] - s;
                        if pivot <= 0.0 || !pivot.is_finite() {
                            return Err(LinalgError::NotPositiveDefinite { pivot });
                        }
                        data[i * n + i] = pivot.sqrt();
                    } else {
                        data[i * n + j] = (data[i * n + j] - s) / data[j * n + j];
                    }
                }
            }
        }
        let below = n - k - kb;
        if below == 0 {
            break;
        }
        let (head, tail) = l.as_mut_slice().split_at_mut((k + kb) * n);
        let panel: &[f64] = head;
        // TRSM: finalize columns k..k+kb of every row below the panel.
        let trsm_flops = below * kb * (kb + 2);
        par_row_bands(tail, n, trsm_flops, |_, row| {
            for j in k..k + kb {
                let pj = &panel[j * n + k..j * n + j];
                let s = if j == k { 0.0 } else { dot(&row[k..j], pj) };
                row[j] = (row[j] - s) / panel[j * n + j];
            }
        });
        // Snapshot the freshly solved panel columns so the trailing
        // update reads immutable data while rows are mutated in parallel.
        scratch.clear();
        scratch.reserve(below * kb);
        for r in 0..below {
            scratch.extend_from_slice(&tail[r * n + k..r * n + k + kb]);
        }
        let snap: &[f64] = &scratch;
        // SYRK: subtract the panel's contribution from the trailing
        // lower triangle, one full dot per touched entry.
        let syrk_flops = below * below * kb;
        par_row_bands(tail, n, syrk_flops, |r, row| {
            let sr = &snap[r * kb..(r + 1) * kb];
            for c in 0..=r {
                row[k + kb + c] -= dot(sr, &snap[c * kb..(c + 1) * kb]);
            }
        });
        k += kb;
    }
    Ok(())
}

/// Fan `f(row_index, row)` out over the fixed-width rows of `out` in
/// dynamically scheduled contiguous bands (several per worker, so the
/// triangular cost gradient of the SYRK balances), via
/// [`parallel::par_map_workers`]. Sequential when the work is below the
/// crate's parallel threshold or only one thread is available; the
/// per-row results are identical either way.
fn par_row_bands<F>(out: &mut [f64], width: usize, flops: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if width == 0 || out.is_empty() {
        return;
    }
    debug_assert_eq!(out.len() % width, 0);
    let rows = out.len() / width;
    let workers = parallel::num_threads().min(rows);
    if workers <= 1 || flops < parallel::PAR_THRESHOLD {
        for (r, row) in out.chunks_mut(width).enumerate() {
            f(r, row);
        }
        return;
    }
    let bands = (workers * 4).min(rows);
    let rows_per = rows.div_ceil(bands);
    // Hand each band its disjoint `&mut` block through a mutex taken
    // exactly once, so the work-stealing map stays safe without copies.
    let slots: Vec<std::sync::Mutex<(usize, &mut [f64])>> = out
        .chunks_mut(rows_per * width)
        .enumerate()
        .map(|(bi, block)| std::sync::Mutex::new((bi * rows_per, block)))
        .collect();
    parallel::par_map_workers(slots.len(), workers, |bi| {
        let mut guard = slots[bi].lock().expect("band slot poisoned");
        let (base, block) = &mut *guard;
        for (i, row) in block.chunks_mut(width).enumerate() {
            f(*base + i, row);
        }
    });
}

/// Solve `L^T x = y` in place given the row-major *transpose* of the
/// factor (from [`Cholesky::transposed_factor`]).
///
/// The inner loop walks row `i` of `lt` contiguously — one cache line
/// per eight elements — where
/// [`solve_lower_t_in_place`](Cholesky::solve_lower_t_in_place) strides
/// down column `i` of `L` at one cache line per element. Systems larger
/// than [`BIT_EXACT_MAX_N`] reduce each row suffix with the unrolled
/// [`dot`] (independent accumulator chains) instead of one
/// serially-dependent subtract per element — several times the
/// instruction-level parallelism, at the cost of reordered-summation
/// ulps (relative ~1e-13 agreement on any reasonably conditioned
/// system, covered by a test). Systems of order ≤ `BIT_EXACT_MAX_N`
/// keep the sequential chain and solve bit-identically to
/// `solve_lower_t_in_place`.
pub fn solve_transposed_in_place(lt: &Matrix, b: &mut [f64]) {
    let n = lt.rows();
    debug_assert!(lt.is_square());
    debug_assert_eq!(b.len(), n);
    if n > BIT_EXACT_MAX_N {
        for i in (0..n).rev() {
            let row = lt.row(i);
            let s = dot(&row[(i + 1)..], &b[(i + 1)..]);
            b[i] = (b[i] - s) / row[i];
        }
        return;
    }
    for i in (0..n).rev() {
        let row = lt.row(i);
        let mut s = b[i];
        for (j, &ltij) in row[(i + 1)..].iter().enumerate() {
            s -= ltij * b[i + 1 + j];
        }
        b[i] = s / row[i];
    }
}

impl Cholesky {

    /// Reconstruct `A = L L^T` (minus any jitter); used by tests and by
    /// the GP fantasy machinery when it needs the implied covariance.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.n();
        Matrix::from_fn(n, n, |i, j| {
            let k = i.min(j) + 1;
            dot(&self.l.row(i)[..k], &self.l.row(j)[..k])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposed_backward_solve_matches_reference() {
        // Below BIT_EXACT_MAX_N every row keeps the sequential subtract
        // chain, so the solve must be bit-identical to the column-strided
        // form; above it, rows switch to the unrolled `dot` reduction and
        // differ only by summation order — a few ulps, far below any
        // model tolerance.
        for n in [1, 2, 7, 33, 64, 128, 200, 300] {
            let a = spd(n, 42 + n as u64);
            let ch = Cholesky::factor(&a).unwrap();
            let lt = ch.transposed_factor();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut x_ref = b.clone();
            ch.solve_lower_t_in_place(&mut x_ref);
            let mut x_t = b.clone();
            solve_transposed_in_place(&lt, &mut x_t);
            for (i, (u, v)) in x_ref.iter().zip(&x_t).enumerate() {
                if n <= BIT_EXACT_MAX_N {
                    assert!(
                        u.to_bits() == v.to_bits(),
                        "n = {n} ≤ BIT_EXACT_MAX_N must be bit-identical; x[{i}]: {u} vs {v}"
                    );
                } else {
                    assert!(
                        (u - v).abs() <= 1e-13 * (1.0 + u.abs().max(v.abs())),
                        "n = {n}, x[{i}]: {u} vs {v}"
                    );
                }
            }
        }
    }

    /// Deterministic SPD test matrix: A = G G^T + n*I.
    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let g = Matrix::from_fn(n, n, |_, _| next());
        let mut a = g.matmul_nt(&g).unwrap();
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(12, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.reconstruct();
        assert!(a.sub(&back).unwrap().norm_max() < 1e-9 * a.norm_max());
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd(10, 7);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let x = ch.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, bk) in b.iter().zip(&back) {
            assert!((bi - bk).abs() < 1e-8, "{bi} vs {bk}");
        }
    }

    #[test]
    fn packed_factor_matches_dense_bitwise() {
        // Uniform-diagonal SPD matrix (the kernel-matrix shape): the
        // packed strided factorization must reproduce the dense factor
        // bit for bit, including with interleaved payload (stride 2).
        let n = 14;
        let mut a = spd(n, 19);
        let diag = 2.0 * n as f64;
        for i in 0..n {
            a[(i, i)] = diag;
        }
        let dense = Cholesky::factor(&a).unwrap();
        for stride in [1usize, 2] {
            let mut packed = vec![f64::NAN; n * (n - 1) / 2 * stride];
            for i in 0..n {
                for j in 0..i {
                    packed[(i * (i - 1) / 2 + j) * stride] = a[(i, j)];
                }
            }
            if stride == 2 {
                // Payload slots must not affect the factor (fill with a
                // finite sentinel; NaN would trip the finiteness check).
                for p in packed.iter_mut().skip(1).step_by(2) {
                    *p = 7.5;
                }
            }
            let ch = Cholesky::factor_packed_reusing(&packed, stride, diag, n, Matrix::zeros(0, 0))
                .unwrap();
            assert_eq!(ch.jitter(), dense.jitter());
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(ch.l()[(i, j)], dense.l()[(i, j)], "stride {stride} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn packed_factor_rejects_bad_input() {
        assert!(Cholesky::factor_packed_reusing(&[1.0], 1, 1.0, 4, Matrix::zeros(0, 0)).is_err());
        assert!(
            Cholesky::factor_packed_reusing(&[f64::NAN], 1, 1.0, 2, Matrix::zeros(0, 0)).is_err()
        );
    }

    #[test]
    fn solve_pair_is_bitwise_two_solves() {
        let a = spd(9, 23);
        let ch = Cholesky::factor(&a).unwrap();
        let b1: Vec<f64> = (0..9).map(|i| (i as f64 * 0.7).cos()).collect();
        let b2 = vec![1.0; 9];
        let (x1, x2) = ch.solve_pair(&b1, &b2).unwrap();
        assert_eq!(x1, ch.solve(&b1).unwrap());
        assert_eq!(x2, ch.solve(&b2).unwrap());
        assert!(ch.solve_pair(&b1, &b2[..5]).is_err());
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        // det = 12 - 4 = 8
        assert!((ch.log_det() - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_solve() {
        let a = spd(8, 11);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.25).collect();
        let x = ch.solve(&b).unwrap();
        let qf = ch.quad_form(&b).unwrap();
        assert!((qf - dot(&b, &x)).abs() < 1e-8);
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd(6, 5);
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let prod = a.matmul(&inv).unwrap();
        let id = Matrix::identity(6);
        assert!(prod.sub(&id).unwrap().norm_max() < 1e-9);
    }

    #[test]
    fn jitter_rescues_singular() {
        // Rank-deficient: duplicate rows.
        let mut a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.5],
            vec![1.0, 1.0, 0.5],
            vec![0.5, 0.5, 1.0],
        ])
        .unwrap();
        a.symmetrize();
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        assert!(ch.log_det().is_finite());
    }

    #[test]
    fn non_spd_eventually_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, -5.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn extend_matches_full_factorization() {
        let n = 9;
        let q = 3;
        let full = spd(n + q, 21);
        // Split into blocks.
        let a = Matrix::from_fn(n, n, |i, j| full[(i, j)]);
        let b = Matrix::from_fn(n, q, |i, j| full[(i, n + j)]);
        let c = Matrix::from_fn(q, q, |i, j| full[(n + i, n + j)]);
        let base = Cholesky::factor(&a).unwrap();
        let ext = base.extend(&b, &c).unwrap();
        let direct = Cholesky::factor(&full).unwrap();
        // Factors agree (both lower-triangular with positive diagonal
        // => unique), and solves agree.
        let rhs: Vec<f64> = (0..n + q).map(|i| (i as f64 * 0.7).cos()).collect();
        let x1 = ext.solve(&rhs).unwrap();
        let x2 = direct.solve(&rhs).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
        assert!((ext.log_det() - direct.log_det()).abs() < 1e-8);
    }

    #[test]
    fn extend_zero_q_is_identity_op() {
        let a = spd(5, 2);
        let base = Cholesky::factor(&a).unwrap();
        let ext = base.extend(&Matrix::zeros(5, 0), &Matrix::zeros(0, 0)).unwrap();
        assert_eq!(ext.n(), 5);
        assert!((ext.log_det() - base.log_det()).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = spd(7, 9);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(7, 3, |i, j| ((i + 2 * j) as f64).sin());
        let x = ch.solve_matrix(&b).unwrap();
        for j in 0..3 {
            let col_b = b.col(j);
            let col_x = ch.solve(&col_b).unwrap();
            for i in 0..7 {
                assert!((x[(i, j)] - col_x[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn multi_rhs_triangular_solves_match_single() {
        let a = spd(9, 13);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(9, 4, |i, j| ((2 * i + 3 * j) as f64).cos());
        let mut fwd = b.clone();
        ch.solve_lower_multi_in_place(&mut fwd);
        let mut both = b.clone();
        ch.solve_matrix_in_place(&mut both).unwrap();
        for j in 0..4 {
            let mut col = b.col(j);
            ch.solve_lower_in_place(&mut col);
            for i in 0..9 {
                assert!((fwd[(i, j)] - col[i]).abs() < 1e-12);
            }
            ch.solve_lower_t_in_place(&mut col);
            for i in 0..9 {
                assert!((both[(i, j)] - col[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inv_lower_t_reconstructs_inverse() {
        let a = spd(11, 17);
        let ch = Cholesky::factor(&a).unwrap();
        let mut m = Matrix::zeros(11, 11);
        ch.inv_lower_t_into(&mut m);
        let inv = ch.inverse();
        // (A^{-1})_{ab} equals the suffix dot of rows a and b of M.
        for p in 0..11 {
            for q in 0..11 {
                let start = p.max(q);
                let got = dot(&m.row(p)[start..], &m.row(q)[start..]);
                assert!(
                    (got - inv[(p, q)]).abs() < 1e-9 * (1.0 + inv[(p, q)].abs()),
                    "({p},{q}): {got} vs {}",
                    inv[(p, q)]
                );
            }
        }
        // tr(A^{-1}) equals the squared Frobenius norm of M.
        let tr: f64 = (0..11).map(|i| inv[(i, i)]).sum();
        let fro2 = dot(m.as_slice(), m.as_slice());
        assert!((tr - fro2).abs() < 1e-9 * (1.0 + tr.abs()));
    }

    /// RBF-style kernel matrix over 1-D points: unit uniform diagonal,
    /// singular when points are duplicated — the fixture for exercising
    /// the jitter escalation with a kernel-shaped (uniform-diagonal)
    /// matrix.
    fn kernelish(points: &[f64]) -> Matrix {
        let n = points.len();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else {
                let d = points[i] - points[j];
                (-0.5 * d * d).exp()
            }
        })
    }

    /// Deterministic SPD matrix with a kernel-style *uniform* diagonal,
    /// the shape for which `extend_exact`'s bit-compat contract covers
    /// the jitter-escalation path too.
    fn spd_uniform_diag(n: usize, seed: u64, diag: f64) -> Matrix {
        let mut a = spd(n, seed);
        for i in 0..n {
            a[(i, i)] = diag;
        }
        a
    }

    #[test]
    fn extend_exact_matches_from_scratch_bitwise() {
        // Property over sizes straddling nothing special (all ≤
        // BIT_EXACT_MAX_N, where from-scratch uses the same serial row
        // kernel): appending rows must reproduce the full factor bit for
        // bit, including the jitter field.
        for (n, q, seed) in [(1, 1, 3), (5, 2, 7), (9, 3, 21), (24, 8, 11), (60, 16, 5)] {
            let full = spd_uniform_diag(n + q, seed, 2.0 * (n + q) as f64);
            let a = Matrix::from_fn(n, n, |i, j| full[(i, j)]);
            let b = Matrix::from_fn(n, q, |i, j| full[(i, n + j)]);
            let c = Matrix::from_fn(q, q, |i, j| full[(n + i, n + j)]);
            let base = Cholesky::factor(&a).unwrap();
            let ext = base.extend_exact(&b, &c).unwrap();
            let direct = Cholesky::factor(&full).unwrap();
            assert_eq!(ext.jitter(), direct.jitter(), "n={n} q={q}");
            for i in 0..n + q {
                for j in 0..n + q {
                    assert!(
                        ext.l()[(i, j)].to_bits() == direct.l()[(i, j)].to_bits(),
                        "n={n} q={q} ({i},{j}): {} vs {}",
                        ext.l()[(i, j)],
                        direct.l()[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn extend_exact_bit_identity_survives_jitter_escalation() {
        // Duplicated training points make a kernel matrix singular and
        // force the base factorization onto a positive jitter; the
        // uniform diagonal keeps the escalation sequence of the stacked
        // matrix identical, so the contract must still hold.
        let n = 6;
        let q = 2;
        let pts = [0.0, 0.0, 0.3, 0.9, 1.4, 2.2, 2.9, 3.5];
        let full = kernelish(&pts);
        let a = Matrix::from_fn(n, n, |i, j| full[(i, j)]);
        let b = Matrix::from_fn(n, q, |i, j| full[(i, n + j)]);
        let c = Matrix::from_fn(q, q, |i, j| full[(n + i, n + j)]);
        let base = Cholesky::factor(&a).unwrap();
        assert!(base.jitter() > 0.0, "fixture must exercise the jitter path");
        let ext = base.extend_exact(&b, &c).unwrap();
        let direct = Cholesky::factor(&full).unwrap();
        assert_eq!(ext.jitter(), direct.jitter());
        assert_eq!(ext.l(), direct.l());
    }

    #[test]
    fn extend_exact_rejects_rather_than_perturbing_the_base() {
        let a = spd(5, 13);
        let base = Cholesky::factor(&a).unwrap();
        // Shape mismatches are typed errors.
        assert!(base.extend_exact(&Matrix::zeros(4, 1), &Matrix::zeros(1, 1)).is_err());
        assert!(base.extend_exact(&Matrix::zeros(5, 2), &Matrix::zeros(1, 1)).is_err());
        // An appended block that is not PD at the base's jitter must
        // error (the caller then falls back to a full refactorization,
        // which may escalate jitter globally) — never silently succeed.
        let mut c = Matrix::zeros(1, 1);
        c[(0, 0)] = -3.0;
        assert!(matches!(
            base.extend_exact(&Matrix::zeros(5, 1), &c),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn extend_exact_zero_q_is_identity_op() {
        let a = spd(5, 2);
        let base = Cholesky::factor(&a).unwrap();
        let ext = base.extend_exact(&Matrix::zeros(5, 0), &Matrix::zeros(0, 0)).unwrap();
        assert_eq!(ext.l(), base.l());
        assert_eq!(ext.jitter(), base.jitter());
    }

    #[test]
    fn blocked_factor_above_threshold_matches_serial_reference() {
        // Past BIT_EXACT_MAX_N the public path runs the blocked sweep;
        // it must agree with the serial row kernel to reassociation ulps
        // and reconstruct the input.
        for n in [129, 200, 313] {
            let a = spd(n, 100 + n as u64);
            let ch = Cholesky::factor(&a).unwrap();
            assert_eq!(ch.jitter(), 0.0, "n={n}");
            let mut serial = Matrix::zeros(n, n);
            Cholesky::try_factor_into(&a, 0.0, &mut serial).unwrap();
            for i in 0..n {
                for j in 0..=i {
                    let (u, v) = (ch.l()[(i, j)], serial[(i, j)]);
                    assert!(
                        (u - v).abs() <= 1e-11 * (1.0 + u.abs().max(v.abs())),
                        "n={n} ({i},{j}): {u} vs {v}"
                    );
                }
            }
            let back = ch.reconstruct();
            assert!(back.sub(&a).unwrap().norm_max() < 1e-9 * a.norm_max(), "n={n}");
        }
    }

    #[test]
    fn blocked_packed_factor_matches_dense_bitwise() {
        // The packed and dense entry points must stay bit-identical to
        // each other above the threshold (both feed the same in-place
        // blocked sweep after materialization).
        let n = 160;
        let diag = 2.0 * n as f64;
        let a = spd_uniform_diag(n, 77, diag);
        let dense = Cholesky::factor(&a).unwrap();
        for stride in [1usize, 2] {
            let mut packed = vec![9.25; n * (n - 1) / 2 * stride];
            for i in 0..n {
                for j in 0..i {
                    packed[(i * (i - 1) / 2 + j) * stride] = a[(i, j)];
                }
            }
            let ch = Cholesky::factor_packed_reusing(&packed, stride, diag, n, Matrix::zeros(0, 0))
                .unwrap();
            assert_eq!(ch.jitter(), dense.jitter());
            assert_eq!(ch.l(), dense.l(), "stride {stride}");
        }
    }

    #[test]
    fn blocked_factor_jitter_rescue_still_works() {
        // Duplicate two points of a large kernel system: the blocked
        // path must escalate jitter like the serial one does and recover.
        let n = 140;
        let mut pts: Vec<f64> = (0..n).map(|i| i as f64 * 0.05).collect();
        pts[1] = pts[0];
        let a = kernelish(&pts);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        assert!(ch.log_det().is_finite());
    }

    #[test]
    fn factor_reusing_matches_factor_and_scrubs_stale_buffer() {
        let a = spd(8, 19);
        let direct = Cholesky::factor(&a).unwrap();
        // Poison the buffer to prove every entry is overwritten.
        let stale = Matrix::from_fn(8, 8, |_, _| f64::NAN);
        let reused = Cholesky::factor_reusing(&a, stale).unwrap();
        assert_eq!(direct.l(), reused.l());
        // Round-trip the storage through another factorization.
        let b = spd(8, 23);
        let again = Cholesky::factor_reusing(&b, reused.into_l()).unwrap();
        let fresh = Cholesky::factor(&b).unwrap();
        assert_eq!(again.l(), fresh.l());
    }
}
