//! Typed configuration errors surfaced by [`crate::engine::EngineBuilder`].
//!
//! Construction used to police its inputs with `debug_assert!` and
//! panics scattered over `AlgoConfig` and `Budget`; the builder
//! funnels every invalid configuration through this enum instead, so
//! callers can branch on the failure and report it without unwinding.

use std::fmt;

/// Everything that can make an engine configuration unusable.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `Budget::batch_size` (q) must be at least 1.
    ZeroBatchSize,
    /// The initial design needs at least 2 points to seed a surrogate.
    InitialSamplesTooSmall {
        /// The offending `initial_samples` value.
        got: usize,
    },
    /// A field that must be finite and strictly positive was not.
    NonPositive {
        /// Which configuration field failed.
        field: &'static str,
        /// The offending value.
        got: f64,
    },
    /// A field that must be finite and non-negative was not.
    Negative {
        /// Which configuration field failed.
        field: &'static str,
        /// The offending value.
        got: f64,
    },
    /// An iteration/size budget that must be at least 1 was 0.
    ZeroField {
        /// Which configuration field failed.
        field: &'static str,
    },
    /// Retry backoff must not shrink (`backoff_factor >= 1`).
    BackoffFactorTooSmall {
        /// The offending factor.
        got: f64,
    },
    /// A `(lo, hi)` hyperparameter bound with `lo > hi` or non-finite
    /// endpoints.
    InvalidFitBounds {
        /// Which log-bound pair failed.
        field: &'static str,
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// Every initial-design point failed evaluation after retries; the
    /// run has no dataset to start from.
    EmptyDesign,
    /// Incremental posterior updates were requested alongside a refit
    /// schedule that re-fits hyperparameters every cycle, which leaves
    /// no hyperparameter-stable cycle for the fast path to run on.
    IncrementalUpdatesNeedStableCycles,
    /// The sparse backend's inducing-point budget is too small to carry
    /// a posterior (needs at least 2 points).
    SparseInducingTooSmall {
        /// The offending `m`.
        got: usize,
    },
    /// The sparse backend's auto-switch threshold fires before the
    /// dataset can supply `m` inducing candidates.
    SparseSwitchBeforeInducing {
        /// Configured inducing-point budget.
        m: usize,
        /// Configured switch threshold (must be >= `m`).
        switch_at: usize,
    },
    /// The adaptive-q hybrid's growth threshold must lie in (0, 1].
    HybridEtaOutOfRange {
        /// The offending `hybrid_eta`.
        got: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBatchSize => {
                write!(f, "batch size q must be at least 1")
            }
            ConfigError::InitialSamplesTooSmall { got } => {
                write!(f, "initial design needs at least 2 points, got {got}")
            }
            ConfigError::NonPositive { field, got } => {
                write!(f, "{field} must be finite and > 0, got {got}")
            }
            ConfigError::Negative { field, got } => {
                write!(f, "{field} must be finite and >= 0, got {got}")
            }
            ConfigError::ZeroField { field } => {
                write!(f, "{field} must be at least 1")
            }
            ConfigError::BackoffFactorTooSmall { got } => {
                write!(f, "ft.backoff_factor must be finite and >= 1, got {got}")
            }
            ConfigError::InvalidFitBounds { field, lo, hi } => {
                write!(f, "{field} must be a finite ordered pair, got ({lo}, {hi})")
            }
            ConfigError::EmptyDesign => {
                write!(f, "every initial-design point failed after retries; cannot start a run")
            }
            ConfigError::IncrementalUpdatesNeedStableCycles => {
                write!(
                    f,
                    "incremental_updates requires full_fit_every > 1; with a full refit every \
                     cycle there are no hyperparameter-stable cycles to update through"
                )
            }
            ConfigError::SparseInducingTooSmall { got } => {
                write!(f, "sparse surrogate needs at least 2 inducing points, got m = {got}")
            }
            ConfigError::SparseSwitchBeforeInducing { m, switch_at } => {
                write!(
                    f,
                    "sparse switch threshold ({switch_at}) fires before the dataset can \
                     supply m = {m} inducing candidates; need switch_at >= m"
                )
            }
            ConfigError::HybridEtaOutOfRange { got } => {
                write!(f, "acq.hybrid_eta must be finite and in (0, 1], got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Check a strictly-positive finite field.
pub(crate) fn positive(field: &'static str, got: f64) -> Result<(), ConfigError> {
    if got.is_finite() && got > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::NonPositive { field, got })
    }
}

/// Check a non-negative finite field.
pub(crate) fn non_negative(field: &'static str, got: f64) -> Result<(), ConfigError> {
    if got.is_finite() && got >= 0.0 {
        Ok(())
    } else {
        Err(ConfigError::Negative { field, got })
    }
}

/// Check an at-least-one count field.
pub(crate) fn at_least_one(field: &'static str, got: usize) -> Result<(), ConfigError> {
    if got >= 1 {
        Ok(())
    } else {
        Err(ConfigError::ZeroField { field })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ConfigError::NonPositive { field: "budget.sim_seconds", got: -1.0 };
        let s = e.to_string();
        assert!(s.contains("budget.sim_seconds"));
        assert!(s.contains("-1"));
        assert!(ConfigError::ZeroBatchSize.to_string().contains("batch size"));
        let e = ConfigError::SparseInducingTooSmall { got: 1 };
        assert!(e.to_string().contains("m = 1"));
        let e = ConfigError::SparseSwitchBeforeInducing { m: 64, switch_at: 10 };
        assert!(e.to_string().contains("64") && e.to_string().contains("10"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ConfigError::EmptyDesign);
    }

    #[test]
    fn helpers_reject_nan() {
        assert!(positive("f", f64::NAN).is_err());
        assert!(non_negative("f", f64::NAN).is_err());
        assert!(positive("f", 0.0).is_err());
        assert!(non_negative("f", 0.0).is_ok());
        assert!(at_least_one("f", 0).is_err());
        assert!(at_least_one("f", 1).is_ok());
    }
}
