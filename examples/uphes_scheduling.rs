//! The paper's headline application: schedule an Underground Pumped
//! Hydro-Energy Storage plant for the day-ahead energy and reserve
//! markets within the operator's time window.
//!
//! Runs mic-q-EGO (the paper's best method on this problem, q = 4)
//! against the Maizeret-like simulator, then decodes and prints the
//! recommended schedule with its profit breakdown.
//!
//! ```text
//! cargo run --release --example uphes_scheduling
//! ```

use pbo::core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::core::engine::AlgoConfig;
use pbo::problems::UphesProblem;
use pbo::uphes::schedule::Schedule;

fn main() {
    let problem = UphesProblem::maizeret(20_220_530);

    // The operator's window: 20 minutes of optimization, 10 s per
    // profit simulation, 4 parallel workers (the paper's sweet spot).
    let budget = Budget::paper(4);
    let record = run_algorithm_with(
        AlgorithmKind::MicQEgo,
        &problem,
        &budget,
        AlgoConfig::default(),
        7,
    );

    println!("=== mic-q-EGO, q = 4, 20 virtual minutes ===");
    println!("cycles      : {}", record.n_cycles());
    println!("simulations : {}", record.n_simulations());
    println!("best profit : {:.0} EUR", record.best_y());

    let best = record.best_x.clone();
    let schedule = Schedule::decode(&best);
    println!("\nrecommended schedule:");
    for (b, p) in schedule.block_power.iter().enumerate() {
        let (h0, h1) = (b * 3, b * 3 + 3);
        let mode = if *p > 0.0 {
            format!("turbine {p:.1} MW")
        } else if *p < 0.0 {
            format!("pump    {:.1} MW", -p)
        } else {
            "idle".to_string()
        };
        println!("  {h0:02}:00–{h1:02}:00  {mode}");
    }
    for (b, r) in schedule.reserve.iter().enumerate() {
        let (h0, h1) = (b * 6, b * 6 + 6);
        println!("  reserve {h0:02}:00–{h1:02}:00  {r:.2} MW offered");
    }

    let breakdown = problem.simulator().evaluate_detailed(&best);
    println!("\nprofit breakdown (scenario average):");
    println!("  energy revenue  : {:>8.0} EUR", breakdown.energy_revenue);
    println!("  pumping cost    : {:>8.0} EUR", -breakdown.pumping_cost);
    println!("  reserve revenue : {:>8.0} EUR", breakdown.reserve_revenue);
    println!("  penalties       : {:>8.0} EUR", -breakdown.penalties);
    println!("  water value     : {:>8.0} EUR", breakdown.water_value);
    println!("  net profit      : {:>8.0} EUR", breakdown.profit);
    println!("  infeasible quarters/scenario: {:.2}", breakdown.infeasible_steps);
}
