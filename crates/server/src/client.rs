//! Blocking client for the session protocol, plus the drive loop the
//! `pbo-server drive` subcommand, the CI smoke test and the
//! conformance suite all share: evaluate the server's asks with a
//! local problem and tell the values back until the session finishes
//! (or a deliberate stop point, to stage a crash).

use crate::proto;
use pbo_core::json::Json;
use pbo_core::session::SessionConfig;
use pbo_problems::Problem;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A protocol-level or transport-level client failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcError {
    /// Server error code, or `"transport"` for I/O and parse failures.
    pub code: String,
    /// Detail.
    pub message: String,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for RpcError {}

fn transport(message: impl Into<String>) -> RpcError {
    RpcError { code: "transport".into(), message: message.into() }
}

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, RpcError> {
        let stream = TcpStream::connect(addr).map_err(|e| transport(format!("connect: {e}")))?;
        let writer = stream.try_clone().map_err(|e| transport(format!("clone: {e}")))?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one raw line, return the raw response — even `ok:false`
    /// ones (the fuzz tests inspect those directly).
    pub fn raw(&mut self, line: &str) -> Result<Json, RpcError> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| transport(format!("send: {e}")))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| transport(format!("recv: {e}")))?;
        if n == 0 {
            return Err(transport("server closed the connection"));
        }
        pbo_core::json::parse(response.trim_end()).map_err(|e| transport(format!("parse: {e}")))
    }

    /// Send one line and unwrap the `ok:true` envelope; `ok:false`
    /// becomes a typed [`RpcError`] carrying the server's code.
    pub fn call(&mut self, line: &str) -> Result<Json, RpcError> {
        let v = self.raw(line)?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            _ => {
                let e = v.get("error");
                Err(RpcError {
                    code: e
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str)
                        .unwrap_or("transport")
                        .to_string(),
                    message: e
                        .and_then(|e| e.get("message"))
                        .and_then(Json::as_str)
                        .unwrap_or("malformed error response")
                        .to_string(),
                })
            }
        }
    }

    /// `create`: returns `(created, next_turn)`.
    pub fn create(&mut self, id: &str, cfg: &SessionConfig) -> Result<(bool, usize), RpcError> {
        let v = self.call(&proto::encode_create(id, cfg))?;
        Ok((
            v.get("created").and_then(Json::as_bool).unwrap_or(false),
            v.get("turn").and_then(Json::as_usize).unwrap_or(0),
        ))
    }

    /// `ask`: returns `(turn, points)`. The batch size is the number
    /// of points — with a variable-q algorithm it changes cycle to
    /// cycle. The proto-2 reply also carries `q` explicitly; when
    /// present it is cross-checked against the point count so a
    /// desynced server fails loudly instead of silently.
    pub fn ask(&mut self, id: &str) -> Result<(usize, Vec<Vec<f64>>), RpcError> {
        let v = self.call(&proto::encode_ask(id))?;
        let turn = v
            .get("turn")
            .and_then(Json::as_usize)
            .ok_or_else(|| transport("ask response missing 'turn'"))?;
        let points = v
            .get("points")
            .and_then(Json::as_array)
            .ok_or_else(|| transport("ask response missing 'points'"))?
            .iter()
            .map(|p| p.as_array().map(|xs| xs.iter().filter_map(Json::as_f64).collect()))
            .collect::<Option<Vec<Vec<f64>>>>()
            .ok_or_else(|| transport("ask response points malformed"))?;
        if let Some(q) = v.get("q").and_then(Json::as_usize) {
            if q != points.len() {
                return Err(transport(format!(
                    "ask response says q={q} but carries {} points",
                    points.len()
                )));
            }
        }
        Ok((turn, points))
    }

    /// `tell`: returns true once the session is done.
    pub fn tell(&mut self, id: &str, turn: usize, values: &[f64]) -> Result<bool, RpcError> {
        let v = self.call(&proto::encode_tell(id, turn, values))?;
        Ok(v.get("done").and_then(Json::as_bool).unwrap_or(false))
    }

    /// `status`: the raw status object.
    pub fn status(&mut self, id: &str) -> Result<Json, RpcError> {
        self.call(&proto::encode_id_op("status", id))
    }

    /// `record`: the finished record's canonical JSON line, byte-exact.
    pub fn record(&mut self, id: &str) -> Result<String, RpcError> {
        let v = self.call(&proto::encode_id_op("record", id))?;
        v.get("record")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| transport("record response missing 'record'"))
    }

    /// `server-status`: the raw server summary.
    pub fn server_status(&mut self) -> Result<Json, RpcError> {
        self.call(&proto::encode_bare_op("server-status"))
    }

    /// `close` a session.
    pub fn close(&mut self, id: &str) -> Result<(), RpcError> {
        self.call(&proto::encode_id_op("close", id)).map(|_| ())
    }

    /// Ask the daemon to stop.
    pub fn shutdown(&mut self) -> Result<(), RpcError> {
        self.call(&proto::encode_bare_op("shutdown")).map(|_| ())
    }
}

/// What [`drive`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveOutcome {
    /// Tells performed in this invocation (not lifetime total).
    pub tells: usize,
    /// Whether the session finished.
    pub done: bool,
    /// The finished record line, when done.
    pub record: Option<String>,
}

/// Create (or re-attach to) a session and ask/evaluate/tell until it
/// finishes — or until `stop_after` tells, which is how the crash
/// tests park a session mid-run before killing the daemon.
pub fn drive(
    client: &mut Client,
    id: &str,
    cfg: &SessionConfig,
    problem: &dyn Problem,
    stop_after: Option<usize>,
) -> Result<DriveOutcome, RpcError> {
    client.create(id, cfg)?;
    let mut tells = 0usize;
    let mut done = client
        .status(id)?
        .get("phase")
        .and_then(Json::as_str)
        .is_some_and(|p| p == "done");
    while !done {
        if stop_after.is_some_and(|k| tells >= k) {
            return Ok(DriveOutcome { tells, done: false, record: None });
        }
        let (turn, points) = client.ask(id)?;
        let values: Vec<f64> = points.iter().map(|x| problem.eval(x)).collect();
        done = client.tell(id, turn, &values)?;
        tells += 1;
    }
    let record = client.record(id)?;
    Ok(DriveOutcome { tells, done: true, record: Some(record) })
}
