//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! Benchmarks compile and run with the same source syntax as upstream
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `BenchmarkId::from_parameter`, `Bencher::iter`).
//! Measurement is a simple calibrated-batch sampler: warm up, pick an
//! iteration count per sample from the warm-up estimate, collect samples
//! within the configured measurement time, and report mean / stddev / min.
//!
//! Each result is printed in a human-readable line *and* a machine-readable
//! `SHIM_JSON {...}` line so scripts can scrape timings; if the
//! `CRITERION_SHIM_OUT` environment variable names a file, JSON lines are
//! appended there as well.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
struct Settings {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.settings.measurement_time = dur;
        self
    }

    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.settings.warm_up_time = dur;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.settings, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup { _c: self, name: name.into(), settings }
    }

    pub fn final_summary(&self) {}
}

/// Benchmark identifier: `group/function/parameter` pieces.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark id by `bench_function`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measurement_time = dur;
        self
    }

    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.warm_up_time = dur;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.settings, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.settings, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_one(id: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    // Substring filter, mirroring `cargo bench -- <filter>` upstream
    // (harness CLI args don't reach the shim, so an env var stands in).
    if let Ok(filter) = std::env::var("CRITERION_SHIM_FILTER") {
        if !filter.is_empty() && !id.contains(&filter) {
            return;
        }
    }
    // Warm-up doubles the batch size until the configured wall time passes,
    // leaving a per-iteration estimate for sample sizing.
    let warm_start = Instant::now();
    let mut iters: u64 = 1;
    let mut elapsed = time_batch(f, iters);
    let mut last_per_iter = elapsed.as_secs_f64() / iters as f64;
    while warm_start.elapsed() < settings.warm_up_time {
        if elapsed < Duration::from_millis(50) {
            iters = iters.saturating_mul(2);
        }
        elapsed = time_batch(f, iters);
        last_per_iter = elapsed.as_secs_f64() / iters as f64;
    }

    let target_per_sample =
        settings.measurement_time.as_secs_f64() / settings.sample_size as f64;
    let iters_per_sample = if last_per_iter > 0.0 {
        ((target_per_sample / last_per_iter).floor() as u64).max(1)
    } else {
        iters.max(1)
    };

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    let measure_start = Instant::now();
    for i in 0..settings.sample_size {
        let elapsed = time_batch(f, iters_per_sample);
        samples_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        // Never exceed ~2x the configured measurement time even if the
        // warm-up estimate was far off, but always take >= 3 samples.
        if i >= 2 && measure_start.elapsed() > settings.measurement_time * 2 {
            break;
        }
    }

    let n = samples_ns.len() as f64;
    let mean = samples_ns.iter().sum::<f64>() / n;
    let var = samples_ns.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n.max(1.0);
    let sd = var.sqrt();
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let p50 = percentile(&samples_ns, 0.50);
    let p95 = percentile(&samples_ns, 0.95);

    println!(
        "{id:<48} time: [{} ± {}] (min {}, p50 {}, p95 {}, {} samples × {} iters)",
        fmt_ns(mean),
        fmt_ns(sd),
        fmt_ns(min),
        fmt_ns(p50),
        fmt_ns(p95),
        samples_ns.len(),
        iters_per_sample
    );
    let json = format!(
        "{{\"id\":\"{id}\",\"mean_ns\":{mean:.1},\"stddev_ns\":{sd:.1},\"min_ns\":{min:.1},\"p50_ns\":{p50:.1},\"p95_ns\":{p95:.1},\"samples\":{},\"iters_per_sample\":{iters_per_sample}}}",
        samples_ns.len()
    );
    println!("SHIM_JSON {json}");
    if let Ok(path) = std::env::var("CRITERION_SHIM_OUT") {
        if let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(path)
        {
            let _ = writeln!(file, "{json}");
        }
    }
}

/// Linear-interpolated quantile over the (unsorted) sample vector.
fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(40))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        let mut g = c.benchmark_group("shim_smoke");
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| (0..n).map(|i| i * i).sum::<usize>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    #[test]
    fn percentile_interpolates() {
        let s = [30.0, 10.0, 40.0, 20.0];
        assert_eq!(percentile(&s, 0.0), 10.0);
        assert_eq!(percentile(&s, 1.0), 40.0);
        assert_eq!(percentile(&s, 0.5), 25.0);
        assert_eq!(percentile(&s, 0.95), 38.5);
    }
}
