//! Lock-free metrics: counters, gauges and histograms behind a
//! [`MetricsRegistry`], plus [`MetricsObserver`] — the adapter that
//! folds engine [`Event`]s into the registry.
//!
//! Hot-path updates (`inc`/`add`/`set`/`record`) are single atomic
//! operations (a short CAS loop for float accumulation) — no locks, no
//! allocation — so instruments can be bumped from instrumented code at
//! hardware speed. Registration and snapshotting are cold paths and
//! take the registry's interior lock; handles returned by the registry
//! are `Arc`s that never touch it again.

use super::{Event, Observer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Last-value gauge (an `f64` stored as its bit pattern).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(f64::NAN.to_bits()) }
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (NaN until first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram of `f64` samples. Bucket `i` counts samples
/// `<= bounds[i]`; one implicit overflow bucket counts the rest.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Build with the given ascending upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.into(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Record one sample (lock-free; the float sum is a CAS loop).
    pub fn record(&self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Point-in-time copy `(bounds, per-bucket counts incl. overflow)`.
    pub fn snapshot(&self) -> (Vec<f64>, Vec<u64>) {
        (
            self.bounds.to_vec(),
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        )
    }
}

/// Name-keyed instrument registry. Get-or-register returns shared
/// handles whose updates never lock; `snapshot()` reads everything in
/// deterministic (sorted-name) order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Point-in-time view of a whole registry, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, count, sum, bucket counts)` for every histogram.
    pub histograms: Vec<(String, u64, f64, Vec<u64>)>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or register a counter (cold path: locks the name table).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or register a histogram. `bounds` applies only on first
    /// registration.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Deterministically ordered copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.count(), v.sum(), v.snapshot().1))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// Default per-phase virtual-time bucket bounds \[s\]: log-ish spacing
/// from sub-second fits to multi-minute simulation phases.
pub const PHASE_SECONDS_BOUNDS: [f64; 8] = [0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0];

/// Observer adapter folding engine events into a [`MetricsRegistry`].
///
/// Instrument names are stable API: counters `engine.evaluations`,
/// `engine.cycles`, `engine.incumbent_improvements`, `fit.full`,
/// `fit.warm`, `fit.fallbacks`, `acq.restart_shortfall`,
/// `exec.retries`, `exec.panics`, `exec.nan_quarantined`,
/// `exec.inf_quarantined`, `exec.stragglers`, `exec.timeouts`,
/// `exec.imputed`, `exec.dropped`; gauges `engine.best_y_min`,
/// `engine.clock_s`; histograms `time.fit_virtual_s`,
/// `time.acq_virtual_s`, `time.sim_virtual_s`.
pub struct MetricsObserver {
    registry: Arc<MetricsRegistry>,
    evaluations: Arc<Counter>,
    cycles: Arc<Counter>,
    improvements: Arc<Counter>,
    fit_full: Arc<Counter>,
    fit_warm: Arc<Counter>,
    fit_fallbacks: Arc<Counter>,
    restart_shortfall: Arc<Counter>,
    retries: Arc<Counter>,
    panics: Arc<Counter>,
    nan_quarantined: Arc<Counter>,
    inf_quarantined: Arc<Counter>,
    stragglers: Arc<Counter>,
    timeouts: Arc<Counter>,
    imputed: Arc<Counter>,
    dropped: Arc<Counter>,
    best_y_min: Arc<Gauge>,
    clock_s: Arc<Gauge>,
    fit_s: Arc<Histogram>,
    acq_s: Arc<Histogram>,
    sim_s: Arc<Histogram>,
}

impl MetricsObserver {
    /// Pre-register every instrument against `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let r = &registry;
        MetricsObserver {
            evaluations: r.counter("engine.evaluations"),
            cycles: r.counter("engine.cycles"),
            improvements: r.counter("engine.incumbent_improvements"),
            fit_full: r.counter("fit.full"),
            fit_warm: r.counter("fit.warm"),
            fit_fallbacks: r.counter("fit.fallbacks"),
            restart_shortfall: r.counter("acq.restart_shortfall"),
            retries: r.counter("exec.retries"),
            panics: r.counter("exec.panics"),
            nan_quarantined: r.counter("exec.nan_quarantined"),
            inf_quarantined: r.counter("exec.inf_quarantined"),
            stragglers: r.counter("exec.stragglers"),
            timeouts: r.counter("exec.timeouts"),
            imputed: r.counter("exec.imputed"),
            dropped: r.counter("exec.dropped"),
            best_y_min: r.gauge("engine.best_y_min"),
            clock_s: r.gauge("engine.clock_s"),
            fit_s: r.histogram("time.fit_virtual_s", &PHASE_SECONDS_BOUNDS),
            acq_s: r.histogram("time.acq_virtual_s", &PHASE_SECONDS_BOUNDS),
            sim_s: r.histogram("time.sim_virtual_s", &PHASE_SECONDS_BOUNDS),
            registry,
        }
    }

    /// The backing registry (snapshot it after — or during — a run).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn fold_faults(&self, f: &crate::record::FaultCounters) {
        self.retries.add(f.retries);
        self.panics.add(f.panics);
        self.nan_quarantined.add(f.nan_quarantined);
        self.inf_quarantined.add(f.inf_quarantined);
        self.stragglers.add(f.stragglers);
        self.timeouts.add(f.timeouts);
        self.imputed.add(f.imputed);
        self.dropped.add(f.dropped);
    }
}

impl Observer for MetricsObserver {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::RunStarted { .. } => {}
            Event::DesignEvaluated { evaluated, faults, .. } => {
                self.evaluations.add(*evaluated as u64);
                self.fold_faults(faults);
            }
            Event::CycleStarted { cycle, clock } => {
                let _ = cycle;
                self.clock_s.set(*clock);
            }
            Event::FitCompleted { full, fallback, virtual_s, .. } => {
                if *fallback {
                    self.fit_fallbacks.inc();
                } else if *full {
                    self.fit_full.inc();
                } else {
                    self.fit_warm.inc();
                }
                self.fit_s.record(*virtual_s);
            }
            Event::AcquisitionCompleted { restart_shortfall, virtual_s, .. } => {
                self.restart_shortfall.add(*restart_shortfall as u64);
                self.acq_s.record(*virtual_s);
            }
            // Per-point faults are already aggregated into the
            // BatchEvaluated/DesignEvaluated counters; count nothing
            // here to keep the totals reconcilable.
            Event::PointFaulted { .. } => {}
            Event::BatchEvaluated { n_evals, faults, virtual_s, .. } => {
                self.cycles.inc();
                self.evaluations.add(*n_evals as u64);
                self.fold_faults(faults);
                self.sim_s.record(*virtual_s);
            }
            Event::IncumbentImproved { best_y_min, .. } => {
                self.improvements.inc();
                self.best_y_min.set(*best_y_min);
            }
            Event::RunFinished { best_y_min, final_clock, .. } => {
                self.best_y_min.set(*best_y_min);
                self.clock_s.set(*final_clock);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FaultCounters;

    #[test]
    fn counter_gauge_histogram_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::default();
        assert!(g.get().is_nan());
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);

        let h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 55.5);
        assert_eq!(h.snapshot().1, vec![1, 1, 1]);
    }

    #[test]
    fn hot_path_is_safe_under_contention() {
        let h = Arc::new(Histogram::new(&PHASE_SECONDS_BOUNDS));
        let c = Arc::new(Counter::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 * 0.01);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().1.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn registry_returns_shared_handles_and_sorted_snapshot() {
        let r = MetricsRegistry::new();
        let a = r.counter("z.second");
        let b = r.counter("z.second");
        a.inc();
        b.inc();
        r.counter("a.first").add(7);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a.first".into(), 7), ("z.second".into(), 2)]);
        assert_eq!(snap.counter("z.second"), 2);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn metrics_observer_folds_events() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut obs = MetricsObserver::new(reg.clone());
        obs.on_event(&Event::DesignEvaluated {
            requested: 8,
            evaluated: 7,
            faults: FaultCounters { dropped: 1, retries: 2, ..FaultCounters::default() },
        });
        obs.on_event(&Event::FitCompleted {
            cycle: 0,
            n: 7,
            full: true,
            restarts: 2,
            evals: 40,
            mll: -3.0,
            fallback: false,
            wall_ns: 10,
            virtual_s: 1.0,
        });
        obs.on_event(&Event::AcquisitionCompleted {
            cycle: 0,
            algo: "turbo".into(),
            q: 2,
            restart_shortfall: 3,
            wall_ns: 10,
            virtual_s: 0.5,
        });
        obs.on_event(&Event::BatchEvaluated {
            cycle: 0,
            n_points: 2,
            n_evals: 2,
            faults: FaultCounters::default(),
            virtual_s: 10.6,
        });
        obs.on_event(&Event::IncumbentImproved { cycle: 0, best_y_min: -1.0 });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("engine.evaluations"), 9);
        assert_eq!(snap.counter("engine.cycles"), 1);
        assert_eq!(snap.counter("fit.full"), 1);
        assert_eq!(snap.counter("acq.restart_shortfall"), 3);
        assert_eq!(snap.counter("exec.retries"), 2);
        assert_eq!(snap.counter("exec.dropped"), 1);
        assert_eq!(snap.counter("engine.incumbent_improvements"), 1);
        let g = snap.gauges.iter().find(|(n, _)| n == "engine.best_y_min").unwrap().1;
        assert_eq!(g, -1.0);
    }
}
