//! Thompson-sampling batch acquisition (extension).
//!
//! The paper's related-work taxonomy (§2.2, after Shahriari et al.)
//! lists Thompson sampling among the information-based strategies and
//! names it a natural batch generator: each of the q candidates is the
//! minimizer of an independent draw from the joint GP posterior over a
//! discrete candidate set — embarrassingly parallel and with no inner
//! optimization at all. Included here as the paper's "future work"
//! exploration of cheaper acquisition processes.

use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_gp::Surrogate;
use pbo_linalg::{Cholesky, Matrix};
use pbo_problems::Problem;
use pbo_sampling::{normal, sobol::Sobol};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build one Thompson batch of `q` candidates from `n_cand` Sobol
/// candidates. Works on any surrogate backend: only the joint posterior
/// over the candidate set is needed.
pub fn thompson_batch(
    gp: &dyn Surrogate,
    q: usize,
    n_cand: usize,
    seed: u64,
) -> Vec<Vec<f64>> {
    let d = gp.dim();
    let n_cand = n_cand.max(q * 4);
    let mut sobol = Sobol::scrambled(d, seed);
    let mut cands = Matrix::zeros(0, d);
    for _ in 0..n_cand {
        cands.push_row(&sobol.next_point()).expect("candidate width");
    }
    let Ok((mu, cov)) = gp.posterior_joint(&cands) else {
        // Degenerate posterior: fall back to the first q candidates.
        return (0..q).map(|i| cands.row(i % n_cand).to_vec()).collect();
    };
    let Ok(chol) = Cholesky::factor(&cov) else {
        return (0..q).map(|i| cands.row(i % n_cand).to_vec()).collect();
    };
    let l = chol.l();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7405_5011);
    let mut chosen: Vec<usize> = Vec::with_capacity(q);
    let mut z = vec![0.0; n_cand];
    for _ in 0..q {
        normal::fill(&mut rng, &mut z);
        // One posterior path: y = μ + L z (lower-triangular product).
        let mut best = (f64::INFINITY, 0usize);
        for i in 0..n_cand {
            let y = mu[i] + pbo_linalg::vec_ops::dot(&l.row(i)[..=i], &z[..=i]);
            if y < best.0 && !chosen.contains(&i) {
                best = (y, i);
            }
        }
        chosen.push(best.1);
    }
    chosen.into_iter().map(|i| cands.row(i).to_vec()).collect()
}

/// Drive a prepared engine with Thompson-sampling BO to budget
/// exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::ThompsonSampling, e)
}

/// Run Thompson-sampling BO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("thompson")
        .build()
        .expect("invalid Thompson-sampling configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_gp::kernel::{Kernel, KernelType};
    use pbo_gp::GaussianProcess;
    use pbo_problems::SyntheticFn;

    fn toy_gp() -> GaussianProcess {
        let xs = [0.05, 0.3, 0.55, 0.8, 0.95];
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = xs.iter().map(|&v: &f64| (v - 0.4) * (v - 0.4)).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 1);
        kernel.lengthscales = vec![0.25];
        GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
    }

    #[test]
    fn batch_points_distinct_and_in_cube() {
        let gp = toy_gp();
        let batch = thompson_batch(&gp, 4, 64, 3);
        assert_eq!(batch.len(), 4);
        for p in &batch {
            assert!((0.0..1.0).contains(&p[0]));
        }
        for i in 0..4 {
            for j in 0..i {
                assert_ne!(batch[i], batch[j]);
            }
        }
    }

    #[test]
    fn draws_concentrate_near_posterior_minimum() {
        // With a well-identified minimum near 0.4 and small noise, most
        // Thompson picks should land in [0.2, 0.6].
        let gp = toy_gp();
        let mut near = 0;
        let mut total = 0;
        for seed in 0..20 {
            for p in thompson_batch(&gp, 2, 128, seed) {
                total += 1;
                if (0.2..0.6).contains(&p[0]) {
                    near += 1;
                }
            }
        }
        assert!(near * 2 > total, "{near}/{total} picks near the minimum");
    }

    #[test]
    fn full_run_improves_over_doe() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.algorithm, "thompson");
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }
}
