#![allow(clippy::needless_range_loop)]

//! Property-based tests of Gaussian-process invariants.

use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::Matrix;
use proptest::prelude::*;

/// Random 2-d training set with targets in a bounded range and inputs
/// kept pairwise distinct (proptest may generate near-duplicates; the
/// jitter machinery must cope, but exact-duplicate semantics are tested
/// separately).
fn dataset() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    prop::collection::vec(((0.0f64..1.0), (0.0f64..1.0), (-10.0f64..10.0)), 3..25).prop_map(
        |rows| {
            let mut x = Matrix::zeros(0, 2);
            let mut y = Vec::new();
            for (a, b, v) in rows {
                x.push_row(&[a, b]).unwrap();
                y.push(v);
            }
            (x, y)
        },
    )
}

fn gp(x: Matrix, y: &[f64], ls: f64, noise: f64) -> GaussianProcess {
    let mut kernel = Kernel::new(KernelType::Matern52, 2);
    kernel.lengthscales = vec![ls; 2];
    GaussianProcess::new(x, y, kernel, noise).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn posterior_variance_never_exceeds_prior((x, y) in dataset(),
                                              px in 0.0f64..1.0, py in 0.0f64..1.0) {
        let model = gp(x, &y, 0.4, 1e-4);
        let (_, var) = model.predict(&[px, py]);
        let (_, scale) = model.standardization();
        // Prior latent variance = outputscale × scale² (standardized).
        let prior = model.kernel().prior_var() * scale * scale;
        prop_assert!(var <= prior * (1.0 + 1e-9) + 1e-12, "var {var} > prior {prior}");
    }

    #[test]
    fn conditioning_never_increases_variance((x, y) in dataset(),
                                             nx in 0.0f64..1.0, ny in 0.0f64..1.0,
                                             px in 0.0f64..1.0, py in 0.0f64..1.0) {
        let model = gp(x, &y, 0.4, 1e-4);
        let fantasy = model.predict_mean(&[nx, ny]);
        let cond = model.condition_on(&[vec![nx, ny]], &[fantasy]).unwrap();
        let (_, v0) = model.predict(&[px, py]);
        let (_, v1) = cond.predict(&[px, py]);
        // Conditioning on one more (noisy) observation cannot inflate
        // the posterior variance anywhere (information never hurts).
        prop_assert!(v1 <= v0 * (1.0 + 1e-6) + 1e-9, "{v0} -> {v1}");
    }

    #[test]
    fn predictions_shift_equivariantly((x, y) in dataset(),
                                       shift in -50.0f64..50.0,
                                       px in 0.0f64..1.0, py in 0.0f64..1.0) {
        // GP(y + c) predicts GP(y) + c with identical variance: the
        // standardization + profiled trend must make the model exactly
        // shift-equivariant.
        let m1 = gp(x.clone(), &y, 0.4, 1e-4);
        let shifted: Vec<f64> = y.iter().map(|v| v + shift).collect();
        let m2 = gp(x, &shifted, 0.4, 1e-4);
        let (mu1, v1) = m1.predict(&[px, py]);
        let (mu2, v2) = m2.predict(&[px, py]);
        prop_assert!((mu2 - mu1 - shift).abs() < 1e-6 * (1.0 + mu1.abs() + shift.abs()),
                     "means {mu1} vs {mu2} (shift {shift})");
        prop_assert!((v1 - v2).abs() < 1e-6 * (1.0 + v1));
    }

    #[test]
    fn joint_posterior_is_symmetric_psd((x, y) in dataset(),
                                        ax in 0.0f64..1.0, ay in 0.0f64..1.0,
                                        bx in 0.0f64..1.0, by in 0.0f64..1.0) {
        let model = gp(x, &y, 0.35, 1e-4);
        let pts = Matrix::from_rows(&[vec![ax, ay], vec![bx, by]]).unwrap();
        let (_, cov) = model.posterior_joint(&pts).unwrap();
        prop_assert!((cov[(0, 1)] - cov[(1, 0)]).abs() < 1e-10);
        // 2x2 PSD: diagonal nonnegative, determinant ≥ −tol.
        prop_assert!(cov[(0, 0)] >= 0.0 && cov[(1, 1)] >= 0.0);
        let det = cov[(0, 0)] * cov[(1, 1)] - cov[(0, 1)] * cov[(1, 0)];
        prop_assert!(det >= -1e-9 * (1.0 + cov[(0, 0)] * cov[(1, 1)]), "det {det}");
    }

    #[test]
    fn noise_monotonically_smooths_in_sample((x, y) in dataset()) {
        // With larger noise, in-sample residuals can only grow (the
        // model trusts the data less).
        prop_assume!(pbo_linalg::vec_ops::variance(&y) > 1e-6);
        let tight = gp(x.clone(), &y, 0.4, 1e-8);
        let loose = gp(x.clone(), &y, 0.4, 0.5);
        let mut res_tight = 0.0;
        let mut res_loose = 0.0;
        for i in 0..x.rows() {
            let p = x.row(i).to_vec();
            res_tight += (tight.predict_mean(&p) - y[i]).powi(2);
            res_loose += (loose.predict_mean(&p) - y[i]).powi(2);
        }
        prop_assert!(res_loose >= res_tight - 1e-9,
                     "tight {res_tight} vs loose {res_loose}");
    }
}
