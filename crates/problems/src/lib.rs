#![allow(clippy::needless_range_loop)]

//! # pbo-problems — the paper's problem instances
//!
//! - [`synthetic`]: the three Table-1 benchmark functions (Rosenbrock,
//!   Ackley, Schwefel, all optimized in 12 dimensions) plus a few extra
//!   standard functions used by the extended test-suite and ablations;
//! - [`uphes_problem`]: the UPHES scheduling problem — a thin adapter
//!   over [`pbo_uphes::Simulator`] exposing the 12-d unit-cube decision
//!   space with `maximize = true`;
//! - [`random_search`]: the uniform-random baseline of the paper's
//!   discussion section (best of ~12 000 samples ≈ −1200 EUR).
//!
//! The [`Problem`] trait is the single interface the optimization engine
//! sees; implementations must be `Sync` so batches can be evaluated by
//! the parallel worker pool.

pub mod fault;
pub mod random_search;
pub mod synthetic;
pub mod uphes_problem;

pub use fault::{FaultPlan, FaultyProblem};
pub use synthetic::SyntheticFn;
pub use uphes_problem::UphesProblem;

/// The observable side effects of one simulator call, as seen by the
/// fault-tolerant executor: the objective value plus any *virtual* time
/// the evaluation took beyond the nominal per-simulation cost (a
/// straggling MPI rank in the paper's cluster setting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalEffect {
    /// Objective value in the problem's native orientation.
    pub value: f64,
    /// Extra virtual seconds consumed beyond the nominal simulation
    /// time (0 for a healthy worker).
    pub extra_virtual_secs: f64,
}

/// A black-box optimization problem over a box domain.
pub trait Problem: Sync {
    /// Problem name for reports.
    fn name(&self) -> &str;
    /// Input dimension.
    fn dim(&self) -> usize;
    /// Per-dimension lower bounds.
    fn lower(&self) -> &[f64];
    /// Per-dimension upper bounds.
    fn upper(&self) -> &[f64];
    /// Objective value at `x` (native orientation; see
    /// [`Problem::maximize`]).
    fn eval(&self, x: &[f64]) -> f64;
    /// True when the problem is a maximization (the engine negates
    /// internally). Default: minimization.
    fn maximize(&self) -> bool {
        false
    }
    /// Known optimal value, when available (benchmarks only).
    fn optimum(&self) -> Option<f64> {
        None
    }
    /// Evaluation through the fault-tolerant executor: may panic (a
    /// crashed worker), return non-finite values, or report extra
    /// virtual time (a straggler). The default is a healthy evaluation;
    /// only fault-injection wrappers such as [`FaultyProblem`] override
    /// this, so the plain [`Problem::eval`] surface stays clean.
    fn eval_effect(&self, x: &[f64]) -> EvalEffect {
        EvalEffect { value: self.eval(x), extra_virtual_secs: 0.0 }
    }
}

/// Orientation-normalized evaluation: always "smaller is better".
pub fn eval_min(problem: &dyn Problem, x: &[f64]) -> f64 {
    let v = problem.eval(x);
    if problem.maximize() {
        -v
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_min_flips_maximizers() {
        let p = UphesProblem::maizeret(3);
        let x = vec![0.45; 12];
        assert_eq!(eval_min(&p, &x), -p.eval(&x));
        let b = SyntheticFn::ackley(4);
        let x = vec![1.0; 4];
        assert_eq!(eval_min(&b, &x), b.eval(&x));
    }
}
