//! Acquisition-process cost vs batch size — the mechanism behind
//! Figs. 2 and 9: KB's q sequential conditionings, mic's q/2, MC-q-EI's
//! joint q·d optimization, and BSP's 2q local problems.
//!
//! Each benchmark builds one batch from a frozen, fitted model — i.e.
//! measures exactly what the virtual clock charges as "acquisition".
//!
//! The `acq_ei_multistart_8x96` group is the PR's headline: the full
//! 8-restart × 96-raw-sample EI maximization at n=256, d=12, measured
//! three ways — `prepr_serial` (a faithful in-bench replica of the
//! seed's serial multistart over the allocating posterior path),
//! `new_threads1` (the overhauled path pinned to one compute thread —
//! isolates the flop/allocation savings) and `new_threadsN` (all
//! available cores). Results are recorded in `BENCH_acq.json`.
//!
//! Set `PBO_BENCH_SMOKE=1` for a seconds-scale CI smoke configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbo_acq::single::ExpectedImprovement;
use pbo_acq::Acquisition;
use pbo_core::algorithms::{kb_qego, mic_qego, qei_multistart};
use pbo_core::engine::{AcqConfig, AlgoConfig, QeiConfig};
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::Matrix;
use pbo_opt::multistart::MultistartConfig;
use pbo_opt::{Bounds, FnGradObjective, OptResult};
use pbo_sampling::sobol::Sobol;
use pbo_sampling::{lhs, SeedStream};

const Q_GRID: [usize; 3] = [2, 4, 8];

/// Seconds-scale smoke configuration for CI (`PBO_BENCH_SMOKE=1`).
fn smoke() -> bool {
    std::env::var_os("PBO_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn tune(g: &mut criterion::BenchmarkGroup<'_>) {
    if smoke() {
        g.measurement_time(std::time::Duration::from_millis(150));
        g.warm_up_time(std::time::Duration::from_millis(30));
        g.sample_size(10);
    } else {
        g.measurement_time(std::time::Duration::from_secs(2));
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.sample_size(10);
    }
}

fn q_grid() -> &'static [usize] {
    if smoke() {
        &Q_GRID[..1]
    } else {
        &Q_GRID
    }
}

fn fitted_gp(n: usize) -> GaussianProcess {
    let seeds = SeedStream::new(17);
    let pts = lhs::latin_hypercube(&mut seeds.fork_named("d").rng(), n, 12);
    let mut x = Matrix::zeros(0, 12);
    let mut y = Vec::with_capacity(n);
    for p in &pts {
        y.push(p.iter().enumerate().map(|(i, v)| ((i + 1) as f64 * v).sin()).sum::<f64>());
        x.push_row(p).unwrap();
    }
    let mut kernel = Kernel::new(KernelType::Matern52, 12);
    kernel.lengthscales = vec![0.4; 12];
    GaussianProcess::new(x, &y, kernel, 1e-4).unwrap()
}

fn cfg() -> AlgoConfig {
    AlgoConfig {
        acq: AcqConfig { restarts: 2, raw_samples: 24, ..AcqConfig::default() },
        qei: QeiConfig { samples: 64, restarts: 2, raw_samples: 8 },
        ..AlgoConfig::default()
    }
}

fn bench_kb(c: &mut Criterion) {
    let gp = fitted_gp(if smoke() { 48 } else { 128 });
    let bounds = Bounds::unit(12);
    let cfg = cfg();
    let mut g = c.benchmark_group("acq_kb_q_ego");
    tune(&mut g);
    for &q in q_grid() {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| kb_qego::kb_batch(&gp, &bounds, q, &cfg, 1).0.len())
        });
    }
    g.finish();
}

fn bench_mic(c: &mut Criterion) {
    let gp = fitted_gp(if smoke() { 48 } else { 128 });
    let bounds = Bounds::unit(12);
    let cfg = cfg();
    let mut g = c.benchmark_group("acq_mic_q_ego");
    tune(&mut g);
    for &q in q_grid() {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| mic_qego::mic_batch(&gp, &bounds, q, &cfg, 1).0.len())
        });
    }
    g.finish();
}

fn bench_mc_qei(c: &mut Criterion) {
    let gp = fitted_gp(if smoke() { 48 } else { 128 });
    let bounds = Bounds::unit(12);
    let cfg = cfg();
    let f_best = gp.best_observed(false);
    let mut g = c.benchmark_group("acq_mc_qei_joint");
    tune(&mut g);
    for &q in q_grid() {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            let qei = pbo_acq::mc::QExpectedImprovement::new(f_best, q, cfg.qei.samples, 3);
            let ms = qei_multistart(&cfg, 3);
            b.iter(|| pbo_acq::mc::optimize_qei(&gp, &qei, &bounds, &[], &ms).value)
        });
    }
    g.finish();
}

/// GP-UCB-PE's batch: one UCB multistart for the leader plus q−1
/// variance-greedy fillers from a single joint posterior — the cost
/// that `bench_gate.sh` pins (the fillers must stay near-free relative
/// to the leader's multistart).
fn bench_gp_ucb_pe(c: &mut Criterion) {
    let gp = fitted_gp(if smoke() { 48 } else { 128 });
    let bounds = Bounds::unit(12);
    let cfg = cfg();
    let n_cand = cfg.acq.pe_candidates;
    let mut g = c.benchmark_group("acq_gp_ucb_pe");
    tune(&mut g);
    for &q in q_grid() {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                pbo_core::algorithms::gp_ucb_pe::gp_ucb_pe_batch(&gp, &bounds, q, n_cand, &cfg, 1)
                    .0
                    .len()
            })
        });
    }
    g.finish();
}

/// BSP's 2q local EI problems, measured as total serial work (the
/// engine divides by q workers when charging the virtual clock).
fn bench_bsp_cells(c: &mut Criterion) {
    let gp = fitted_gp(if smoke() { 48 } else { 128 });
    let cfg = cfg();
    let f_best = gp.best_observed(false);
    let mut g = c.benchmark_group("acq_bsp_cells_serial");
    tune(&mut g);
    for &q in q_grid() {
        let tree = pbo_core::partition::BspTree::new(Bounds::unit(12), 2 * q);
        let cells: Vec<Bounds> =
            tree.leaves().iter().map(|&l| tree.bounds_of(l).clone()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            b.iter(|| {
                let mut total = 0.0;
                for (k, cell) in cells.iter().enumerate() {
                    let ei = pbo_acq::single::ExpectedImprovement { f_best };
                    let ms = pbo_core::algorithms::acq_multistart(&cfg, k as u64);
                    total += pbo_acq::single::optimize_single(&gp, &ei, cell, &[], &ms).value;
                }
                total
            })
        });
    }
    g.finish();
}

/// Faithful replica of the seed's `optimize_single` + serial
/// `minimize_multistart`: every raw Sobol candidate scored by one
/// allocating `gp.predict`, every polish stepping through the allocating
/// `posterior_with_grad`, all on the calling thread. The overhauled
/// in-tree path batches raw scoring (`predict_many`), reuses per-thread
/// posterior workspaces and fans polishes over scoped threads — this
/// replica preserves the removed serial recipe so the recorded baseline
/// is the true pre-PR cost.
fn optimize_single_pre(
    gp: &GaussianProcess,
    f_best: f64,
    bounds: &Bounds,
    cfg: &MultistartConfig,
) -> OptResult {
    let ei = ExpectedImprovement { f_best };
    let obj = FnGradObjective::new(
        bounds.dim(),
        |x: &[f64]| -ei.value(gp, x),
        |x: &[f64]| {
            let (v, g) = ei.value_grad(gp, x);
            (-v, g.into_iter().map(|gi| -gi).collect())
        },
    );
    let dim = bounds.dim();
    let mut sobol = Sobol::scrambled(dim, cfg.seed);
    let mut scored: Vec<(f64, Vec<f64>)> = Vec::with_capacity(cfg.raw_samples);
    let mut evals = 0;
    for _ in 0..cfg.raw_samples {
        let x = bounds.from_unit(&sobol.next_point());
        let v = pbo_opt::GradObjective::value(&obj, &x);
        evals += 1;
        if v.is_finite() {
            scored.push((v, x));
        }
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut starts: Vec<Vec<f64>> = Vec::with_capacity(cfg.restarts);
    starts.extend(scored.into_iter().take(cfg.restarts).map(|(_, x)| x));
    if starts.is_empty() {
        starts.push(bounds.center());
    }

    let mut best: Option<OptResult> = None;
    let mut total_iters = 0;
    for s in &starts {
        let r = pbo_opt::lbfgs::minimize(&obj, bounds, s, &cfg.lbfgs);
        evals += r.evals;
        total_iters += r.iters;
        if r.value.is_finite() && best.as_ref().is_none_or(|b| r.value < b.value) {
            best = Some(r);
        }
    }
    let mut out = best.expect("finite polish result");
    out.evals = evals;
    out.iters = total_iters;
    out.value = -out.value;
    out
}

/// The PR's headline measurement: one full 8-restart × 96-raw-sample EI
/// maximization (the engine's per-candidate acquisition step) on a
/// frozen n=256, d=12 model.
fn bench_ei_multistart(c: &mut Criterion) {
    let n = if smoke() { 64 } else { 256 };
    let gp = fitted_gp(n);
    let bounds = Bounds::unit(12);
    let f_best = gp.best_observed(false);
    let ms = MultistartConfig { restarts: 8, raw_samples: 96, seed: 7, ..Default::default() };
    let ei = ExpectedImprovement { f_best };

    // Equivalence guard: both paths polish the top-8 of the same Sobol
    // draw, so the achieved maximum must agree (raw scoring differs by
    // batched-summation ulps only).
    {
        let pre = optimize_single_pre(&gp, f_best, &bounds, &ms);
        let new = pbo_acq::single::optimize_single(&gp, &ei, &bounds, &[], &ms);
        assert!(
            (pre.value - new.value).abs() <= 1e-6 * (1.0 + new.value.abs()),
            "pre-PR replica and overhauled multistart diverged: {} vs {}",
            pre.value,
            new.value
        );
    }

    let mut g = c.benchmark_group("acq_ei_multistart_8x96");
    tune(&mut g);
    g.bench_with_input(BenchmarkId::new("prepr_serial", n), &n, |b, _| {
        b.iter(|| optimize_single_pre(&gp, f_best, &bounds, &ms).value)
    });
    pbo_linalg::parallel::set_num_threads(1);
    g.bench_with_input(BenchmarkId::new("new_threads1", n), &n, |b, _| {
        b.iter(|| pbo_acq::single::optimize_single(&gp, &ei, &bounds, &[], &ms).value)
    });
    pbo_linalg::parallel::set_num_threads(0);
    g.bench_with_input(BenchmarkId::new("new_threadsN", n), &n, |b, _| {
        b.iter(|| pbo_acq::single::optimize_single(&gp, &ei, &bounds, &[], &ms).value)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ei_multistart,
    bench_kb,
    bench_mic,
    bench_mc_qei,
    bench_gp_ucb_pe,
    bench_bsp_cells
);
criterion_main!(benches);
