//! Table/figure formatting and CSV output.

use pbo_core::record::{mean_sd_trace, FaultCounters, RunRecord};
use pbo_core::stats::{summarize, welch_t_test, Summary};
use std::fmt::Write as _;
use std::path::Path;

/// Final objective values (native orientation) of a set of runs.
pub fn final_values(records: &[RunRecord]) -> Vec<f64> {
    records.iter().map(|r| r.best_y()).collect()
}

/// One-line robustness summary over a set of runs: aggregated fault
/// counters from the fault-tolerant evaluation pool. Returns `None`
/// when every run was fault-free (the usual clean-problem case), so
/// callers can omit the line entirely.
pub fn fault_summary(records: &[RunRecord]) -> Option<String> {
    let mut total = FaultCounters::default();
    for r in records {
        total.merge(&r.fault_totals());
    }
    if !total.any() {
        return None;
    }
    Some(format!(
        "faults: {} panics, {} NaN + {} Inf quarantined, {} stragglers, \
         {} timeouts, {} retries, {} imputed, {} dropped, {:.1} virtual s lost",
        total.panics,
        total.nan_quarantined,
        total.inf_quarantined,
        total.stragglers,
        total.timeouts,
        total.retries,
        total.imputed,
        total.dropped,
        total.virtual_secs_lost,
    ))
}

/// Summary of final values.
pub fn summarize_final(records: &[RunRecord]) -> Summary {
    summarize(&final_values(records))
}

/// Tables 4–6: rows = batch sizes, columns = algorithms, cells = mean
/// (sd) of the final best cost over the repetitions.
pub fn format_benchmark_table(
    title: &str,
    batch_sizes: &[usize],
    algo_names: &[&str],
    cells: &[Vec<Summary>], // [q_index][algo_index]
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:>8}", "n_batch");
    for a in algo_names {
        let _ = write!(out, " | {:>20}", a);
    }
    let _ = writeln!(out);
    for (qi, &q) in batch_sizes.iter().enumerate() {
        let _ = write!(out, "{q:>8}");
        for s in &cells[qi] {
            let _ = write!(out, " | {:>10.3} ±{:>7.3}", s.mean, s.sd);
        }
        let _ = writeln!(out);
    }
    out
}

/// CSV rows for the Tables 4–6 artifact: one row per (q, algorithm)
/// cell with the final-value summary, in grid order. Shared by the
/// repro binary and the golden aggregation test so the pinned bytes
/// exercise the production path.
pub fn benchmark_csv_rows(batch_sizes: &[usize], cells: &[Vec<Summary>]) -> Vec<Vec<f64>> {
    let mut rows = Vec::new();
    for (qi, &q) in batch_sizes.iter().enumerate() {
        for (ai, s) in cells[qi].iter().enumerate() {
            rows.push(vec![q as f64, ai as f64, s.mean, s.sd, s.min, s.max]);
        }
    }
    rows
}

/// Table 7: per batch size, rows = algorithms, columns =
/// min/mean/max/sd of the final profit.
pub fn format_table7(
    batch_sizes: &[usize],
    algo_names: &[&str],
    cells: &[Vec<Summary>],
) -> String {
    let mut out = String::new();
    for (qi, &q) in batch_sizes.iter().enumerate() {
        let _ = writeln!(out, "# n_batch = {q}  (UPHES final profit, EUR)");
        let _ = writeln!(
            out,
            "{:<12} | {:>9} | {:>9} | {:>9} | {:>9}",
            "algorithm", "min", "mean", "max", "sd"
        );
        for (ai, a) in algo_names.iter().enumerate() {
            let s = &cells[qi][ai];
            let _ = writeln!(
                out,
                "{:<12} | {:>9.0} | {:>9.0} | {:>9.0} | {:>9.0}",
                a, s.min, s.mean, s.max, s.sd
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 2 / 9a: mean and sd of the number of simulations per batch
/// size for one algorithm.
pub fn evals_by_batch(records_per_q: &[Vec<RunRecord>]) -> Vec<(f64, f64)> {
    records_per_q
        .iter()
        .map(|recs| {
            let evals: Vec<f64> =
                recs.iter().map(|r| r.n_optimization_simulations() as f64).collect();
            let s = summarize(&evals);
            (s.mean, s.sd)
        })
        .collect()
}

/// Figure 9b: mean and sd of the number of cycles per batch size.
pub fn cycles_by_batch(records_per_q: &[Vec<RunRecord>]) -> Vec<(f64, f64)> {
    records_per_q
        .iter()
        .map(|recs| {
            let cycles: Vec<f64> = recs.iter().map(|r| r.n_cycles() as f64).collect();
            let s = summarize(&cycles);
            (s.mean, s.sd)
        })
        .collect()
}

/// Figures 3–7: mean/sd best-so-far trace (truncated to the shortest
/// run, as the paper does).
pub fn convergence_trace(records: &[RunRecord]) -> (Vec<f64>, Vec<f64>) {
    mean_sd_trace(records)
}

/// Figure 8: pairwise Welch p-values between algorithms' final values.
/// Returns the matrix `p[i][j]` (diagonal = 1).
pub fn pairwise_p_values(finals: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = finals.len();
    let mut p = vec![vec![1.0; n]; n];
    for i in 0..n {
        for j in 0..i {
            let (_, _, pv) = welch_t_test(&finals[i], &finals[j]);
            p[i][j] = pv;
            p[j][i] = pv;
        }
    }
    p
}

/// Render a p-value matrix as text (the paper's Fig. 8 heatmap, as
/// numbers).
pub fn format_p_matrix(algo_names: &[&str], p: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<12}", "");
    for a in algo_names {
        let _ = write!(out, " | {:>10}", a);
    }
    let _ = writeln!(out);
    for (i, a) in algo_names.iter().enumerate() {
        let _ = write!(out, "{a:<12}");
        for j in 0..algo_names.len() {
            let _ = write!(out, " | {:>10.4}", p[i][j]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Write rows of floats as CSV with a header line.
pub fn write_csv(path: &Path, header: &str, rows: &[Vec<f64>]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = String::new();
    let _ = writeln!(body, "{header}");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(body, "{}", line.join(","));
    }
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::record::CycleRecord;

    fn rec(best: f64, n_cycles: usize, q: usize) -> RunRecord {
        RunRecord {
            algorithm: "a".into(),
            problem: "p".into(),
            maximize: false,
            batch_size: q,
            seed: 0,
            doe_size: 1,
            best_x: vec![0.0],
            y_min: vec![best + 1.0, best],
            cycles: (0..n_cycles)
                .map(|c| CycleRecord {
                    cycle: c,
                    fit_time: 1.0,
                    acq_time: 1.0,
                    sim_time: 10.0,
                    n_evals: q,
                    best_y_min: best,
                    clock: 12.0 * (c + 1) as f64,
                    faults: Default::default(),
                })
                .collect(),
            final_clock: 12.0 * n_cycles as f64,
            doe_faults: Default::default(),
        }
    }

    #[test]
    fn evals_and_cycles_aggregation() {
        let per_q = vec![vec![rec(1.0, 5, 2), rec(2.0, 7, 2)]];
        let e = evals_by_batch(&per_q);
        // y_min has 2 entries, doe 1 → 1 optimization sim each.
        assert_eq!(e[0].0, 1.0);
        let c = cycles_by_batch(&per_q);
        assert_eq!(c[0].0, 6.0);
        assert!(c[0].1 > 0.0);
    }

    #[test]
    fn fault_summary_reports_only_when_faults_occurred() {
        let clean = rec(1.0, 2, 2);
        assert!(fault_summary(&[clean.clone()]).is_none());
        let mut faulty = rec(1.0, 2, 2);
        faulty.cycles[0].faults.panics = 3;
        faulty.cycles[1].faults.retries = 4;
        faulty.doe_faults.virtual_secs_lost = 12.5;
        let line = fault_summary(&[clean, faulty]).expect("faults present");
        assert!(line.contains("3 panics"), "{line}");
        assert!(line.contains("4 retries"), "{line}");
        assert!(line.contains("12.5 virtual s lost"), "{line}");
    }

    #[test]
    fn p_matrix_is_symmetric_unit_diagonal() {
        let finals = vec![vec![1.0, 1.1, 0.9], vec![5.0, 5.1, 4.9], vec![1.0, 1.2, 0.8]];
        let p = pairwise_p_values(&finals);
        for i in 0..3 {
            assert_eq!(p[i][i], 1.0);
            for j in 0..3 {
                assert_eq!(p[i][j], p[j][i]);
            }
        }
        assert!(p[0][1] < 0.01);
        assert!(p[0][2] > 0.3);
    }

    #[test]
    fn table_formatting_contains_all_cells() {
        let s = summarize(&[1.0, 2.0]);
        let txt = format_benchmark_table("t", &[1, 2], &["x", "y"], &[
            vec![s, s],
            vec![s, s],
        ]);
        assert!(txt.contains("n_batch"));
        assert_eq!(txt.lines().count(), 4);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("pbo-bench-test");
        let path = dir.join("t.csv");
        write_csv(&path, "a,b", &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("a,b\n1,2\n3,4\n"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
