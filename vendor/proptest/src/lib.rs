//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Provides deterministic random-input property testing with the same
//! surface syntax as upstream: the `proptest!` macro with
//! `#![proptest_config(...)]`, `pat in strategy` arguments, `prop_assert*`
//! macros, `prop_assume!`, range/tuple strategies, `prop::collection::vec`,
//! and `Strategy::prop_map`. Differences from upstream: inputs are purely
//! random (no shrinking on failure) and seeding is a deterministic hash of
//! the test name, so failures reproduce across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator used to drive value generation.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, 1) with 53 mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn next_usize_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// Value-generation strategy (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, i64, i32);

/// A fixed value as a strategy (upstream's `Just`).
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for `vec` (upstream's `SizeRange`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.next_usize_below(span.max(1));
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure/rejection signal returned by a test-case body.
pub struct TestCaseError {
    msg: String,
    is_reject: bool,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into(), is_reject: false }
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into(), is_reject: true }
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_reject { "reject" } else { "fail" };
        write!(f, "TestCaseError::{kind}({})", self.msg)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Driver used by the `proptest!` expansion: run `body` until `cases`
/// successful executions, with a bounded tolerance for `prop_assume!`
/// rejections. Seeds are a deterministic function of the test name and the
/// case counter, so every run of the suite exercises identical inputs.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = config.cases as u64 * 16 + 256;
    let mut case: u64 = 0;
    while passed < config.cases {
        let mut rng = TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        case += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(e) if e.is_reject => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many prop_assume! rejections ({rejected}); last: {}",
                    e.msg
                );
            }
            Err(e) => panic!("{name}: property failed at case {case}: {}", e.msg),
        }
    }
}

#[macro_export]
macro_rules! proptest {
    // Internal: one test fn at a time under a shared config expression.
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &__config, |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                (move || -> $crate::TestCaseResult {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr)) => {};
    // Entry with a block-level config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry without config: upstream default.
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0f64..1.0, 2..6).prop_map(|mut v| {
            v.push(0.5);
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0.0f64..1.0, n in 3usize..9) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn tuples_and_vecs(v in prop::collection::vec((0.0f64..1.0, -2.0f64..2.0), 4..10)) {
            prop_assert!(v.len() >= 4 && v.len() < 10);
            for (a, b) in v {
                prop_assert!((0.0..1.0).contains(&a), "a = {a}");
                prop_assert!((-2.0..2.0).contains(&b));
            }
        }

        #[test]
        fn map_and_assume(v in small_vec()) {
            prop_assume!(!v.is_empty());
            prop_assert_eq!(*v.last().unwrap(), 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        crate::run_cases(
            "failures_panic",
            &ProptestConfig::with_cases(4),
            |_rng| Err(TestCaseError::fail("boom")),
        );
    }
}
