//! Multi-start driver for the inner optimizers.
//!
//! BoTorch's `optimize_acqf` evaluates a raw-sample batch, keeps the best
//! `num_restarts` as initial conditions and polishes each with L-BFGS-B.
//! This module implements the same recipe: Sobol raw candidates scored by
//! the cheap objective value, top-k selection (plus caller warm starts),
//! gradient-based polishing, best-of.
//!
//! Both phases fan out over `pbo_linalg::parallel` scoped threads while
//! staying **bit-identical to the serial path for any thread count**:
//!
//! - raw scoring is batched in fixed [`SCORE_BLOCK`]-sized blocks, so the
//!   per-block arithmetic (one `BatchObjective::value_batch` call each)
//!   does not depend on how blocks are distributed over threads;
//! - candidate selection ranks by the total order `(value, generation
//!   index)`, which a stable sort on value alone also realises — ties
//!   cannot reorder under chunking;
//! - each polish is an independent deterministic local run, and the
//!   winner is reduced by the total order `(value, start index)` — the
//!   exact strict-`<`, earliest-wins rule of a serial left fold.

use crate::lbfgs::{self, LbfgsConfig};
use crate::neldermead::{self, NelderMeadConfig};
use crate::{BatchObjective, Bounds, OptResult};
use pbo_linalg::parallel;
use pbo_sampling::sobol::Sobol;

/// Fixed raw-scoring block size. Scoring is performed one
/// `value_batch` call per block whatever the thread count, so results
/// cannot depend on the parallel chunking. 32 points amortize a batched
/// GP prediction nicely while keeping the fan-out granular.
const SCORE_BLOCK: usize = 32;

/// Cap on Sobol backfill when raw candidates score non-finite: at most
/// this many extra batches of `raw_samples` draws beyond the original.
const BACKFILL_FACTOR: usize = 4;

/// Configuration of the multistart search.
#[derive(Debug, Clone)]
pub struct MultistartConfig {
    /// Raw Sobol candidates scored before polishing.
    pub raw_samples: usize,
    /// Local polishes performed (top-k of the raw scores + warm starts).
    pub restarts: usize,
    /// Local optimizer settings.
    pub lbfgs: LbfgsConfig,
    /// Seed for the scrambled Sobol raw batch.
    pub seed: u64,
}

impl Default for MultistartConfig {
    fn default() -> Self {
        MultistartConfig {
            raw_samples: 128,
            restarts: 8,
            lbfgs: LbfgsConfig::default(),
            seed: 0,
        }
    }
}

/// Draw `count` Sobol candidates (appended flat to `xs`) and score them
/// into `vals` in fixed-size blocks fanned out over scoped threads.
/// Generation stays serial (one Sobol stream); only scoring is parallel,
/// and the block boundaries are independent of the thread count.
fn draw_and_score<O: BatchObjective + ?Sized>(
    obj: &O,
    bounds: &Bounds,
    sobol: &mut Sobol,
    count: usize,
    xs: &mut Vec<f64>,
    vals: &mut Vec<f64>,
) {
    if count == 0 {
        return;
    }
    let dim = bounds.dim();
    let base = vals.len();
    xs.reserve(count * dim);
    for _ in 0..count {
        let x = bounds.from_unit(&sobol.next_point());
        xs.extend_from_slice(&x);
    }
    let new_xs = &xs[base * dim..];
    let blocks = count.div_ceil(SCORE_BLOCK);
    let scored: Vec<Vec<f64>> = parallel::par_map(blocks, 1, |b| {
        let lo = b * SCORE_BLOCK;
        let hi = ((b + 1) * SCORE_BLOCK).min(count);
        let mut out = vec![0.0; hi - lo];
        obj.value_batch(&new_xs[lo * dim..hi * dim], &mut out);
        out
    });
    vals.reserve(count);
    for block in scored {
        vals.extend_from_slice(&block);
    }
}

/// Shared start-selection recipe: score `raw_samples` Sobol candidates
/// (backfilling when some score non-finite), rank the finite ones by
/// `(value, generation index)`, and return the clamped warm starts plus
/// the top picks, along with the evaluation count and the restart
/// shortfall that survived backfill.
fn select_starts<O: BatchObjective + ?Sized>(
    obj: &O,
    bounds: &Bounds,
    warm_starts: &[Vec<f64>],
    restarts: usize,
    raw_samples: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, usize, usize) {
    let dim = bounds.dim();
    let mut sobol = Sobol::scrambled(dim, seed);
    let mut xs: Vec<f64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut evals = 0usize;

    // How many raw-derived starts this configuration can ask for: the
    // restart count, but never more than the configured raw batch (a
    // caller asking for 0 raw samples gets 0 raw starts, as before).
    let target = restarts.min(raw_samples);

    draw_and_score(obj, bounds, &mut sobol, raw_samples, &mut xs, &mut vals);
    evals += raw_samples;
    let mut finite = vals.iter().filter(|v| v.is_finite()).count();

    // Backfill: non-finite raw scores (e.g. quarantined regions under
    // fault injection) would silently shrink the restart pool. Keep
    // drawing from the *same* Sobol stream until the pool is full or the
    // backfill budget is spent.
    let max_total = raw_samples.saturating_mul(1 + BACKFILL_FACTOR);
    while finite < target && vals.len() < max_total {
        let draw = raw_samples.min(max_total - vals.len());
        let before = vals.len();
        draw_and_score(obj, bounds, &mut sobol, draw, &mut xs, &mut vals);
        evals += draw;
        finite += vals[before..].iter().filter(|v| v.is_finite()).count();
    }
    let shortfall = target - finite.min(target);

    // Total order (value, generation index): equal values keep Sobol
    // generation order, exactly like the stable sort the serial driver
    // historically used.
    let mut order: Vec<usize> = (0..vals.len()).filter(|&i| vals[i].is_finite()).collect();
    order.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]).then(a.cmp(&b)));

    let mut starts: Vec<Vec<f64>> = Vec::with_capacity(warm_starts.len() + target);
    for w in warm_starts {
        let mut w = w.clone();
        bounds.clamp(&mut w);
        starts.push(w);
    }
    starts.extend(order.iter().take(target).map(|&i| xs[i * dim..(i + 1) * dim].to_vec()));
    if starts.is_empty() {
        starts.push(bounds.center());
    }
    (starts, evals, shortfall)
}

/// Fold polished results down to the winner by the total order
/// `(value, start index)` — non-finite values lose to everything. This
/// matches a serial strict-`<` left fold bit for bit, so the reduction
/// is independent of how the polishes were scheduled.
fn reduce_best(results: Vec<Option<OptResult>>, evals: &mut usize, iters: &mut usize) -> Option<OptResult> {
    let mut best: Option<OptResult> = None;
    for r in results.into_iter() {
        let r = r.expect("every polish yields a result");
        *evals += r.evals;
        *iters += r.iters;
        if r.value.is_finite() && best.as_ref().is_none_or(|b| r.value < b.value) {
            best = Some(r);
        }
    }
    best
}

/// Minimize with Sobol raw sampling + L-BFGS polishing.
///
/// `warm_starts` are always polished in addition to the raw top-k (the
/// acquisition loop passes the incumbent and the previous cycle's
/// candidate here). Raw scoring and polishing both fan out over
/// `pbo_linalg::parallel` scoped threads; the result is bit-identical
/// for any thread count (see the module docs for the reduction rules).
/// `OptResult::restart_shortfall` reports how many requested raw-derived
/// restarts could not be filled with finite-scoring candidates even
/// after Sobol backfill.
pub fn minimize_multistart<O: BatchObjective + ?Sized>(
    obj: &O,
    bounds: &Bounds,
    warm_starts: &[Vec<f64>],
    cfg: &MultistartConfig,
) -> OptResult {
    let (starts, mut evals, shortfall) =
        select_starts(obj, bounds, warm_starts, cfg.restarts, cfg.raw_samples, cfg.seed);

    let results: Vec<Option<OptResult>> = parallel::par_map(starts.len(), 1, |i| {
        Some(lbfgs::minimize(obj, bounds, &starts[i], &cfg.lbfgs))
    });
    let mut total_iters = 0;
    let best = reduce_best(results, &mut evals, &mut total_iters);

    let mut out = best.unwrap_or_else(|| {
        let center = bounds.center();
        let value = obj.value(&center);
        evals += 1;
        OptResult { x: center, value, evals, iters: 0, converged: false, restart_shortfall: 0 }
    });
    out.evals = evals;
    out.iters = total_iters;
    out.restart_shortfall = shortfall;
    out
}

/// Derivative-free multistart (Nelder–Mead polishing); same raw-sample
/// recipe for objectives without trustworthy gradients, with the same
/// thread-count-invariant parallel fan-out and Sobol backfill.
pub fn minimize_multistart_df(
    f: &(dyn Fn(&[f64]) -> f64 + Sync),
    bounds: &Bounds,
    warm_starts: &[Vec<f64>],
    restarts: usize,
    raw_samples: usize,
    seed: u64,
    nm: &NelderMeadConfig,
) -> OptResult {
    struct DfObjective<'a> {
        f: &'a (dyn Fn(&[f64]) -> f64 + Sync),
        dim: usize,
    }
    impl crate::GradObjective for DfObjective<'_> {
        fn dim(&self) -> usize {
            self.dim
        }
        fn value(&self, x: &[f64]) -> f64 {
            (self.f)(x)
        }
        fn value_grad(&self, _x: &[f64]) -> (f64, Vec<f64>) {
            unreachable!("derivative-free multistart never requests gradients")
        }
    }
    impl BatchObjective for DfObjective<'_> {}

    let obj = DfObjective { f, dim: bounds.dim() };
    let (starts, mut evals, shortfall) =
        select_starts(&obj, bounds, warm_starts, restarts, raw_samples, seed);

    let results: Vec<Option<OptResult>> =
        parallel::par_map(starts.len(), 1, |i| Some(neldermead::minimize(f, bounds, &starts[i], nm)));
    let mut total_iters = 0;
    let best = reduce_best(results, &mut evals, &mut total_iters);

    let mut out = best.unwrap_or_else(|| {
        let center = bounds.center();
        let value = f(&center);
        evals += 1;
        OptResult { x: center, value, evals, iters: 0, converged: false, restart_shortfall: 0 }
    });
    out.evals = evals;
    out.restart_shortfall = shortfall;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnGradObjective;
    use crate::GradObjective;

    /// Two-basin function: local minimum 0.1 at x=-0.5, global 0 at x=0.7.
    fn two_basins() -> impl BatchObjective {
        let f = |x: &[f64]| {
            let a = (x[0] + 0.5).powi(2) + 0.1;
            let b = 4.0 * (x[0] - 0.7).powi(2);
            a.min(b)
        };
        FnGradObjective::new(1, f, move |x: &[f64]| {
            let a = (x[0] + 0.5).powi(2) + 0.1;
            let b = 4.0 * (x[0] - 0.7).powi(2);
            let g = if a < b { 2.0 * (x[0] + 0.5) } else { 8.0 * (x[0] - 0.7) };
            (a.min(b), vec![g])
        })
    }

    #[test]
    fn multistart_escapes_local_minimum() {
        let obj = two_basins();
        let b = Bounds::cube(1, -2.0, 2.0);
        // Warm start in the wrong basin; Sobol raw samples find the right one.
        let r = minimize_multistart(&obj, &b, &[vec![-0.5]], &MultistartConfig::default());
        assert!((r.x[0] - 0.7).abs() < 1e-3, "got {:?}", r.x);
        assert!(r.value < 1e-5);
        assert_eq!(r.restart_shortfall, 0);
    }

    #[test]
    fn zero_restarts_still_polishes_warm_starts() {
        let obj = two_basins();
        let b = Bounds::cube(1, -2.0, 2.0);
        let cfg = MultistartConfig { raw_samples: 0, restarts: 0, ..Default::default() };
        let r = minimize_multistart(&obj, &b, &[vec![0.6]], &cfg);
        assert!((r.x[0] - 0.7).abs() < 1e-4);
        assert_eq!(r.restart_shortfall, 0);
    }

    #[test]
    fn df_variant_matches_on_smooth_problem() {
        let f = |x: &[f64]| (x[0] - 0.25).powi(2) + (x[1] - 0.75).powi(2);
        let b = Bounds::unit(2);
        let r = minimize_multistart_df(&f, &b, &[], 4, 32, 7, &NelderMeadConfig::default());
        assert!((r.x[0] - 0.25).abs() < 1e-3 && (r.x[1] - 0.75).abs() < 1e-3);
    }

    #[test]
    fn deterministic_given_seed() {
        let obj = two_basins();
        let b = Bounds::cube(1, -2.0, 2.0);
        let cfg = MultistartConfig { seed: 42, ..Default::default() };
        let r1 = minimize_multistart(&obj, &b, &[], &cfg);
        let r2 = minimize_multistart(&obj, &b, &[], &cfg);
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.value, r2.value);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let obj = two_basins();
        let b = Bounds::cube(1, -2.0, 2.0);
        let cfg = MultistartConfig { seed: 9, ..Default::default() };
        let base = minimize_multistart(&obj, &b, &[vec![0.1]], &cfg);
        for threads in [2, 3, 8] {
            pbo_linalg::parallel::set_num_threads(threads);
            let other = minimize_multistart(&obj, &b, &[vec![0.1]], &cfg);
            pbo_linalg::parallel::set_num_threads(0);
            assert_eq!(base.x[0].to_bits(), other.x[0].to_bits(), "{threads} threads");
            assert_eq!(base.value.to_bits(), other.value.to_bits());
            assert_eq!(base.evals, other.evals);
            assert_eq!(base.iters, other.iters);
        }
    }

    #[test]
    fn nonfinite_candidates_are_backfilled() {
        // A third of the box scores NaN; backfill must still fill the
        // restart pool from the remaining finite region.
        let f = |x: &[f64]| {
            if x[0] > 0.5 {
                f64::NAN
            } else {
                (x[0] + 0.25).powi(2)
            }
        };
        let obj = FnGradObjective::new(1, f, move |x: &[f64]| (f(x), vec![2.0 * (x[0] + 0.25)]));
        let b = Bounds::cube(1, -1.0, 2.0);
        let cfg = MultistartConfig { raw_samples: 16, restarts: 8, seed: 3, ..Default::default() };
        let r = minimize_multistart(&obj, &b, &[], &cfg);
        assert_eq!(r.restart_shortfall, 0, "backfill should cover the NaN region");
        assert!((r.x[0] + 0.25).abs() < 1e-4);
        // Backfill draws are charged to the evaluation count.
        assert!(r.evals > 16, "evals {} should include backfill draws", r.evals);
    }

    #[test]
    fn hopeless_pool_reports_shortfall_instead_of_panicking() {
        // Everything is NaN: the pool can never fill. The driver must
        // report the full shortfall and fall back to the box center.
        let f = |_: &[f64]| f64::NAN;
        let obj = FnGradObjective::new(1, f, move |x: &[f64]| (f(x), vec![0.0]));
        let b = Bounds::cube(1, -1.0, 1.0);
        let cfg = MultistartConfig { raw_samples: 8, restarts: 4, seed: 1, ..Default::default() };
        let r = minimize_multistart(&obj, &b, &[], &cfg);
        assert_eq!(r.restart_shortfall, 4);
        assert!(r.value.is_nan());
        assert_eq!(r.x, b.center());
        // The df variant historically panicked here; it must not.
        let r = minimize_multistart_df(&(f as fn(&[f64]) -> f64), &b, &[], 4, 8, 1, &NelderMeadConfig::default());
        assert_eq!(r.restart_shortfall, 4);
        assert!(r.value.is_nan());
    }

    #[test]
    fn batched_scoring_used_for_raw_candidates() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountingBatch {
            batch_calls: AtomicUsize,
            points_scored: AtomicUsize,
        }
        impl GradObjective for CountingBatch {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                (x[0] - 0.3).powi(2)
            }
            fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
                (self.value(x), vec![2.0 * (x[0] - 0.3)])
            }
        }
        impl BatchObjective for CountingBatch {
            fn value_batch(&self, xs: &[f64], out: &mut [f64]) {
                self.batch_calls.fetch_add(1, Ordering::Relaxed);
                self.points_scored.fetch_add(out.len(), Ordering::Relaxed);
                for (x, o) in xs.chunks_exact(1).zip(out.iter_mut()) {
                    *o = self.value(x);
                }
            }
        }
        let obj = CountingBatch {
            batch_calls: AtomicUsize::new(0),
            points_scored: AtomicUsize::new(0),
        };
        let b = Bounds::unit(1);
        let cfg = MultistartConfig { raw_samples: 96, restarts: 2, ..Default::default() };
        let r = minimize_multistart(&obj, &b, &[], &cfg);
        assert!((r.x[0] - 0.3).abs() < 1e-5);
        // 96 points in 32-point blocks: 3 batched calls, not 96 scalar ones.
        assert_eq!(obj.batch_calls.load(Ordering::Relaxed), 3);
        assert_eq!(obj.points_scored.load(Ordering::Relaxed), 96);
    }
}
