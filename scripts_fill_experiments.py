#!/usr/bin/env python3
"""Inject the measured tables from results/repro_output.txt into
EXPERIMENTS.md at the <!-- RESULTS --> marker."""
import re, sys, pathlib

out = pathlib.Path("results/repro_output.txt").read_text()
up = pathlib.Path("results/uphes_output.txt")
out += "\n" + (up.read_text() if up.exists() else "")
exp = pathlib.Path("EXPERIMENTS.md")

def section(start, end=None):
    i = out.find(start)
    if i < 0:
        return f"(missing: {start})"
    j = out.find(end, i + 1) if end else -1
    return out[i:j if j > 0 else None].rstrip()

blocks = []
blocks.append("### Tables 4–6 (benchmark functions, final cost, 2 runs)\n")
for t, nxt in [("# Table 4", "## evaluations"), ("# Table 5", "## evaluations"),
               ("# Table 6", "## evaluations")]:
    blocks.append("```\n" + section(t, nxt) + "\n```\n")
blocks.append("### Table 7 (UPHES final profit, 3 runs)\n")
blocks.append("```\n" + section("# n_batch = 1 ", "## ") + "\n```\n")
blocks.append("### Fig. 2 (evaluations in budget, per problem)\n")
for p in ["rosenbrock", "ackley", "schwefel"]:
    blocks.append("```\n" + section(f"## evaluations in budget ({p})", "# ") + "\n```\n")
blocks.append("### Fig. 9 (UPHES scalability)\n")
blocks.append("```\n" + section("## fig9: scalability", None) + "\n```\n")
blocks.append("### Random baseline (hardened simulator)\n")
base = pathlib.Path("results/baseline_final.txt")
if base.exists():
    blocks.append("```\n" + base.read_text().strip() + "\n```\n")

text = exp.read_text().replace("<!-- RESULTS -->", "\n".join(blocks))
exp.write_text(text)
print("EXPERIMENTS.md filled")
