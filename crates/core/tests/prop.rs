//! Property tests for the statistics layer and the virtual-time
//! accounting primitives.

use pbo_core::budget::{Budget, Stopping};
use pbo_core::clock::{CostModel, TimeCategory, VirtualClock};
use pbo_core::exec::{eval_point_ft, FtPolicy};
use pbo_core::stats::{summarize, t_sf_two_sided, welch_t_test};
use pbo_problems::SyntheticFn;
use proptest::prelude::*;

/// A sample strategy with guaranteed spread (at least two distinct
/// values) so variances never vanish.
fn spread_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-50.0f64..50.0, 3..20).prop_map(|mut v| {
        v[0] = v[0].floor() - 1.0;
        v[1] = v[1].floor() + 1.0;
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Welch's t-test (stats.rs) --------------------------------

    #[test]
    fn welch_p_value_is_a_probability(a in spread_sample(), b in spread_sample()) {
        let (t, nu, p) = welch_t_test(&a, &b);
        prop_assert!(t.is_finite(), "t = {t}");
        prop_assert!(nu > 0.0, "nu = {nu}");
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn welch_is_antisymmetric_under_sample_swap(a in spread_sample(), b in spread_sample()) {
        let (t_ab, nu_ab, p_ab) = welch_t_test(&a, &b);
        let (t_ba, nu_ba, p_ba) = welch_t_test(&b, &a);
        prop_assert!((t_ab + t_ba).abs() < 1e-10, "t not antisymmetric: {t_ab} vs {t_ba}");
        prop_assert!((nu_ab - nu_ba).abs() < 1e-10);
        prop_assert!((p_ab - p_ba).abs() < 1e-10);
    }

    #[test]
    fn welch_on_shifted_copy_matches_pooled_student_t(
        a in spread_sample(),
        shift in -20.0f64..20.0,
    ) {
        // b = a + shift has the *same* sample variance and size, where
        // Welch's statistic and degrees of freedom reduce exactly to
        // the classical pooled (equal-variance) Student's t-test.
        let b: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let (t, nu, p) = welch_t_test(&a, &b);
        let n = a.len() as f64;
        let sa = summarize(&a);
        let pooled_se = (2.0 * sa.sd * sa.sd / n).sqrt();
        let t_pooled = -shift / pooled_se;
        let nu_pooled = 2.0 * n - 2.0;
        prop_assert!((t - t_pooled).abs() < 1e-8 * (1.0 + t_pooled.abs()),
            "t {t} vs pooled {t_pooled}");
        prop_assert!((nu - nu_pooled).abs() < 1e-6, "nu {nu} vs pooled {nu_pooled}");
        let p_pooled = t_sf_two_sided(t_pooled, nu_pooled);
        prop_assert!((p - p_pooled).abs() < 1e-9);
    }

    #[test]
    fn welch_identical_samples_give_zero_t_unit_p(a in spread_sample()) {
        let (t, _, p) = welch_t_test(&a, &a);
        prop_assert!(t.abs() < 1e-12);
        prop_assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_mean_gap_never_raises_p(
        a in spread_sample(),
        shift in 0.5f64..10.0,
    ) {
        // Monotonicity: widening the gap between two fixed-shape
        // samples cannot make them look *more* similar.
        let near: Vec<f64> = a.iter().map(|v| v + shift).collect();
        let far: Vec<f64> = a.iter().map(|v| v + 2.0 * shift).collect();
        let (_, _, p_near) = welch_t_test(&a, &near);
        let (_, _, p_far) = welch_t_test(&a, &far);
        prop_assert!(p_far <= p_near + 1e-12, "p grew with gap: {p_near} -> {p_far}");
    }

    // ---- Virtual clock (clock.rs) ---------------------------------

    #[test]
    fn clock_is_monotone_and_split_sums_to_now(
        charges in prop::collection::vec((0u32..3, 0.0f64..1e4), 0..40),
    ) {
        let mut c = VirtualClock::new(CostModel::Fixed { per_call: 1.0 });
        let mut prev = 0.0;
        for (cat, secs) in &charges {
            let cat = match cat {
                0 => TimeCategory::Fit,
                1 => TimeCategory::Acquisition,
                _ => TimeCategory::Simulation,
            };
            c.charge_virtual(cat, *secs);
            prop_assert!(c.now() >= prev, "clock went backwards");
            prev = c.now();
        }
        let (f, a, s) = c.split();
        prop_assert!(f >= 0.0 && a >= 0.0 && s >= 0.0);
        prop_assert!((f + a + s - c.now()).abs() < 1e-6 * (1.0 + c.now()));
    }

    #[test]
    fn fixed_cost_parallel_charge_divides_by_workers(
        per_call in 0.1f64..100.0,
        workers in 1usize..64,
    ) {
        let mut c = VirtualClock::new(CostModel::Fixed { per_call });
        c.charge_parallel(TimeCategory::Acquisition, workers, || ());
        prop_assert!((c.now() - per_call / workers as f64).abs() < 1e-12);
        let mut serial = VirtualClock::new(CostModel::Fixed { per_call });
        serial.charge(TimeCategory::Acquisition, || ());
        prop_assert!(c.now() <= serial.now() + 1e-12, "parallelism made work slower");
    }

    // ---- Budget (budget.rs) ---------------------------------------

    #[test]
    fn batch_sim_time_is_monotone_and_bounded_below(
        q in 1usize..32,
        len_a in 0usize..64,
        extra in 0usize..64,
    ) {
        let b = Budget::paper(q);
        let t_a = b.batch_sim_time(len_a);
        let t_b = b.batch_sim_time(len_a + extra);
        prop_assert!(t_a >= b.sim_seconds, "batch cheaper than one simulation");
        prop_assert!(t_b >= t_a, "more points got cheaper");
        // Dispatch overhead is linear in the batch length.
        let expect = b.dispatch_overhead_per_point * extra as f64;
        prop_assert!((t_b - t_a - expect).abs() < 1e-9);
    }

    #[test]
    fn virtual_time_budget_caps_cycles(minutes in 1.0f64..120.0, q in 1usize..16) {
        let mut b = Budget::paper(q);
        b.stopping = Stopping::VirtualTime(minutes * 60.0);
        let max = b.max_cycles().expect("virtual-time budgets have a cycle cap");
        // Each cycle costs at least sim_seconds, so the cap is exact.
        prop_assert_eq!(max, (minutes * 60.0 / b.sim_seconds).floor() as usize);
    }

    // ---- Fault-tolerant executor accounting (exec.rs) -------------

    #[test]
    fn clean_point_outcome_charges_exactly_one_simulation(
        x in prop::collection::vec(0.0f64..1.0, 2..6),
        sim_seconds in 0.1f64..100.0,
        max_retries in 0u32..5,
    ) {
        let p = SyntheticFn::ackley(x.len());
        let policy = FtPolicy { max_retries, ..FtPolicy::default() };
        let out = eval_point_ft(&p, &x, sim_seconds, &policy);
        // A fault-free evaluation must cost exactly the nominal
        // simulator time — retries/backoff only ever *add* time.
        prop_assert_eq!(out.attempts, 1);
        prop_assert!((out.virtual_secs - sim_seconds).abs() < 1e-12);
        prop_assert!(!out.faults.any());
        prop_assert!(out.faults.virtual_secs_lost == 0.0);
        prop_assert!(out.value.is_some());
    }
}
