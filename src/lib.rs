//! # pbo — Parallel Bayesian Optimization for UPHES scheduling
//!
//! Facade crate re-exporting the full workspace. This is the crate a
//! downstream user depends on; the individual `pbo-*` crates remain
//! usable on their own.
//!
//! The workspace reproduces Gobert et al., *Batch Acquisition for
//! Parallel Bayesian Optimization — Application to Hydro-Energy Storage
//! Systems Scheduling* (Algorithms 15(12):446, 2022; extended version of
//! the IPDPSW 2022 paper), including:
//!
//! - a from-scratch Gaussian-process stack ([`gp`], [`linalg`],
//!   [`sampling`], [`opt`]),
//! - five batch-acquisition parallel BO algorithms ([`core::algorithms`]),
//! - an Underground Pumped Hydro-Energy Storage plant simulator
//!   ([`uphes`]),
//! - the benchmark functions and experiment harness used in the paper's
//!   evaluation ([`problems`], the `pbo-bench` crate).
//!
//! ## Quickstart
//!
//! ```
//! use pbo::core::algorithms::{run_algorithm, AlgorithmKind};
//! use pbo::core::budget::Budget;
//! use pbo::problems::SyntheticFn;
//!
//! let problem = SyntheticFn::ackley(4);
//! let budget = Budget::cycles(2, 2).with_initial_samples(8);
//! let record = run_algorithm(AlgorithmKind::KbQEgo, &problem, &budget, 42);
//! assert!(record.best_y().is_finite());
//! assert_eq!(record.n_cycles(), 2);
//! ```

pub use pbo_acq as acq;
pub use pbo_core as core;
pub use pbo_gp as gp;
pub use pbo_linalg as linalg;
pub use pbo_opt as opt;
pub use pbo_problems as problems;
pub use pbo_sampling as sampling;
pub use pbo_uphes as uphes;

/// Crate version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
