//! The five batch-acquisition PBO algorithms of the paper, plus the
//! random-search baseline.
//!
//! All share the same [`crate::engine::Engine`] and differ only in how
//! they build each cycle's batch — exactly the paper's framing ("the
//! mentioned parallel algorithms follow the same scheme but differ in
//! the candidate selection phase").
//!
//! | Algorithm | Acquisition process |
//! |---|---|
//! | [`kb_qego`]  | q × (EI maximization + Kriging-Believer fantasy conditioning) |
//! | [`mic_qego`] | ⌈q/2⌉ × (EI **and** UCB on the same model + one conditioning) |
//! | [`mc_qego`]  | joint q-point MC-EI over the q·d space |
//! | [`bsp_ego`]  | 2q parallel local EI maximizations over a BSP partition |
//! | [`turbo`]    | MC q-EI restricted to a lengthscale-shaped trust region |

pub mod bsp_ego;
pub mod gp_ucb_pe;
pub mod hybrid_q;
pub mod kb_qego;
pub mod mc_qego;
pub mod mic_qego;
pub mod mic_turbo;
pub mod random;
pub mod stepper;
pub mod thompson;
pub mod turbo;

pub use stepper::{drive_stepper, BatchStepper};

use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::error::ConfigError;
use crate::observe::Observer;
use crate::record::RunRecord;
use pbo_opt::lbfgs::LbfgsConfig;
use pbo_opt::multistart::MultistartConfig;
use pbo_problems::Problem;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Kriging-Believer q-EGO (Ginsbourger et al. 2008).
    KbQEgo,
    /// Multi-infill-criteria q-EGO (this paper's variant).
    MicQEgo,
    /// Monte-Carlo q-EGO (Balandat et al. 2020, BoTorch).
    McQEgo,
    /// Binary-space-partitioning EGO (Gobert et al. 2020).
    BspEgo,
    /// Trust-region BO (Eriksson et al. 2019).
    Turbo,
    /// Uniform random search baseline.
    RandomSearch,
    /// Extension: Thompson-sampling batch acquisition (paper §2.2's
    /// information-based family; no inner optimization).
    ThompsonSampling,
    /// Extension: multi-infill criteria inside a trust region — the
    /// combination the paper's discussion proposes as future work.
    MicTurbo,
    /// Extension: GP-UCB-PE — a UCB leader plus variance-greedy
    /// pure-exploration fillers (Contal et al. 2013); the fillers cost
    /// no inner optimization at all.
    GpUcbPe,
    /// Extension: Azimi-style adaptive-q hybrid — per-cycle batch size
    /// chosen from expected one-step improvement vs. batch degradation
    /// (the only variable-q algorithm; see
    /// [`BatchStepper::propose_q`]).
    HybridQ,
}

impl AlgorithmKind {
    /// Stable display name (matches the paper's labels).
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::KbQEgo => "kb-q-ego",
            AlgorithmKind::MicQEgo => "mic-q-ego",
            AlgorithmKind::McQEgo => "mc-q-ego",
            AlgorithmKind::BspEgo => "bsp-ego",
            AlgorithmKind::Turbo => "turbo",
            AlgorithmKind::RandomSearch => "random",
            AlgorithmKind::ThompsonSampling => "thompson",
            AlgorithmKind::MicTurbo => "mic-turbo",
            AlgorithmKind::GpUcbPe => "gp-ucb-pe",
            AlgorithmKind::HybridQ => "hybrid-q",
        }
    }

    /// The five algorithms compared in the paper (Tables 4–7), in the
    /// paper's column order.
    pub fn paper_set() -> [AlgorithmKind; 5] {
        [
            AlgorithmKind::Turbo,
            AlgorithmKind::KbQEgo,
            AlgorithmKind::MicQEgo,
            AlgorithmKind::McQEgo,
            AlgorithmKind::BspEgo,
        ]
    }

    /// Parse a display name.
    pub fn from_name(s: &str) -> Option<AlgorithmKind> {
        Some(match s {
            "kb-q-ego" => AlgorithmKind::KbQEgo,
            "mic-q-ego" => AlgorithmKind::MicQEgo,
            "mc-q-ego" => AlgorithmKind::McQEgo,
            "bsp-ego" => AlgorithmKind::BspEgo,
            "turbo" => AlgorithmKind::Turbo,
            "random" => AlgorithmKind::RandomSearch,
            "thompson" => AlgorithmKind::ThompsonSampling,
            "mic-turbo" => AlgorithmKind::MicTurbo,
            "gp-ucb-pe" => AlgorithmKind::GpUcbPe,
            "hybrid-q" => AlgorithmKind::HybridQ,
            _ => return None,
        })
    }

    /// The extension algorithms built on top of the paper's five
    /// (future-work directions the paper names explicitly).
    pub fn extension_set() -> [AlgorithmKind; 4] {
        [
            AlgorithmKind::ThompsonSampling,
            AlgorithmKind::MicTurbo,
            AlgorithmKind::GpUcbPe,
            AlgorithmKind::HybridQ,
        ]
    }

    /// Whether this algorithm chooses its own batch size each cycle
    /// ([`BatchStepper::propose_q`] may return something other than the
    /// configured q). Serving such a session over the wire requires
    /// protocol v2, whose `ask` reply carries the cycle's q.
    pub fn is_variable_q(self) -> bool {
        matches!(self, AlgorithmKind::HybridQ)
    }
}

/// Run an algorithm with the default configuration.
pub fn run_algorithm(
    kind: AlgorithmKind,
    problem: &dyn Problem,
    budget: &Budget,
    seed: u64,
) -> RunRecord {
    run_algorithm_with(kind, problem, budget, AlgoConfig::default(), seed)
}

/// Run an algorithm with an explicit configuration. Panics on an
/// invalid configuration; use [`run_algorithm_observed`] for typed
/// errors and observability.
pub fn run_algorithm_with(
    kind: AlgorithmKind,
    problem: &dyn Problem,
    budget: &Budget,
    cfg: AlgoConfig,
    seed: u64,
) -> RunRecord {
    run_algorithm_observed(kind, problem, budget, cfg, seed, crate::observe::NullObserver)
        .expect("invalid algorithm configuration")
}

/// Run an algorithm with an explicit configuration and an observer
/// receiving the engine's event stream. The observer never perturbs the
/// run: results are bit-identical with and without it.
pub fn run_algorithm_observed<'a>(
    kind: AlgorithmKind,
    problem: &'a dyn Problem,
    budget: &Budget,
    cfg: AlgoConfig,
    seed: u64,
    observer: impl Observer + Send + 'a,
) -> Result<RunRecord, ConfigError> {
    let e = Engine::builder(problem)
        .budget(*budget)
        .config(cfg)
        .seed(seed)
        .algorithm(kind.name())
        .observer(observer)
        .build()?;
    Ok(drive_stepper(kind, e))
}

/// Multistart settings for single-point acquisition maximization,
/// derived from the algorithm config.
pub fn acq_multistart(cfg: &AlgoConfig, seed: u64) -> MultistartConfig {
    MultistartConfig {
        raw_samples: cfg.acq.raw_samples,
        restarts: cfg.acq.restarts,
        lbfgs: LbfgsConfig { max_iters: 40, ..LbfgsConfig::default() },
        seed,
    }
}

/// Multistart settings for the joint q-EI optimization.
pub fn qei_multistart(cfg: &AlgoConfig, seed: u64) -> MultistartConfig {
    MultistartConfig {
        raw_samples: cfg.qei.raw_samples,
        restarts: cfg.qei.restarts,
        lbfgs: LbfgsConfig { max_iters: 30, ..LbfgsConfig::default() },
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in [
            AlgorithmKind::KbQEgo,
            AlgorithmKind::MicQEgo,
            AlgorithmKind::McQEgo,
            AlgorithmKind::BspEgo,
            AlgorithmKind::Turbo,
            AlgorithmKind::RandomSearch,
            AlgorithmKind::ThompsonSampling,
            AlgorithmKind::MicTurbo,
            AlgorithmKind::GpUcbPe,
            AlgorithmKind::HybridQ,
        ] {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(AlgorithmKind::from_name("nope"), None);
    }

    #[test]
    fn only_the_hybrid_is_variable_q() {
        for kind in AlgorithmKind::paper_set() {
            assert!(!kind.is_variable_q());
        }
        assert!(!AlgorithmKind::RandomSearch.is_variable_q());
        assert!(!AlgorithmKind::GpUcbPe.is_variable_q());
        assert!(AlgorithmKind::HybridQ.is_variable_q());
    }

    #[test]
    fn paper_set_has_five_distinct() {
        let set = AlgorithmKind::paper_set();
        assert_eq!(set.len(), 5);
        for i in 0..5 {
            for j in 0..i {
                assert_ne!(set[i], set[j]);
            }
        }
        assert!(!set.contains(&AlgorithmKind::RandomSearch));
    }
}
