//! MC-based q-EGO (Balandat et al. 2020): joint Monte-Carlo q-EI over
//! the full q·d batch space.
//!
//! Per cycle: fit the model, then maximize the sample-average q-EI (the
//! reparameterization trick with fixed quasi-MC base samples) over all
//! q points **jointly** with multistart L-BFGS. The joint inner problem
//! is what makes this method expensive at large q — the paper's Fig. 2
//! shows its evaluation count collapsing fastest.

use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_problems::Problem;

/// Drive a prepared engine with MC-based q-EGO to budget exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::McQEgo, e)
}

/// Run MC-based q-EGO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("mc-q-ego")
        .build()
        .expect("invalid MC-q-EGO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn q1_runs_single_ei_path() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(3, 1).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 1);
        assert_eq!(r.n_simulations(), 11);
        assert_eq!(r.n_cycles(), 3);
    }

    #[test]
    fn joint_batch_has_q_points() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(2, 4).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 8);
        assert_eq!(r.n_simulations(), 8 + 8);
    }

    #[test]
    fn improves_over_initial_design() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 6);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }
}
