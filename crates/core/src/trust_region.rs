//! TuRBO's trust-region state machine (Eriksson et al., 2019; one trust
//! region, as used in the paper / the BoTorch implementation).
//!
//! The trust region is a hyper-rectangle centered at the incumbent. Its
//! base side length `L` doubles after `success_tol` consecutive
//! improving cycles and halves after `fail_tol` consecutive
//! non-improving ones; when `L` collapses below `L_min` the region is
//! restarted at full size. Per-dimension side lengths are modulated by
//! the GP's ARD lengthscales, normalized to preserve the total volume
//! `L^d` — the "re-scaling according to the length scale λ_i" the paper
//! describes.

use pbo_opt::Bounds;

/// Trust-region parameters (Eriksson et al. defaults).
#[derive(Debug, Clone)]
pub struct TrustRegionConfig {
    /// Initial and post-restart base length.
    pub l_init: f64,
    /// Minimum base length before a restart.
    pub l_min: f64,
    /// Maximum base length.
    pub l_max: f64,
    /// Consecutive successes before expansion.
    pub success_tol: usize,
    /// Consecutive failures before shrinking.
    pub fail_tol: usize,
}

impl Default for TrustRegionConfig {
    fn default() -> Self {
        TrustRegionConfig {
            l_init: 0.8,
            l_min: 0.5f64.powi(7),
            l_max: 1.6,
            success_tol: 3,
            fail_tol: 4,
        }
    }
}

/// Mutable trust-region state.
#[derive(Debug, Clone)]
pub struct TrustRegion {
    cfg: TrustRegionConfig,
    length: f64,
    successes: usize,
    failures: usize,
    restarts: usize,
}

impl TrustRegion {
    /// Fresh region at the initial length.
    pub fn new(cfg: TrustRegionConfig) -> Self {
        let length = cfg.l_init;
        TrustRegion { cfg, length, successes: 0, failures: 0, restarts: 0 }
    }

    /// Current base side length.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Number of restarts so far.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The hyper-rectangle around `center` (unit-cube coordinates) with
    /// per-dimension sides scaled by the ARD lengthscales, clipped to
    /// the unit cube.
    pub fn bounds(&self, center: &[f64], lengthscales: &[f64]) -> Bounds {
        let d = center.len();
        debug_assert_eq!(lengthscales.len(), d);
        // Volume-preserving weights: λ_i / geometric-mean(λ).
        let log_mean: f64 =
            lengthscales.iter().map(|l| l.max(1e-12).ln()).sum::<f64>() / d as f64;
        let gm = log_mean.exp();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for i in 0..d {
            let w = (lengthscales[i].max(1e-12) / gm).clamp(0.1, 10.0);
            let half = 0.5 * self.length * w;
            lo.push((center[i] - half).max(0.0));
            hi.push((center[i] + half).min(1.0).max((center[i] - half).max(0.0)));
        }
        Bounds::new(lo, hi)
    }

    /// Report a cycle outcome: `improved` = the batch improved the
    /// incumbent. Returns `true` if the region was restarted.
    pub fn update(&mut self, improved: bool) -> bool {
        if improved {
            self.successes += 1;
            self.failures = 0;
            if self.successes >= self.cfg.success_tol {
                self.length = (2.0 * self.length).min(self.cfg.l_max);
                self.successes = 0;
            }
        } else {
            self.failures += 1;
            self.successes = 0;
            if self.failures >= self.cfg.fail_tol {
                self.length *= 0.5;
                self.failures = 0;
            }
        }
        if self.length < self.cfg.l_min {
            self.length = self.cfg.l_init;
            self.successes = 0;
            self.failures = 0;
            self.restarts += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expands_after_consecutive_successes() {
        let mut tr = TrustRegion::new(TrustRegionConfig::default());
        let l0 = tr.length();
        for _ in 0..3 {
            tr.update(true);
        }
        assert!((tr.length() - (2.0 * l0).min(1.6)).abs() < 1e-12);
    }

    #[test]
    fn shrinks_after_consecutive_failures() {
        let mut tr = TrustRegion::new(TrustRegionConfig::default());
        let l0 = tr.length();
        for _ in 0..4 {
            tr.update(false);
        }
        assert!((tr.length() - 0.5 * l0).abs() < 1e-12);
    }

    #[test]
    fn success_resets_failure_count() {
        let mut tr = TrustRegion::new(TrustRegionConfig::default());
        let l0 = tr.length();
        for _ in 0..3 {
            tr.update(false);
        }
        tr.update(true);
        for _ in 0..3 {
            tr.update(false);
        }
        assert_eq!(tr.length(), l0, "failure streak must reset on success");
    }

    #[test]
    fn restart_after_collapse() {
        let mut tr = TrustRegion::new(TrustRegionConfig::default());
        let mut restarted = false;
        for _ in 0..200 {
            restarted |= tr.update(false);
            if restarted {
                break;
            }
        }
        assert!(restarted);
        assert_eq!(tr.length(), 0.8);
        assert_eq!(tr.restarts(), 1);
    }

    #[test]
    fn bounds_clip_to_unit_cube_and_follow_lengthscales() {
        let tr = TrustRegion::new(TrustRegionConfig::default());
        let b = tr.bounds(&[0.05, 0.9], &[0.1, 1.0]);
        assert!(b.lo()[0] >= 0.0 && b.hi()[1] <= 1.0);
        // Dimension with the larger lengthscale gets the wider side
        // (before clipping): compare at an interior center.
        let b2 = tr.bounds(&[0.5, 0.5], &[0.1, 1.0]);
        let w = b2.widths();
        assert!(w[1] > w[0], "widths {w:?}");
        // Volume preservation (product of weights = 1): check with a
        // small region so no side is clipped by the cube.
        let small = TrustRegion::new(TrustRegionConfig { l_init: 0.4, ..Default::default() });
        let b3 = small.bounds(&[0.5, 0.5], &[0.5, 0.8]);
        let vol: f64 = b3.widths().iter().product();
        assert!((vol - 0.4 * 0.4).abs() < 1e-9, "vol {vol}");
    }

    #[test]
    fn degenerate_lengthscales_do_not_panic() {
        let tr = TrustRegion::new(TrustRegionConfig::default());
        let b = tr.bounds(&[0.5, 0.5], &[1e-30, 1e30]);
        assert!(b.lo().iter().zip(b.hi()).all(|(l, h)| l <= h));
    }
}
