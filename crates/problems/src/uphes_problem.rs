//! The UPHES scheduling problem as a [`Problem`].

use crate::Problem;
use pbo_uphes::{PlantConfig, Simulator, DECISION_DIM};

/// Maximize the expected daily profit of the UPHES plant over the
/// 12-dimensional unit-cube decision space.
#[derive(Debug, Clone)]
pub struct UphesProblem {
    simulator: Simulator,
    lower: Vec<f64>,
    upper: Vec<f64>,
    name: String,
}

impl UphesProblem {
    /// Wrap an existing simulator.
    pub fn new(simulator: Simulator) -> Self {
        UphesProblem {
            simulator,
            lower: vec![0.0; DECISION_DIM],
            upper: vec![1.0; DECISION_DIM],
            name: "uphes-maizeret".to_string(),
        }
    }

    /// Default Maizeret-like instance; `seed` fixes the scenario set
    /// (the paper's "market day").
    pub fn maizeret(seed: u64) -> Self {
        Self::new(Simulator::maizeret(seed))
    }

    /// Instance with a custom plant configuration.
    pub fn with_config(cfg: PlantConfig) -> Self {
        Self::new(Simulator::new(cfg))
    }

    /// Access to the underlying simulator (for detailed breakdowns).
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }
}

impl Problem for UphesProblem {
    fn name(&self) -> &str {
        &self.name
    }
    fn dim(&self) -> usize {
        DECISION_DIM
    }
    fn lower(&self) -> &[f64] {
        &self.lower
    }
    fn upper(&self) -> &[f64] {
        &self.upper
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.simulator.expected_profit(x)
    }
    fn maximize(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_simulator_consistently() {
        let p = UphesProblem::maizeret(5);
        let x = vec![0.45; DECISION_DIM];
        assert_eq!(p.eval(&x), p.simulator().expected_profit(&x));
        assert!(p.maximize());
        assert_eq!(p.dim(), 12);
        assert!(p.lower().iter().all(|&v| v == 0.0));
        assert!(p.upper().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn different_seeds_give_different_days() {
        let a = UphesProblem::maizeret(1);
        let b = UphesProblem::maizeret(2);
        let x = vec![0.3; DECISION_DIM];
        assert_ne!(a.eval(&x), b.eval(&x));
    }
}
