//! Jitter-stabilised Cholesky factorization with incremental extension.
//!
//! Gaussian-process regression spends essentially all of its time here:
//! one factorization per marginal-likelihood evaluation, plus `O(n^2)`
//! solves for predictions. The Kriging-Believer acquisition loop needs to
//! *grow* a factored system by a handful of fantasy points per step;
//! [`Cholesky::extend`] does that in `O(n^2 q)` instead of a fresh
//! `O(n^3)` factorization.

use crate::matrix::Matrix;
use crate::vec_ops::dot;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `L * L^T = A`.
///
/// The factor is stored as a full square [`Matrix`] whose strict upper
/// triangle is kept at zero, so rows of `L` are contiguous slices — the
/// layout the forward-substitution inner loop wants.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal to reach positive
    /// definiteness (0.0 when none was needed).
    jitter: f64,
}

/// Initial jitter tried when a pivot goes non-positive.
const JITTER_START: f64 = 1e-10;
/// Jitter escalation factor per retry.
const JITTER_GROWTH: f64 = 10.0;
/// Maximum number of jitter escalations before giving up.
const JITTER_TRIES: usize = 10;

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// If a pivot fails, the factorization is retried with an escalating
    /// diagonal jitter (`1e-10 * mean_diag`, growing tenfold up to
    /// [`JITTER_TRIES`] times). This mirrors the standard GP-library
    /// treatment of nearly singular kernel matrices (e.g. duplicated
    /// training inputs produced by fantasy points).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "cholesky of {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.all_finite() {
            return Err(LinalgError::NonFinite("cholesky input"));
        }
        let n = a.rows();
        let mean_diag = if n == 0 {
            1.0
        } else {
            a.diag().iter().map(|v| v.abs()).sum::<f64>() / n as f64
        };
        let mut jitter = 0.0;
        for attempt in 0..=JITTER_TRIES {
            match Self::try_factor(a, jitter) {
                Ok(l) => return Ok(Cholesky { l, jitter }),
                Err(e) => {
                    if attempt == JITTER_TRIES {
                        return Err(e);
                    }
                    jitter = if jitter == 0.0 {
                        JITTER_START * mean_diag.max(f64::MIN_POSITIVE)
                    } else {
                        jitter * JITTER_GROWTH
                    };
                }
            }
        }
        unreachable!("jitter loop always returns")
    }

    /// One factorization attempt with a fixed diagonal jitter.
    fn try_factor(a: &Matrix, jitter: f64) -> Result<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // Dot-product (ijk) form: both row prefixes are contiguous.
                let s = if j == 0 { 0.0 } else { dot(&l.row(i)[..j], &l.row(j)[..j]) };
                if i == j {
                    let pivot = a[(i, i)] + jitter - s;
                    if pivot <= 0.0 || !pivot.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot });
                    }
                    l[(i, j)] = pivot.sqrt();
                } else {
                    l[(i, j)] = (a[(i, j)] - s) / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Order of the factored matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    #[inline]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// The diagonal jitter that was applied (0 if none).
    #[inline]
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Solve `L y = b` (forward substitution) in place.
    pub fn solve_lower_in_place(&self, b: &mut [f64]) {
        let n = self.n();
        debug_assert_eq!(b.len(), n);
        for i in 0..n {
            let s = dot(&self.l.row(i)[..i], &b[..i]);
            b[i] = (b[i] - s) / self.l[(i, i)];
        }
    }

    /// Solve `L^T x = y` (backward substitution) in place.
    pub fn solve_lower_t_in_place(&self, b: &mut [f64]) {
        let n = self.n();
        debug_assert_eq!(b.len(), n);
        for i in (0..n).rev() {
            let mut s = b[i];
            // Column i of L below the diagonal == row entries l[j][i], j>i.
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * b[j];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solve `A x = b` via the two triangular solves. Returns a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n() {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve: order {} with rhs of {}",
                self.n(),
                b.len()
            )));
        }
        let mut x = b.to_vec();
        self.solve_lower_in_place(&mut x);
        self.solve_lower_t_in_place(&mut x);
        Ok(x)
    }

    /// Solve `A X = B` column-wise for a matrix right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.n() {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_matrix: order {} with rhs {}x{}",
                self.n(),
                b.rows(),
                b.cols()
            )));
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        let mut col = vec![0.0; b.rows()];
        for j in 0..b.cols() {
            for i in 0..b.rows() {
                col[i] = b[(i, j)];
            }
            self.solve_lower_in_place(&mut col);
            self.solve_lower_t_in_place(&mut col);
            for i in 0..b.rows() {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// `log det A = 2 * sum_i log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.n()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `b^T A^{-1} b` using a single forward solve:
    /// with `L y = b`, the form equals `y^T y`.
    pub fn quad_form(&self, b: &[f64]) -> Result<f64> {
        if b.len() != self.n() {
            return Err(LinalgError::ShapeMismatch("quad_form rhs".into()));
        }
        let mut y = b.to_vec();
        self.solve_lower_in_place(&mut y);
        Ok(dot(&y, &y))
    }

    /// Dense `A^{-1}` (used by the marginal-likelihood gradient, which
    /// needs `tr(A^{-1} dK)`).
    pub fn inverse(&self) -> Matrix {
        let n = self.n();
        let mut inv = Matrix::identity(n);
        let mut col = vec![0.0; n];
        for j in 0..n {
            for i in 0..n {
                col[i] = inv[(i, j)];
            }
            self.solve_lower_in_place(&mut col);
            self.solve_lower_t_in_place(&mut col);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }

    /// Extend the factorization of `A` to the factorization of
    ///
    /// ```text
    /// [ A   B ]
    /// [ B^T C ]
    /// ```
    ///
    /// where `B` is `n x q` (cross block) and `C` is `q x q`. Runs in
    /// `O(n^2 q + n q^2 + q^3)`. The same jitter that stabilised `A` is
    /// applied to `C`'s diagonal, with local escalation if the trailing
    /// block itself fails.
    pub fn extend(&self, b: &Matrix, c: &Matrix) -> Result<Cholesky> {
        let n = self.n();
        let q = c.rows();
        if b.rows() != n || b.cols() != q || !c.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "extend: base order {n}, B {}x{}, C {}x{}",
                b.rows(),
                b.cols(),
                c.rows(),
                c.cols()
            )));
        }
        // S (q x n) solves L S^T = B, i.e. each row of S is L^{-1} b_col.
        let mut s = Matrix::zeros(q, n);
        let mut col = vec![0.0; n];
        for j in 0..q {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_lower_in_place(&mut col);
            s.row_mut(j).copy_from_slice(&col);
        }
        // Trailing block: M M^T = C + jitter*I - S S^T.
        let mut trailing = Matrix::from_fn(q, q, |i, j| c[(i, j)] - dot(s.row(i), s.row(j)));
        trailing.symmetrize();
        trailing.add_diag(self.jitter);
        let mean_diag = if q == 0 {
            1.0
        } else {
            trailing.diag().iter().map(|v| v.abs()).sum::<f64>() / q as f64
        };
        let mut local_jitter = 0.0;
        let m = loop {
            match Cholesky::try_factor(&trailing, local_jitter) {
                Ok(m) => break m,
                Err(e) => {
                    if local_jitter > JITTER_GROWTH.powi(JITTER_TRIES as i32) * JITTER_START {
                        return Err(e);
                    }
                    local_jitter = if local_jitter == 0.0 {
                        JITTER_START * mean_diag.max(f64::MIN_POSITIVE)
                    } else {
                        local_jitter * JITTER_GROWTH
                    };
                }
            }
        };
        // Assemble [[L, 0], [S, M]].
        let mut l = Matrix::zeros(n + q, n + q);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        for i in 0..q {
            l.row_mut(n + i)[..n].copy_from_slice(s.row(i));
            l.row_mut(n + i)[n..n + q].copy_from_slice(m.row(i));
        }
        Ok(Cholesky { l, jitter: self.jitter.max(local_jitter) })
    }

    /// Reconstruct `A = L L^T` (minus any jitter); used by tests and by
    /// the GP fantasy machinery when it needs the implied covariance.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.n();
        Matrix::from_fn(n, n, |i, j| {
            let k = i.min(j) + 1;
            dot(&self.l.row(i)[..k], &self.l.row(j)[..k])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic SPD test matrix: A = G G^T + n*I.
    fn spd(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let g = Matrix::from_fn(n, n, |_, _| next());
        let mut a = g.matmul_nt(&g).unwrap();
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(12, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.reconstruct();
        assert!(a.sub(&back).unwrap().norm_max() < 1e-9 * a.norm_max());
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd(10, 7);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let x = ch.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, bk) in b.iter().zip(&back) {
            assert!((bi - bk).abs() < 1e-8, "{bi} vs {bk}");
        }
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        // det = 12 - 4 = 8
        assert!((ch.log_det() - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_solve() {
        let a = spd(8, 11);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.25).collect();
        let x = ch.solve(&b).unwrap();
        let qf = ch.quad_form(&b).unwrap();
        assert!((qf - dot(&b, &x)).abs() < 1e-8);
    }

    #[test]
    fn inverse_is_inverse() {
        let a = spd(6, 5);
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let prod = a.matmul(&inv).unwrap();
        let id = Matrix::identity(6);
        assert!(prod.sub(&id).unwrap().norm_max() < 1e-9);
    }

    #[test]
    fn jitter_rescues_singular() {
        // Rank-deficient: duplicate rows.
        let mut a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.5],
            vec![1.0, 1.0, 0.5],
            vec![0.5, 0.5, 1.0],
        ])
        .unwrap();
        a.symmetrize();
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        assert!(ch.log_det().is_finite());
    }

    #[test]
    fn non_spd_eventually_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, -5.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn extend_matches_full_factorization() {
        let n = 9;
        let q = 3;
        let full = spd(n + q, 21);
        // Split into blocks.
        let a = Matrix::from_fn(n, n, |i, j| full[(i, j)]);
        let b = Matrix::from_fn(n, q, |i, j| full[(i, n + j)]);
        let c = Matrix::from_fn(q, q, |i, j| full[(n + i, n + j)]);
        let base = Cholesky::factor(&a).unwrap();
        let ext = base.extend(&b, &c).unwrap();
        let direct = Cholesky::factor(&full).unwrap();
        // Factors agree (both lower-triangular with positive diagonal
        // => unique), and solves agree.
        let rhs: Vec<f64> = (0..n + q).map(|i| (i as f64 * 0.7).cos()).collect();
        let x1 = ext.solve(&rhs).unwrap();
        let x2 = direct.solve(&rhs).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
        assert!((ext.log_det() - direct.log_det()).abs() < 1e-8);
    }

    #[test]
    fn extend_zero_q_is_identity_op() {
        let a = spd(5, 2);
        let base = Cholesky::factor(&a).unwrap();
        let ext = base.extend(&Matrix::zeros(5, 0), &Matrix::zeros(0, 0)).unwrap();
        assert_eq!(ext.n(), 5);
        assert!((ext.log_det() - base.log_det()).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_matches_columnwise() {
        let a = spd(7, 9);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(7, 3, |i, j| ((i + 2 * j) as f64).sin());
        let x = ch.solve_matrix(&b).unwrap();
        for j in 0..3 {
            let col_b = b.col(j);
            let col_x = ch.solve(&col_b).unwrap();
            for i in 0..7 {
                assert!((x[(i, j)] - col_x[i]).abs() < 1e-12);
            }
        }
    }
}
