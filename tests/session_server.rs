//! Conformance suite for the ask/tell session server.
//!
//! The contract under test: serving an optimization as a remote
//! ask/tell session changes *nothing* about its trajectory. Every test
//! here compares canonical `RunRecord` JSON lines byte for byte
//! against the in-process reference (`run_algorithm_observed` with the
//! same config and seed) — not "close", identical.

use pbo::prelude::*;
use pbo::core::session::{ProblemSpec, SessionConfig, SessionProfile, SessionState};
use pbo_server::client::{drive, Client};
use pbo_server::proto;
use pbo_server::registry::Registry;
use pbo_server::server::Server;
use std::path::PathBuf;
use std::sync::Arc;

const ALL_ALGORITHMS: [AlgorithmKind; 10] = [
    AlgorithmKind::KbQEgo,
    AlgorithmKind::MicQEgo,
    AlgorithmKind::McQEgo,
    AlgorithmKind::BspEgo,
    AlgorithmKind::Turbo,
    AlgorithmKind::MicTurbo,
    AlgorithmKind::RandomSearch,
    AlgorithmKind::ThompsonSampling,
    AlgorithmKind::GpUcbPe,
    AlgorithmKind::HybridQ,
];

fn session_cfg(
    algorithm: AlgorithmKind,
    seed: u64,
    cycles: usize,
    q: usize,
) -> (SyntheticFn, SessionConfig) {
    let p = SyntheticFn::ackley(2);
    let cfg = SessionConfig {
        algorithm,
        problem: ProblemSpec::of(&p),
        budget: Budget::cycles(cycles, q).with_initial_samples(4),
        profile: SessionProfile::Test,
        seed,
    };
    (p, cfg)
}

/// The in-process reference record the session must reproduce exactly.
fn reference_line(p: &SyntheticFn, cfg: &SessionConfig) -> String {
    run_algorithm_observed(
        cfg.algorithm,
        p,
        &cfg.budget,
        cfg.profile.algo_config(),
        cfg.seed,
        NullObserver,
    )
    .unwrap()
    .to_json_line()
}

/// Drive a session to completion in-process, evaluating its asks with
/// the real problem.
fn drive_state(mut s: SessionState, p: &SyntheticFn) -> String {
    while !s.is_done() {
        let ask = s.ask().unwrap();
        let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
        s.tell(ask.turn, &values).unwrap();
    }
    s.record().unwrap().to_json_line()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pbo_srv_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Satellite #1 — ask/tell conformance: every algorithm's session
/// trajectory is byte-identical to its in-process run.
#[test]
fn session_reproduces_in_process_run_for_every_algorithm() {
    for (i, algorithm) in ALL_ALGORITHMS.into_iter().enumerate() {
        let (p, cfg) = session_cfg(algorithm, 40 + i as u64, 3, 2);
        let want = reference_line(&p, &cfg);
        let got = drive_state(SessionState::create(cfg).unwrap(), &p);
        assert_eq!(got, want, "{} session diverged from in-process run", algorithm.name());
    }
}

/// Satellite #1 (wire leg) — the same bit-identity holds across a real
/// TCP round trip, including the float encoding in both directions.
#[test]
fn session_reproduces_in_process_run_over_tcp() {
    let server = Server::bind(Arc::new(Registry::in_memory()), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).unwrap();

    for (i, algorithm) in
        [AlgorithmKind::KbQEgo, AlgorithmKind::ThompsonSampling].into_iter().enumerate()
    {
        let (p, cfg) = session_cfg(algorithm, 70 + i as u64, 3, 2);
        let want = reference_line(&p, &cfg);
        let id = format!("tcp-{}", algorithm.name());
        let outcome = drive(&mut client, &id, &cfg, &p, None).unwrap();
        assert!(outcome.done);
        assert_eq!(outcome.record.unwrap(), want, "{} diverged over TCP", algorithm.name());
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Satellite #2 — crash/restart matrix: kill the registry after each
/// cycle k of a 10-cycle study, restart from disk, resume; the final
/// record must be byte-identical to the uninterrupted run, for every k.
#[test]
fn crash_restart_matrix_resumes_bit_identically() {
    let n_cycles = 10;
    let (p, cfg) = session_cfg(AlgorithmKind::KbQEgo, 99, n_cycles, 2);
    let want = reference_line(&p, &cfg);

    let finish = |reg: &Registry| -> String {
        loop {
            let ask = reg.ask("study").unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            if reg.tell("study", ask.turn, &values).unwrap().done {
                break;
            }
        }
        reg.record_line("study").unwrap()
    };

    for k in 0..n_cycles {
        let dir = tmp_dir(&format!("matrix_{k}"));
        let reg = Registry::open(&dir).unwrap();
        reg.create("study", cfg.clone()).unwrap();
        // Design tell + k cycle tells, then "kill" the daemon.
        for _ in 0..=k {
            let ask = reg.ask("study").unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            assert!(!reg.tell("study", ask.turn, &values).unwrap().done);
        }
        drop(reg);

        // Restart: re-attach idempotently (what a restarted client
        // does), then drive to completion.
        let reg = Registry::open(&dir).unwrap();
        let reply = reg.create("study", cfg.clone()).unwrap();
        assert!(!reply.created, "restart must re-attach, not recreate");
        assert_eq!(reply.turn, k + 1, "journal must have survived the kill");
        let got = finish(&reg);
        assert_eq!(got, want, "resume after cycle {k} diverged");
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Variable-q crash/restart matrix: the hybrid algorithm chooses a
/// different batch size each cycle, so the journal's per-turn widths
/// (and the schema-2 `qs` integrity record) are load-bearing. Kill the
/// registry after each cycle of a 10-cycle study and resume; the final
/// record must be byte-identical to the uninterrupted run for every
/// kill point, and the batch size must genuinely vary along the way.
#[test]
fn variable_q_crash_restart_matrix_resumes_bit_identically() {
    let n_cycles = 10;
    let p = SyntheticFn::ackley(3);
    let cfg = SessionConfig {
        algorithm: AlgorithmKind::HybridQ,
        problem: ProblemSpec::of(&p),
        budget: Budget::cycles(n_cycles, 4).with_initial_samples(8),
        profile: SessionProfile::Test,
        seed: 7,
    };
    let want = reference_line(&p, &cfg);

    // Uninterrupted run through a registry, recording each ask's width.
    let dir = tmp_dir("vq_base");
    let reg = Registry::open(&dir).unwrap();
    reg.create("study", cfg.clone()).unwrap();
    let mut widths: Vec<usize> = Vec::new();
    let uninterrupted = loop {
        let ask = reg.ask("study").unwrap();
        assert_eq!(ask.q, ask.points.len(), "AskReply.q must match its points");
        widths.push(ask.points.len());
        let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
        if reg.tell("study", ask.turn, &values).unwrap().done {
            break reg.record_line("study").unwrap();
        }
    };
    assert_eq!(uninterrupted, want, "served variable-q run diverged from in-process");
    let cycle_widths = &widths[1..]; // widths[0] is the design batch
    assert_eq!(cycle_widths.len(), n_cycles);
    assert!(
        cycle_widths.iter().any(|&w| w != cycle_widths[0]),
        "batch size never varied ({cycle_widths:?}) — the matrix would not exercise variable q"
    );
    assert!(cycle_widths.iter().all(|&w| (1..=4).contains(&w)), "{cycle_widths:?}");
    drop(reg);
    let _ = std::fs::remove_dir_all(dir);

    // Kill after the design tell + k cycle tells, for every k.
    for k in 0..n_cycles {
        let dir = tmp_dir(&format!("vq_matrix_{k}"));
        let reg = Registry::open(&dir).unwrap();
        reg.create("study", cfg.clone()).unwrap();
        for _ in 0..=k {
            let ask = reg.ask("study").unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            assert!(!reg.tell("study", ask.turn, &values).unwrap().done);
        }
        drop(reg);

        let reg = Registry::open(&dir).unwrap();
        let reply = reg.create("study", cfg.clone()).unwrap();
        assert!(!reply.created, "restart must re-attach, not recreate");
        assert_eq!(reply.turn, k + 1, "journal must have survived the kill");
        let got = loop {
            let ask = reg.ask("study").unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            if reg.tell("study", ask.turn, &values).unwrap().done {
                break reg.record_line("study").unwrap();
            }
        };
        assert_eq!(got, want, "variable-q resume after cycle {k} diverged");
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Protocol compatibility — a v1 client against a v2 server: fixed-q
/// sessions drive to a byte-identical record over raw `"proto":1`
/// frames (whose ask replies must not grow a `q` field), while any
/// attempt to touch a variable-q session over v1 gets the pinned
/// `unsupported_version` code.
#[test]
fn v1_client_against_v2_server() {
    let server = Server::bind(Arc::new(Registry::in_memory()), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).unwrap();
    let as_v1 = |line: String| {
        let native = format!("{{\"proto\":{},", proto::PROTO_VERSION);
        assert!(line.starts_with(&native), "encoder changed shape: {line}");
        line.replacen(&native, "{\"proto\":1,", 1)
    };
    let get = |v: &pbo::core::json::Json, k: &str| v.get(k).cloned();

    // A fixed-q session, driven entirely with proto-1 frames.
    let (p, cfg) = session_cfg(AlgorithmKind::KbQEgo, 81, 3, 2);
    let want = reference_line(&p, &cfg);
    client.raw(&as_v1(proto::encode_create("legacy", &cfg))).unwrap();
    let mut done = false;
    while !done {
        let resp = client.raw(&as_v1(proto::encode_ask("legacy"))).unwrap();
        assert!(get(&resp, "q").is_none(), "proto-1 ask reply must not carry q");
        let turn = get(&resp, "turn").and_then(|v| v.as_usize()).unwrap();
        let points: Vec<Vec<f64>> = get(&resp, "points")
            .and_then(|v| v.as_array().map(<[_]>::to_vec))
            .unwrap()
            .iter()
            .map(|row| row.as_array().unwrap().iter().filter_map(|x| x.as_f64()).collect())
            .collect();
        let values: Vec<f64> = points.iter().map(|x| p.eval(x)).collect();
        let resp = client.raw(&as_v1(proto::encode_tell("legacy", turn, &values))).unwrap();
        done = get(&resp, "done").and_then(|v| v.as_bool()).unwrap();
    }
    let resp = client.raw(&as_v1(proto::encode_id_op("record", "legacy"))).unwrap();
    let got = get(&resp, "record").and_then(|v| v.as_str().map(str::to_string)).unwrap();
    assert_eq!(got, want, "v1 client diverged against the v2 server");

    // Variable-q over v1: create refused, and ask against a session a
    // v2 client created is refused too — both with the pinned code.
    let (_, vq_cfg) = session_cfg(AlgorithmKind::HybridQ, 82, 2, 2);
    let err_code = |resp: &pbo::core::json::Json| {
        resp.get("error")
            .and_then(|e| e.get("code"))
            .and_then(pbo::core::json::Json::as_str)
            .map(str::to_string)
    };
    let resp = client.raw(&as_v1(proto::encode_create("vq", &vq_cfg))).unwrap();
    assert_eq!(err_code(&resp).as_deref(), Some("unsupported_version"));
    client.create("vq", &vq_cfg).unwrap(); // native (v2) create succeeds
    let resp = client.raw(&as_v1(proto::encode_ask("vq"))).unwrap();
    assert_eq!(err_code(&resp).as_deref(), Some("unsupported_version"));
    // The same ask at proto 2 works and carries q.
    let resp = client.raw(&proto::encode_ask("vq")).unwrap();
    assert!(get(&resp, "q").and_then(|v| v.as_usize()).is_some());

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The DESIGN.md wire-code table is exhaustive in both directions:
/// every code either typed error surface can emit appears in the
/// table, and the table names no code that the enums do not.
#[test]
fn design_wire_code_table_is_exhaustive() {
    use pbo::core::session::SessionError;
    use pbo_server::proto::RequestErrorKind;
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md"))
        .expect("DESIGN.md must exist at the workspace root");
    // Table rows look like `| `code` | request \| session | … |`; the
    // code is the first backticked cell. Scan the wire-code section.
    let section = design
        .split("<!-- wire-code-table -->")
        .nth(1)
        .expect("DESIGN.md must fence the wire-code table with <!-- wire-code-table -->");
    let mut documented: Vec<&str> = section
        .lines()
        .filter_map(|l| {
            let row = l.trim().strip_prefix("| `")?;
            row.split('`').next()
        })
        .collect();
    documented.sort_unstable();
    let mut expected: Vec<&str> = RequestErrorKind::ALL
        .iter()
        .map(|k| k.code())
        .chain(SessionError::ALL_CODES)
        .collect();
    expected.sort_unstable();
    expected.dedup();
    assert_eq!(
        documented, expected,
        "DESIGN.md wire-code table out of sync with RequestErrorKind::ALL + SessionError::ALL_CODES"
    );
}

/// Satellite #2 (corruption leg) — a truncated checkpoint is
/// quarantined with a typed error; sessions sharing the directory are
/// untouched and still resume bit-identically.
#[test]
fn corrupt_checkpoint_quarantines_one_session_only() {
    let dir = tmp_dir("quarantine");
    let (p, cfg) = session_cfg(AlgorithmKind::RandomSearch, 11, 2, 2);
    let want = reference_line(&p, &cfg);

    let reg = Registry::open(&dir).unwrap();
    reg.create("good", cfg.clone()).unwrap();
    reg.create("doomed", session_cfg(AlgorithmKind::RandomSearch, 12, 2, 2).1).unwrap();
    drop(reg);

    // Truncate one checkpoint mid-byte, as a crash during a non-atomic
    // write would have (atomic_write prevents this; simulate the damage
    // an adversarial filesystem could still inflict).
    let doomed = dir.join("doomed.session.json");
    let body = std::fs::read_to_string(&doomed).unwrap();
    std::fs::write(&doomed, &body[..body.len() / 2]).unwrap();

    let reg = Registry::open(&dir).unwrap();
    let err = reg.ask("doomed").unwrap_err();
    assert_eq!(err.code, "session_corrupt");
    let err = reg.tell("doomed", 0, &[1.0, 2.0]).unwrap_err();
    assert_eq!(err.code, "session_corrupt");

    // The sibling session is unaffected.
    let got = {
        loop {
            let ask = reg.ask("good").unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            if reg.tell("good", ask.turn, &values).unwrap().done {
                break;
            }
        }
        reg.record_line("good").unwrap()
    };
    assert_eq!(got, want);
    let _ = std::fs::remove_dir_all(dir);
}

/// Satellite #3 — concurrency soak: 64 sessions driven through one
/// daemon in a seeded pseudo-random interleaving (tells land
/// out-of-order across sessions, connections rotate). Every trajectory
/// must equal its solo in-process reference: sessions are isolated.
#[test]
fn soak_64_interleaved_sessions_are_isolated() {
    let server = Server::bind(Arc::new(Registry::in_memory()), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut clients: Vec<Client> =
        (0..4).map(|_| Client::connect(addr).unwrap()).collect();

    struct Sess {
        id: String,
        p: SyntheticFn,
        cfg: SessionConfig,
        done: bool,
    }
    let mut sessions: Vec<Sess> = (0..64)
        .map(|i| {
            // A few surrogate-driven sessions in the mix; the bulk is
            // random search so the soak stays fast.
            let algorithm = if i % 8 == 0 {
                AlgorithmKind::KbQEgo
            } else {
                AlgorithmKind::RandomSearch
            };
            let (p, cfg) = session_cfg(algorithm, 500 + i as u64, 2, 2);
            Sess { id: format!("soak-{i:02}"), p, cfg, done: false }
        })
        .collect();
    for (i, s) in sessions.iter().enumerate() {
        clients[i % 4].create(&s.id, &s.cfg).unwrap();
    }

    // Seeded LCG interleaving: pick a random unfinished session, ask,
    // evaluate, tell — so tells from different sessions interleave in
    // an order no sequential client would produce.
    let mut lcg: u64 = 0xDEAD_BEEF;
    let mut next = || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (lcg >> 33) as usize
    };
    while sessions.iter().any(|s| !s.done) {
        let open: Vec<usize> =
            (0..sessions.len()).filter(|&i| !sessions[i].done).collect();
        let i = open[next() % open.len()];
        let client = &mut clients[i % 4];
        let (turn, points) = client.ask(&sessions[i].id).unwrap();
        let values: Vec<f64> = points.iter().map(|x| sessions[i].p.eval(x)).collect();
        let done = client.tell(&sessions[i].id, turn, &values).unwrap();
        sessions[i].done = done;
    }

    for s in &sessions {
        let want = reference_line(&s.p, &s.cfg);
        let got = clients[0].record(&s.id).unwrap();
        assert_eq!(got, want, "session {} was perturbed by interleaving", s.id);
    }

    clients[0].shutdown().unwrap();
    handle.join().unwrap();
}

/// Satellite #3 (fuzz leg) — malformed frames of every kind get typed
/// error responses; the connection stays up and a live session on the
/// same daemon is unharmed.
#[test]
fn protocol_fuzz_yields_typed_errors_and_harms_nothing() {
    let server = Server::bind(Arc::new(Registry::in_memory()), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).unwrap();

    let (p, cfg) = session_cfg(AlgorithmKind::RandomSearch, 21, 2, 2);
    let want = reference_line(&p, &cfg);
    client.create("live", &cfg).unwrap();
    let (turn0, points0) = client.ask("live").unwrap();

    let q = points0.len();
    let fuzz: Vec<(String, &str)> = vec![
        ("{not json".into(), "malformed_json"),
        ("[1,2,3]".into(), "unsupported_proto"),
        ("{\"proto\":99,\"op\":\"ask\",\"id\":\"live\"}".into(), "unsupported_proto"),
        ("{\"proto\":1,\"op\":\"warp\",\"id\":\"live\"}".into(), "unknown_op"),
        ("{\"proto\":1,\"op\":\"ask\",\"id\":\"ghost\"}".into(), "unknown_session"),
        (proto::encode_tell("live", turn0, &vec![1.0; q + 3]), "wrong_point_count"),
        (proto::encode_tell("live", turn0 + 7, &vec![1.0; q]), "wrong_turn"),
        (proto::encode_id_op("record", "live"), "not_done"),
        ("{\"proto\":1,\"op\":\"create\",\"id\":\"live\",\"config\":{\"bogus\":1}}".into(), "invalid_config"),
    ];
    for (frame, want_code) in fuzz {
        let resp = client.raw(&frame).unwrap();
        let code = resp
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(pbo::core::json::Json::as_str)
            .unwrap_or("(none)");
        assert_eq!(code, want_code, "frame {frame}");
    }

    // Same connection, same session: still drivable, still identical.
    let mut done = false;
    let mut pending = Some((turn0, points0));
    while !done {
        let (turn, points) = match pending.take() {
            Some(x) => x,
            None => client.ask("live").unwrap(),
        };
        let values: Vec<f64> = points.iter().map(|x| p.eval(x)).collect();
        done = client.tell("live", turn, &values).unwrap();
    }
    assert_eq!(client.record("live").unwrap(), want);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Satellite #4 — non-finite tells route through the quarantine and
/// constant-liar imputation machinery, and the fault counters in the
/// final record reconcile exactly. Regression-pinned.
#[test]
fn nan_inf_tells_are_quarantined_imputed_and_counted() {
    let (p, cfg) = session_cfg(AlgorithmKind::KbQEgo, 33, 2, 2);
    let doe = cfg.budget.initial_samples;
    let mut s = SessionState::create(cfg).unwrap();

    // Healthy design.
    let ask = s.ask().unwrap();
    let design: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
    s.tell(ask.turn, &design).unwrap();

    // Cycle 0: one NaN — quarantined, then imputed constant-liar style.
    let ask = s.ask().unwrap();
    s.tell(ask.turn, &[f64::NAN, p.eval(&ask.points[1])]).unwrap();

    // Cycle 1: one +Inf — same path, separate counter.
    let ask = s.ask().unwrap();
    s.tell(ask.turn, &[p.eval(&ask.points[0]), f64::INFINITY]).unwrap();

    let r = s.record().expect("2-cycle budget exhausted").clone();
    let c0 = &r.cycles[0].faults;
    assert_eq!((c0.nan_quarantined, c0.inf_quarantined, c0.imputed), (1, 0, 1));
    let c1 = &r.cycles[1].faults;
    assert_eq!((c1.nan_quarantined, c1.inf_quarantined, c1.imputed), (0, 1, 1));
    let total = r.fault_totals();
    assert_eq!(total.nan_quarantined, 1);
    assert_eq!(total.inf_quarantined, 1);
    assert_eq!(total.imputed, 2);
    assert_eq!(total.dropped, 0);
    // Imputed points still enter the dataset: the liar stands in.
    assert_eq!(r.y_min.len(), doe + 4);
    assert!(r.y_min.iter().all(|v| v.is_finite()));

    // The worst finite value is the liar for cycle 0's NaN slot.
    let liar: f64 = r.y_min[..doe + 2]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(r.y_min[doe..doe + 2].contains(&liar));
}

/// Non-finite *design* values: failed points are dropped (not imputed)
/// exactly as a faulty in-process DoE rank would be, and an all-failed
/// design is a typed error that leaves the session retryable.
#[test]
fn nan_design_values_are_dropped_like_in_process_doe_faults() {
    let (p, cfg) = session_cfg(AlgorithmKind::RandomSearch, 34, 1, 2);
    let doe = cfg.budget.initial_samples;
    let mut s = SessionState::create(cfg).unwrap();
    let ask = s.ask().unwrap();
    let mut values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
    values[1] = f64::NAN;
    s.tell(ask.turn, &values).unwrap();
    let status = s.status();
    assert_eq!(status.n_data, doe - 1, "failed design point must be dropped");
    while !s.is_done() {
        let ask = s.ask().unwrap();
        let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
        s.tell(ask.turn, &values).unwrap();
    }
    let r = s.record().unwrap();
    assert_eq!(r.doe_faults.nan_quarantined, 1);
    assert_eq!(r.doe_faults.dropped, 1);
    assert_eq!(r.doe_size, doe - 1, "doe_size records the surviving design points");
    assert_eq!(r.y_min.len(), doe - 1 + 2);
}

// ---------------------------------------------------------------------
// Bounded-pool hardening (DESIGN §14): containment, backpressure, drain.
// ---------------------------------------------------------------------

use pbo_server::server::ServerConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A raw socket speaking the wire protocol by hand, for offender
/// scenarios the polite [`Client`] cannot express (half-sent requests,
/// silence, oversized lines).
fn raw_conn(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (reader, stream)
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

fn counter(status: &pbo::core::json::Json, name: &str) -> u64 {
    status
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(pbo::core::json::Json::as_u64)
        .unwrap_or_else(|| panic!("server-status must carry counter {name}"))
}

fn gauge(status: &pbo::core::json::Json, name: &str) -> f64 {
    status
        .get("gauges")
        .and_then(|g| g.get(name))
        .and_then(pbo::core::json::Json::as_f64)
        .unwrap_or_else(|| panic!("server-status must carry gauge {name}"))
}

/// Satellite bugfix — unbounded request lines were a memory DoS.
/// A line past `max_line_bytes` gets the typed `line_too_long` error,
/// the counter increments exactly once, and the *same connection*
/// remains fully usable (the oversized line is discarded, not fatal).
#[test]
fn oversize_line_gets_typed_error_and_connection_survives() {
    let config = ServerConfig { max_line_bytes: 64 * 1024, ..ServerConfig::default() };
    let server =
        Server::bind_with(Arc::new(Registry::in_memory()), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = Client::connect(addr).unwrap();

    // ~4x the cap, no newline until the end: the cap must trip while
    // the line is still streaming in.
    let huge = format!("{{\"proto\":2,\"op\":\"ask\",\"id\":\"{}\"}}", "x".repeat(256 * 1024));
    let resp = client.raw(&huge).unwrap();
    let code = resp
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(pbo::core::json::Json::as_str);
    assert_eq!(code, Some("line_too_long"), "{resp:?}");

    // Same connection: a normal session still drives to byte-identity.
    let (p, cfg) = session_cfg(AlgorithmKind::RandomSearch, 61, 2, 2);
    let want = reference_line(&p, &cfg);
    let outcome = drive(&mut client, "post-oversize", &cfg, &p, None).unwrap();
    assert!(outcome.done);
    assert_eq!(outcome.record.unwrap(), want, "connection damaged by the oversize line");

    let status = client.server_status().unwrap();
    assert_eq!(counter(&status, "server.errors.line_too_long"), 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Tentpole backpressure — past `max_conns` the acceptor answers a
/// typed `server_busy` error and closes, instead of stalling or
/// spawning without bound; established connections are untouched.
#[test]
fn connection_cap_refuses_with_typed_server_busy() {
    let config = ServerConfig { workers: 1, max_conns: 1, ..ServerConfig::default() };
    let server =
        Server::bind_with(Arc::new(Registry::in_memory()), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut a = Client::connect(addr).unwrap();
    // A round trip guarantees A is accepted and counted before B tries.
    a.server_status().unwrap();

    let (mut b_reader, _b_stream) = raw_conn(addr);
    let line = read_line(&mut b_reader);
    let v = pbo::core::json::parse(&line).unwrap();
    assert_eq!(
        v.get("error").and_then(|e| e.get("code")).and_then(pbo::core::json::Json::as_str),
        Some("server_busy"),
        "{line}"
    );
    let mut rest = String::new();
    assert_eq!(b_reader.read_to_string(&mut rest).unwrap(), 0, "B must be closed after the refusal");

    // A is unaffected and sees the rejection in the counters.
    let status = a.server_status().unwrap();
    assert_eq!(counter(&status, "server.conns.busy_rejected"), 1);
    assert!(gauge(&status, "server.conns.live") >= 1.0);

    a.shutdown().unwrap();
    handle.join().unwrap();
}

/// Tentpole containment — a silent connection is answered a typed
/// `idle_timeout` error and closed, freeing its slot; the server stays
/// healthy for clients that arrive afterwards.
#[test]
fn idle_connection_gets_typed_timeout_and_is_closed() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let server =
        Server::bind_with(Arc::new(Registry::in_memory()), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let (mut idle_reader, _idle_stream) = raw_conn(addr);
    // Send nothing. The server must speak first — a typed refusal.
    let line = read_line(&mut idle_reader);
    let v = pbo::core::json::parse(&line).unwrap();
    assert_eq!(
        v.get("error").and_then(|e| e.get("code")).and_then(pbo::core::json::Json::as_str),
        Some("idle_timeout"),
        "{line}"
    );
    let mut rest = String::new();
    assert_eq!(idle_reader.read_to_string(&mut rest).unwrap(), 0, "idle conn must be closed");

    // The slot is free again: a new client works and sees the counter.
    let mut client = Client::connect(addr).unwrap();
    let status = client.server_status().unwrap();
    assert_eq!(counter(&status, "server.conns.idle_timeout"), 1);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Satellite bugfix — shutdown used to leave handler threads detached,
/// racing a severed in-flight tell. The drain contract: a tell issued
/// just before shutdown either completes with a reply or is refused —
/// never half-applied — `run()` returns only after every worker is
/// joined, and every surviving connection is closed (EOF), not
/// abandoned to a detached thread.
#[test]
fn shutdown_drains_in_flight_tell_and_joins_workers() {
    let registry = Arc::new(Registry::in_memory());
    let config = ServerConfig { workers: 1, ..ServerConfig::default() };
    let server = Server::bind_with(registry.clone(), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    // Set up a session and fetch its design ask over a raw connection.
    let (p, cfg) = session_cfg(AlgorithmKind::RandomSearch, 62, 2, 2);
    let (mut a_reader, mut a_stream) = raw_conn(addr);
    send_line(&mut a_stream, &proto::encode_create("draining", &cfg));
    read_line(&mut a_reader);
    send_line(&mut a_stream, &proto::encode_ask("draining"));
    let ask = pbo::core::json::parse(&read_line(&mut a_reader)).unwrap();
    let turn = ask.get("turn").and_then(pbo::core::json::Json::as_usize).unwrap();
    let points: Vec<Vec<f64>> = ask
        .get("points")
        .and_then(|v| v.as_array().map(<[_]>::to_vec))
        .unwrap()
        .iter()
        .map(|row| row.as_array().unwrap().iter().filter_map(|x| x.as_f64()).collect())
        .collect();
    let values: Vec<f64> = points.iter().map(|x| p.eval(x)).collect();

    // An idle bystander connection, open across the shutdown.
    let (mut c_reader, _c_stream) = raw_conn(addr);

    // The in-flight tell: written, reply deliberately not read yet.
    send_line(&mut a_stream, &proto::encode_tell("draining", turn, &values));
    std::thread::sleep(Duration::from_millis(300));

    // Another client asks the daemon to stop.
    let mut b = Client::connect(addr).unwrap();
    b.shutdown().unwrap();
    handle.join().expect("run() must return cleanly after the drain");

    // The tell was answered before the drain closed A — and the answer
    // matches the registry state: applied exactly once, never half.
    let reply = pbo::core::json::parse(&read_line(&mut a_reader)).unwrap();
    assert_eq!(reply.get("ok").and_then(pbo::core::json::Json::as_bool), Some(true));
    assert_eq!(
        reply.get("turn").and_then(pbo::core::json::Json::as_usize),
        Some(turn + 1),
        "tell reply must carry the advanced turn"
    );
    let (status, _) = registry.status("draining").unwrap();
    assert_eq!(status.turn, turn + 1, "registry and reply disagree on the tell");

    // Both connections are closed, not abandoned: EOF, promptly.
    let mut rest = String::new();
    assert_eq!(a_reader.read_to_string(&mut rest).unwrap(), 0, "A must be closed by the drain");
    assert_eq!(c_reader.read_to_string(&mut rest).unwrap(), 0, "idle bystander must be closed");
}

/// Tentpole soak — 64 simultaneous client threads against a 4-worker
/// pool, with an oversize offender driving interleaved create/ask/tell
/// traffic on a damaged connection and a silent connection parked
/// across the whole run. Every session's record must be byte-identical
/// to its in-process `drive --local` reference, and the containment
/// counters must reconcile exactly.
#[test]
fn pooled_soak_64_threaded_clients_are_byte_identical() {
    let config = ServerConfig {
        workers: 4,
        max_conns: 128,
        // Generous: a client thread starved by the scheduler must never
        // be mistaken for an idle offender.
        idle_timeout: Duration::from_secs(60),
        max_line_bytes: 64 * 1024,
        ..ServerConfig::default()
    };
    let server =
        Server::bind_with(Arc::new(Registry::in_memory()), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    // A silent offender, parked for the duration of the soak.
    let (mut idle_reader, _idle_stream) = raw_conn(addr);

    // 64 concurrent drives, each on its own connection and thread.
    let drivers: Vec<std::thread::JoinHandle<(String, String, String)>> = (0..64)
        .map(|i| {
            std::thread::spawn(move || {
                let algorithm = if i % 8 == 0 {
                    AlgorithmKind::KbQEgo
                } else {
                    AlgorithmKind::RandomSearch
                };
                let (p, cfg) = session_cfg(algorithm, 900 + i as u64, 2, 2);
                let id = format!("pool-soak-{i:02}");
                let mut client = Client::connect(addr).unwrap();
                let outcome = drive(&mut client, &id, &cfg, &p, None).unwrap();
                assert!(outcome.done, "{id} did not finish");
                (id, outcome.record.unwrap(), reference_line(&p, &cfg))
            })
        })
        .collect();

    // Meanwhile, the oversize offender: a 256 KiB line against the
    // 64 KiB cap, then a full session on the same damaged connection.
    let mut offender = Client::connect(addr).unwrap();
    let resp = offender.raw(&"z".repeat(256 * 1024)).unwrap();
    assert_eq!(
        resp.get("error").and_then(|e| e.get("code")).and_then(pbo::core::json::Json::as_str),
        Some("line_too_long")
    );
    let (p, cfg) = session_cfg(AlgorithmKind::RandomSearch, 964, 2, 2);
    let outcome = drive(&mut offender, "pool-soak-offender", &cfg, &p, None).unwrap();
    assert_eq!(
        outcome.record.unwrap(),
        reference_line(&p, &cfg),
        "offender's own session diverged"
    );

    for d in drivers {
        let (id, got, want) = d.join().unwrap();
        assert_eq!(got, want, "session {id} was perturbed by pool concurrency");
    }

    // Containment counters reconcile exactly: one oversize line, no
    // busy rejections (128-cap), no idle timeouts (60 s window), and
    // 65 sessions created (64 drivers + the offender's).
    let status = offender.server_status().unwrap();
    assert_eq!(counter(&status, "server.errors.line_too_long"), 1);
    assert_eq!(counter(&status, "server.conns.busy_rejected"), 0);
    assert_eq!(counter(&status, "server.conns.idle_timeout"), 0);
    assert_eq!(counter(&status, "server.sessions.created"), 65);
    assert_eq!(gauge(&status, "server.pool.workers"), 4.0);

    offender.shutdown().unwrap();
    handle.join().unwrap();

    // The drain closed the parked silent connection too.
    let mut rest = String::new();
    assert_eq!(idle_reader.read_to_string(&mut rest).unwrap(), 0, "drain must close idle conns");
}
