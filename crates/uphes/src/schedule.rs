//! Decision-vector encoding: the paper's 12 decision variables.
//!
//! The optimizers work on the unit cube `\[0,1\]^12`. The first 8
//! coordinates choose, per 3-hour energy block, an operating mode and
//! power level — the "mixed-integer in disguise" part of the problem:
//!
//! ```text
//! u ∈ [0.00, 0.40)  →  pump   at −(6 + 2·u/0.4) MW     (draws energy)
//! u ∈ [0.40, 0.55)  →  idle
//! u ∈ [0.55, 1.00]  →  turbine at 4 + 4·(u−0.55)/0.45 MW (sells energy)
//! ```
//!
//! The last 4 coordinates are upward-reserve offers per 6-hour block:
//! `r = 3·u` MW. Those are commitments: if the TSO activates, the unit
//! must raise its net output by the activated fraction of the offer.

use crate::{DECISION_DIM, ENERGY_BLOCKS, RESERVE_BLOCKS, STEPS};

/// Mode-split thresholds of the energy-block encoding.
pub const PUMP_CUT: f64 = 0.40;
/// Upper edge of the idle band.
pub const IDLE_CUT: f64 = 0.55;
/// Maximum reserve offer \[MW\].
pub const MAX_RESERVE: f64 = 3.0;

/// A decoded daily schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Signed block setpoints \[MW\]: > 0 turbine, < 0 pump, 0 idle.
    pub block_power: [f64; ENERGY_BLOCKS],
    /// Reserve offers \[MW\] per reserve block.
    pub reserve: [f64; RESERVE_BLOCKS],
}

impl Schedule {
    /// Decode a unit-cube decision vector. Panics if `x.len() != 12`.
    pub fn decode(x: &[f64]) -> Schedule {
        assert_eq!(x.len(), DECISION_DIM, "decision vector must have 12 entries");
        let mut block_power = [0.0; ENERGY_BLOCKS];
        for (b, p) in block_power.iter_mut().enumerate() {
            *p = decode_block(x[b].clamp(0.0, 1.0));
        }
        let mut reserve = [0.0; RESERVE_BLOCKS];
        for (b, r) in reserve.iter_mut().enumerate() {
            *r = MAX_RESERVE * x[ENERGY_BLOCKS + b].clamp(0.0, 1.0);
        }
        Schedule { block_power, reserve }
    }

    /// Energy-block setpoint active at a quarter-hour step.
    pub fn power_at_step(&self, step: usize) -> f64 {
        debug_assert!(step < STEPS);
        self.block_power[step / (STEPS / ENERGY_BLOCKS)]
    }

    /// Reserve offer active at a quarter-hour step.
    pub fn reserve_at_step(&self, step: usize) -> f64 {
        debug_assert!(step < STEPS);
        self.reserve[step / (STEPS / RESERVE_BLOCKS)]
    }
}

/// Decode one energy coordinate into a signed setpoint.
fn decode_block(u: f64) -> f64 {
    if u < PUMP_CUT {
        -(6.0 + 2.0 * u / PUMP_CUT)
    } else if u < IDLE_CUT {
        0.0
    } else {
        4.0 + 4.0 * (u - IDLE_CUT) / (1.0 - IDLE_CUT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_hits_all_modes() {
        let s = Schedule::decode(&[
            0.0, 0.2, 0.399, 0.45, 0.549, 0.55, 0.8, 1.0, // energy
            0.0, 0.5, 1.0, 0.25, // reserve
        ]);
        assert!((s.block_power[0] + 6.0).abs() < 1e-12);
        assert!(s.block_power[1] < -6.0 && s.block_power[1] > -8.0);
        assert!(s.block_power[2] < -7.9);
        assert_eq!(s.block_power[3], 0.0);
        assert_eq!(s.block_power[4], 0.0);
        assert!((s.block_power[5] - 4.0).abs() < 1e-12);
        assert!(s.block_power[6] > 4.0 && s.block_power[6] < 8.0);
        assert!((s.block_power[7] - 8.0).abs() < 1e-12);
        assert_eq!(s.reserve[0], 0.0);
        assert!((s.reserve[1] - 1.5).abs() < 1e-12);
        assert!((s.reserve[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn setpoints_never_in_the_forbidden_gaps() {
        // The encoding by construction never emits power in (−6, 0) or
        // (0, 4) — those bands are physically unreachable.
        for i in 0..=1000 {
            let u = i as f64 / 1000.0;
            let p = decode_block(u);
            assert!(
                p <= -6.0 || p == 0.0 || p >= 4.0,
                "u={u} decoded into the forbidden gap: {p}"
            );
            assert!((-8.0..=8.0).contains(&p));
        }
    }

    #[test]
    fn step_lookup_uses_right_block() {
        let mut x = [0.45; 12];
        x[0] = 1.0; // block 0 = turbine 8 MW (steps 0..12)
        x[7] = 0.0; // block 7 = pump −6 MW (steps 84..96)
        x[8] = 1.0; // reserve block 0 = 3 MW (steps 0..24)
        let s = Schedule::decode(&x);
        assert!((s.power_at_step(0) - 8.0).abs() < 1e-12);
        assert!((s.power_at_step(11) - 8.0).abs() < 1e-12);
        assert_eq!(s.power_at_step(12), 0.0);
        assert!((s.power_at_step(95) + 6.0).abs() < 1e-12);
        assert!((s.reserve_at_step(23) - 3.0).abs() < 1e-12);
        assert!((s.reserve_at_step(24) - 3.0 * 0.45).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "12 entries")]
    fn wrong_dimension_panics() {
        let _ = Schedule::decode(&[0.5; 5]);
    }

    #[test]
    fn out_of_cube_inputs_are_clamped() {
        let s = Schedule::decode(&[-1.0, 2.0, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 2.0, -3.0, 0.5, 0.5]);
        assert!((s.block_power[0] + 6.0).abs() < 1e-12);
        assert!((s.block_power[1] - 8.0).abs() < 1e-12);
        assert!((s.reserve[0] - 3.0).abs() < 1e-12);
        assert_eq!(s.reserve[1], 0.0);
    }
}
