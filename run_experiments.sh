#!/bin/bash
# Full reproduction sweep. Benchmarks: 2 repetitions; UPHES: 3.
# Run `scripts/ci.sh` first (tier-1 gate: release build + tests with
# warnings denied) before launching a sweep.
set -x
cd /root/repo
R=target/release/repro
mkdir -p results
{
  $R table1; $R table2; $R table3
  $R baseline
  $R table4 --runs 2
  $R table5 --runs 2
  $R table6 --runs 2
  $R uphes --runs 3
} > results/repro_output.txt 2> results/repro_progress.txt
echo DONE
