//! BSP-EGO (Gobert et al. 2020): parallel local acquisition over a
//! binary space partition.
//!
//! Per cycle: fit one **global** model, then run `2q` independent EI
//! maximizations, one per partition cell, *in parallel* (the paper maps
//! two cells per core). The `2q` candidates are sorted by EI and the
//! best `q` are evaluated. The partition then evolves: the cell holding
//! the best candidate is split, the least valuable sibling pair merged.
//!
//! The acquisition clock is charged `serial-time / q` via
//! [`crate::clock::VirtualClock::charge_parallel`] — the parallel
//! acquisition is the method's scalability advantage (Fig. 2, Fig. 9a).

use super::acq_multistart;
use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::partition::BspTree;
use crate::record::RunRecord;
use pbo_acq::single::{optimize_single, ExpectedImprovement};
use pbo_problems::Problem;

/// Drive a prepared engine with BSP-EGO to budget exhaustion.
pub fn drive(mut e: Engine) -> RunRecord {
    let q = e.q();
    let n_cells = (e.cfg().acq.bsp_cells_factor * q).max(2);
    let mut tree = BspTree::new(e.unit_bounds(), n_cells);

    while e.should_continue() {
        e.fit_model();
        let cfg = e.cfg().clone();
        let acq_seed = e.seeds().fork(0xACC).next_seed();
        let gp = e.gp().clone();
        let f_best = gp.best_observed(false);
        let leaves = tree.leaves();
        let cells: Vec<pbo_opt::Bounds> =
            leaves.iter().map(|&l| tree.bounds_of(l).clone()).collect();

        // One local EI maximization per cell, run concurrently; the
        // clock models q workers sharing the 2q sub-problems. The
        // multistart inside each cell is itself parallel-capable, but
        // workers spawned here are marked as inside a parallel region
        // (`pbo_linalg::parallel`), so the nested fan-out degrades to
        // the serial schedule instead of oversubscribing — and stays
        // bit-identical to it by construction.
        let results: Vec<(Vec<f64>, f64, usize)> = e.charge_acquisition(q, || {
            let per_cell = pbo_linalg::parallel::par_map(cells.len(), 1, |k| {
                let ei = ExpectedImprovement { f_best };
                let ms = acq_multistart(&cfg, acq_seed.wrapping_add(k as u64));
                let r = optimize_single(&gp, &ei, &cells[k], &[], &ms);
                (r.x, r.value, r.restart_shortfall)
            });
            let shortfall = per_cell.iter().map(|(_, _, s)| *s).sum();
            (per_cell, shortfall)
        });

        // Per-leaf scores drive the partition evolution.
        let scores: Vec<f64> = results.iter().map(|(_, v, _)| *v).collect();

        // Top-q candidates by EI across all cells.
        let mut order: Vec<usize> = (0..results.len()).collect();
        order.sort_by(|&a, &b| results[b].1.total_cmp(&results[a].1));
        let mut batch: Vec<Vec<f64>> =
            order.iter().take(q).map(|&k| results[k].0.clone()).collect();

        tree.evolve(&leaves, &scores);
        e.sanitize_batch(&mut batch);
        e.commit_batch(batch);
    }
    e.finish()
}

/// Run BSP-EGO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("bsp-ego")
        .build()
        .expect("invalid BSP-EGO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn runs_and_commits_q_per_cycle() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(3, 2).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.n_simulations(), 8 + 6);
        assert_eq!(r.n_cycles(), 3);
    }

    #[test]
    fn parallel_acquisition_is_cheaper_than_kb_in_fixed_cost() {
        // With the Fixed{per_call: 1} model, BSP charges 1/q per cycle
        // for its whole acquisition (one charge_parallel call) while KB
        // charges 1 (one charge call). The recorded acquisition time
        // must reflect the modeled parallelism.
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(2, 4).with_initial_samples(8);
        let bsp = run(&p, budget, AlgoConfig::test_profile(), 5);
        let kb = super::super::kb_qego::run(&p, budget, AlgoConfig::test_profile(), 5);
        let (_, bsp_acq, _) = bsp.time_split();
        let (_, kb_acq, _) = kb.time_split();
        assert!(bsp_acq < kb_acq, "bsp {bsp_acq} vs kb {kb_acq}");
    }

    #[test]
    fn improves_over_initial_design() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 7);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }
}
