//! Parallel, crash-safe experiment orchestration.
//!
//! The paper's evidence is replication grids — many repetitions of
//! (problem × algorithm × batch size) under a wall-clock budget — not
//! single runs. This module turns the repro harness into an
//! orchestrator that scales to those grids:
//!
//! - **Sharding**: the full task list (one task per repetition of every
//!   grid cell) is executed by a deterministic worker pool
//!   ([`pbo_linalg::parallel::par_map_workers`]) — workers pull tasks
//!   dynamically, results are keyed by task index, and every worker
//!   runs inside the parallel-region guard so nested GP/multistart
//!   fan-outs stay sequential (no oversubscription, bit-identical
//!   per-run arithmetic for any `--jobs` count).
//! - **Checkpointing**: each completed run is written atomically
//!   (temp file + rename) under a content-addressed run key — a hash of
//!   the problem, algorithm, batch size, repetition, seed, profile and
//!   budget — as two JSONL lines: a `checkpoint` meta line (valid
//!   against `pbo_core::observe::jsonl::validate_line`) and the
//!   serialized [`RunRecord`]. A campaign killed at any point loses at
//!   most the in-flight runs.
//! - **Resume**: with [`OrchestratorConfig::resume`], tasks whose
//!   checkpoint exists and parses are skipped; corrupt or
//!   stale-schema checkpoints are re-run, never mis-read.
//! - **Pure-fold aggregation**: the grid records handed to the
//!   table/figure writers are *always* re-read from the checkpoint
//!   files, in task order — so artifacts are byte-identical across
//!   worker counts and across interrupted-then-resumed vs uninterrupted
//!   campaigns, and can be rebuilt without re-running anything.
//! - **Observability**: per-cell progress and fault counters surface
//!   through a [`MetricsRegistry`]; `--trace` additionally streams each
//!   run's engine events to a sibling `.trace.jsonl` file.

use crate::grid::{run_seed, ProblemSpec};
use crate::profiles::Profile;
use pbo_core::algorithms::{run_algorithm_observed, run_algorithm_with, AlgorithmKind};
use pbo_core::budget::{Budget, Stopping};
use pbo_core::checkpoint::fnv1a64;
use pbo_core::json::{self, push_str_literal};
use pbo_core::observe::jsonl::JsonlTraceWriter;
use pbo_core::observe::metrics::MetricsRegistry;
use pbo_core::record::{RunRecord, RECORD_SCHEMA_VERSION};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One full (algorithm × batch × repetition) grid on one problem.
#[derive(Debug, Clone)]
pub struct GridPlan {
    /// Problem instance.
    pub problem: ProblemSpec,
    /// Algorithms (paper column order).
    pub algos: Vec<AlgorithmKind>,
    /// Batch sizes.
    pub batches: Vec<usize>,
    /// Repetitions per cell.
    pub runs: usize,
    /// Experiment profile (budget + algorithm configuration).
    pub profile: Profile,
    /// Optional override of the virtual-time budget \[minutes\].
    pub minutes: Option<f64>,
}

impl GridPlan {
    /// The budget of a `q` cell (profile budget + `minutes` override).
    pub fn budget(&self, q: usize) -> Budget {
        let mut b = self.profile.budget(q);
        if let Some(m) = self.minutes {
            b.stopping = Stopping::VirtualTime(m * 60.0);
        }
        b
    }

    /// The full task list in canonical (q-major, then algorithm, then
    /// repetition) order. Aggregation folds checkpoints in exactly this
    /// order, so artifacts never depend on completion order.
    pub fn tasks(&self) -> Vec<RunTask> {
        let mut tasks = Vec::with_capacity(self.batches.len() * self.algos.len() * self.runs);
        for &q in &self.batches {
            for &algo in &self.algos {
                for repetition in 0..self.runs {
                    tasks.push(RunTask {
                        problem: self.problem,
                        algo,
                        q,
                        repetition,
                        seed: run_seed(self.problem, q, repetition),
                    });
                }
            }
        }
        tasks
    }
}

/// One schedulable unit: a single repetition of a grid cell.
#[derive(Debug, Clone, Copy)]
pub struct RunTask {
    /// Problem instance.
    pub problem: ProblemSpec,
    /// Algorithm.
    pub algo: AlgorithmKind,
    /// Batch size.
    pub q: usize,
    /// Repetition index within the cell.
    pub repetition: usize,
    /// Run seed (shared across algorithms; see `grid::run_seed`).
    pub seed: u64,
}

impl RunTask {
    /// Canonical descriptor: every input that determines the run's
    /// result. The run key hashes this string, so any change to the
    /// protocol (profile, budget, seed scheme, schema) changes the key
    /// and stale checkpoints are never silently reused.
    fn descriptor(&self, plan: &GridPlan) -> String {
        let b = plan.budget(self.q);
        let stopping = match b.stopping {
            Stopping::VirtualTime(s) => format!("vt{s:?}"),
            Stopping::Cycles(n) => format!("cy{n}"),
        };
        format!(
            "schema={RECORD_SCHEMA_VERSION};problem={};algo={};q={};rep={};seed={};\
             profile={};stopping={stopping};init={};sim={:?};disp={:?}+{:?}",
            self.problem.name(),
            self.algo.name(),
            self.q,
            self.repetition,
            self.seed,
            plan.profile.name(),
            b.initial_samples,
            b.sim_seconds,
            b.dispatch_overhead,
            b.dispatch_overhead_per_point,
        )
    }

    /// Content-addressed run key: human-readable prefix plus an
    /// FNV-1a-64 digest of the full descriptor.
    pub fn run_key(&self, plan: &GridPlan) -> String {
        format!(
            "{}_q{}_r{}_{:016x}",
            self.algo.name(),
            self.q,
            self.repetition,
            fnv1a64(self.descriptor(plan).as_bytes())
        )
    }

    /// Checkpoint path under `dir` (one subdirectory per problem).
    pub fn checkpoint_path(&self, plan: &GridPlan, dir: &Path) -> PathBuf {
        dir.join(self.problem.name()).join(format!("{}.json", self.run_key(plan)))
    }
}

/// How the orchestrator schedules and persists a grid.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Worker count (`--jobs`); 1 reproduces strictly sequential runs.
    pub jobs: usize,
    /// Skip tasks whose checkpoint already exists and parses.
    pub resume: bool,
    /// Checkpoint root directory.
    pub dir: PathBuf,
    /// Also write one JSONL engine-event trace per run.
    pub trace: bool,
}

impl OrchestratorConfig {
    /// Sequential, non-resuming orchestration into `dir`.
    pub fn sequential(dir: impl Into<PathBuf>) -> Self {
        OrchestratorConfig { jobs: 1, resume: false, dir: dir.into(), trace: false }
    }
}

/// Records of one grid keyed by (algorithm, batch size), repetitions in
/// order — the shape the report layer aggregates.
pub type GridRecords = HashMap<(AlgorithmKind, usize), Vec<RunRecord>>;

/// What [`execute_grid`] did, plus the folded records.
pub struct GridOutcome {
    /// Per-cell run records, re-read from the checkpoint files.
    pub records: GridRecords,
    /// Runs executed in this invocation.
    pub executed: usize,
    /// Runs satisfied from existing checkpoints.
    pub resumed: usize,
}

/// Write one checkpoint atomically: meta line + serialized record into
/// `path.tmp`, then rename over `path`. A crash mid-write leaves no
/// partial checkpoint behind under the final name.
pub fn write_checkpoint(
    path: &Path,
    key: &str,
    profile: Profile,
    record: &RunRecord,
) -> Result<(), String> {
    let mut body = String::with_capacity(256);
    body.push_str("{\"event\":\"checkpoint\",\"schema\":");
    let _ = write!(body, "{RECORD_SCHEMA_VERSION}");
    body.push_str(",\"key\":");
    push_str_literal(&mut body, key);
    body.push_str(",\"algorithm\":");
    push_str_literal(&mut body, &record.algorithm);
    body.push_str(",\"problem\":");
    push_str_literal(&mut body, &record.problem);
    let _ = write!(
        body,
        ",\"q\":{},\"seed\":\"{}\",\"profile\":",
        record.batch_size, record.seed
    );
    push_str_literal(&mut body, profile.name());
    body.push_str("}\n");
    body.push_str(&record.to_json_line());
    body.push('\n');

    pbo_core::checkpoint::atomic_write(path, &body)
        .map_err(|e| format!("checkpoint: {e}"))
}

/// Read and validate one checkpoint. Any structural problem — missing
/// lines, meta/record mismatch, wrong key or schema — is an error; the
/// orchestrator treats an unreadable checkpoint as absent and re-runs.
pub fn read_checkpoint(path: &Path, expected_key: &str) -> Result<RunRecord, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let mut lines = body.lines();
    let meta_line = lines.next().ok_or("empty checkpoint")?;
    let record_line = lines.next().ok_or("checkpoint has no record line")?;
    let meta = json::parse(meta_line).map_err(|e| format!("bad meta line: {e}"))?;
    if meta.get("event").and_then(json::Json::as_str) != Some("checkpoint") {
        return Err("meta line is not a checkpoint event".into());
    }
    match meta.require("schema")?.as_u64() {
        Some(RECORD_SCHEMA_VERSION) => {}
        other => return Err(format!("unsupported checkpoint schema {other:?}")),
    }
    let key = meta.require("key")?.as_str().ok_or("checkpoint key is not a string")?;
    if key != expected_key {
        return Err(format!("checkpoint key mismatch: found {key}, expected {expected_key}"));
    }
    let record = RunRecord::from_json_line(record_line)?;
    if meta.get("q").and_then(json::Json::as_usize) != Some(record.batch_size) {
        return Err("checkpoint meta/record batch-size mismatch".into());
    }
    Ok(record)
}

/// Run every task of `plan` that is not already checkpointed, then fold
/// the checkpoint files into [`GridRecords`].
///
/// `metrics`, when given, receives per-cell completion counters
/// (`orchestrator.cell.<problem>.<algo>.q<q>.completed`), global
/// executed/resumed counters and aggregated fault counters.
pub fn execute_grid(
    plan: &GridPlan,
    cfg: &OrchestratorConfig,
    metrics: Option<&MetricsRegistry>,
) -> Result<GridOutcome, String> {
    let tasks = plan.tasks();
    let problem_dir = cfg.dir.join(plan.problem.name());
    std::fs::create_dir_all(&problem_dir)
        .map_err(|e| format!("cannot create checkpoint dir {}: {e}", problem_dir.display()))?;

    // Phase 1: bring every checkpoint into existence (worker pool).
    let statuses: Vec<Result<bool, String>> =
        pbo_linalg::parallel::par_map_workers(tasks.len(), cfg.jobs, |i| {
            run_task(&tasks[i], plan, cfg)
        });
    let mut executed = 0usize;
    let mut resumed = 0usize;
    let mut errors = Vec::new();
    for s in statuses {
        match s {
            Ok(true) => executed += 1,
            Ok(false) => resumed += 1,
            Err(e) => errors.push(e),
        }
    }
    if !errors.is_empty() {
        return Err(format!("{} run(s) failed; first: {}", errors.len(), errors[0]));
    }

    // Phase 2: pure fold over the checkpoint files, in task order.
    // Fresh and resumed runs alike are re-read from disk, so the
    // aggregation inputs are a function of the checkpoint set only —
    // never of worker count or interruption history.
    let mut records: GridRecords = HashMap::new();
    for t in &tasks {
        let path = t.checkpoint_path(plan, &cfg.dir);
        let rec = read_checkpoint(&path, &t.run_key(plan))
            .map_err(|e| format!("aggregation failed on {}: {e}", path.display()))?;
        records.entry((t.algo, t.q)).or_default().push(rec);
    }

    if let Some(reg) = metrics {
        reg.counter("orchestrator.runs_executed").add(executed as u64);
        reg.counter("orchestrator.runs_resumed").add(resumed as u64);
        for ((algo, q), recs) in &records {
            let name = format!(
                "orchestrator.cell.{}.{}.q{q}.completed",
                plan.problem.name(),
                algo.name()
            );
            reg.counter(&name).add(recs.len() as u64);
            let mut faults = pbo_core::record::FaultCounters::default();
            for r in recs {
                faults.merge(&r.fault_totals());
            }
            if faults.any() {
                let cell = format!("orchestrator.cell.{}.{}.q{q}", plan.problem.name(), algo.name());
                reg.counter(&format!("{cell}.faults.failed_attempts")).add(faults.failed_attempts());
                reg.counter(&format!("{cell}.faults.imputed")).add(faults.imputed);
                reg.counter(&format!("{cell}.faults.dropped")).add(faults.dropped);
            }
        }
    }

    Ok(GridOutcome { records, executed, resumed })
}

/// Execute (or resume) one task. Returns `Ok(true)` when the run was
/// executed, `Ok(false)` when an existing checkpoint satisfied it.
fn run_task(task: &RunTask, plan: &GridPlan, cfg: &OrchestratorConfig) -> Result<bool, String> {
    let key = task.run_key(plan);
    let path = task.checkpoint_path(plan, &cfg.dir);
    if cfg.resume && path.exists() {
        match read_checkpoint(&path, &key) {
            Ok(_) => {
                eprintln!(
                    "[orchestrate] {} {} q={} r={}: resumed from checkpoint",
                    task.problem.name(),
                    task.algo.name(),
                    task.q,
                    task.repetition
                );
                return Ok(false);
            }
            Err(e) => {
                eprintln!(
                    "[orchestrate] {} {} q={} r={}: stale checkpoint ({e}); re-running",
                    task.problem.name(),
                    task.algo.name(),
                    task.q,
                    task.repetition
                );
            }
        }
    }

    let problem = task.problem.build();
    let budget = plan.budget(task.q);
    let algo_cfg = plan.profile.algo_config();
    let t0 = std::time::Instant::now();
    let record = if cfg.trace {
        let trace_path = path.with_extension("trace.jsonl");
        let writer = JsonlTraceWriter::create(&trace_path)
            .map_err(|e| format!("cannot create trace {}: {e}", trace_path.display()))?;
        run_algorithm_observed(task.algo, problem.as_ref(), &budget, algo_cfg, task.seed, writer)
            .map_err(|e| format!("invalid configuration for {key}: {e:?}"))?
    } else {
        run_algorithm_with(task.algo, problem.as_ref(), &budget, algo_cfg, task.seed)
    };
    write_checkpoint(&path, &key, plan.profile, &record)?;
    eprintln!(
        "[orchestrate] {} {} q={} r={}: {} cycles, {} sims in {:.1}s wall (checkpointed)",
        task.problem.name(),
        task.algo.name(),
        task.q,
        task.repetition,
        record.n_cycles(),
        record.n_simulations(),
        t0.elapsed().as_secs_f64(),
    );
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> GridPlan {
        GridPlan {
            problem: ProblemSpec::Ackley,
            algos: vec![AlgorithmKind::RandomSearch, AlgorithmKind::Turbo],
            batches: vec![1, 2],
            runs: 3,
            profile: Profile::Smoke,
            minutes: None,
        }
    }

    #[test]
    fn task_list_is_canonical_and_seeded() {
        let p = plan();
        let tasks = p.tasks();
        assert_eq!(tasks.len(), 2 * 2 * 3);
        // q-major, then algorithm, then repetition.
        assert_eq!((tasks[0].q, tasks[0].repetition), (1, 0));
        assert_eq!(tasks[0].algo, AlgorithmKind::RandomSearch);
        assert_eq!(tasks[3].algo, AlgorithmKind::Turbo);
        assert_eq!(tasks[6].q, 2);
        // Seeds are shared across algorithms within a cell.
        assert_eq!(tasks[0].seed, tasks[3].seed);
        assert_ne!(tasks[0].seed, tasks[1].seed);
    }

    #[test]
    fn run_keys_separate_protocol_changes() {
        let p = plan();
        let t = p.tasks()[0];
        let base = t.run_key(&p);
        let mut fast = p.clone();
        fast.profile = Profile::Fast;
        assert_ne!(base, t.run_key(&fast), "profile must change the run key");
        let mut short = p.clone();
        short.minutes = Some(1.0);
        assert_ne!(base, t.run_key(&short), "budget override must change the run key");
        assert_eq!(base, t.run_key(&plan()), "key is deterministic");
    }

    #[test]
    fn checkpoint_write_read_roundtrip_and_key_check() {
        let dir = std::env::temp_dir().join(format!("pbo-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = plan();
        let t = p.tasks()[0];
        let rec = crate::grid::run_cell(t.problem, t.algo, t.q, 1, p.profile).remove(0);
        let path = dir.join("a.json");
        let key = t.run_key(&p);
        write_checkpoint(&path, &key, p.profile, &rec).unwrap();
        let back = read_checkpoint(&path, &key).unwrap();
        assert_eq!(back.to_json_line(), rec.to_json_line());
        assert!(read_checkpoint(&path, "other-key").is_err());
        // Truncation is detected, not mis-read.
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, body.lines().next().unwrap()).unwrap();
        assert!(read_checkpoint(&path, &key).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
