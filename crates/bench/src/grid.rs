//! Experiment grids: (problem × algorithm × batch size × repetition).

use crate::profiles::Profile;
use pbo_core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo_core::record::RunRecord;
use pbo_problems::{Problem, SyntheticFn, UphesProblem};

/// Which problem instance a grid cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemSpec {
    /// 12-d Rosenbrock (Table 4).
    Rosenbrock,
    /// 12-d Ackley (Table 5).
    Ackley,
    /// 12-d Schwefel (Table 6).
    Schwefel,
    /// UPHES scheduling (Table 7, Figs. 3–9).
    Uphes,
}

/// The fixed "market day" seed of the UPHES instance: the paper runs
/// every algorithm against the same plant and day, varying only the
/// initial designs.
pub const UPHES_DAY_SEED: u64 = 20_220_530;

impl ProblemSpec {
    /// Instantiate the problem.
    pub fn build(self) -> Box<dyn Problem> {
        match self {
            ProblemSpec::Rosenbrock => Box::new(SyntheticFn::rosenbrock(12)),
            ProblemSpec::Ackley => Box::new(SyntheticFn::ackley(12)),
            ProblemSpec::Schwefel => Box::new(SyntheticFn::schwefel(12)),
            ProblemSpec::Uphes => Box::new(UphesProblem::maizeret(UPHES_DAY_SEED)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProblemSpec::Rosenbrock => "rosenbrock",
            ProblemSpec::Ackley => "ackley",
            ProblemSpec::Schwefel => "schwefel",
            ProblemSpec::Uphes => "uphes",
        }
    }

    /// Parse from CLI string.
    pub fn from_name(s: &str) -> Option<ProblemSpec> {
        Some(match s {
            "rosenbrock" => ProblemSpec::Rosenbrock,
            "ackley" => ProblemSpec::Ackley,
            "schwefel" => ProblemSpec::Schwefel,
            "uphes" => ProblemSpec::Uphes,
            _ => return None,
        })
    }

    /// Stable numeric tag, used by the seed derivation and checkpoint
    /// run keys. Never renumber: doing so silently changes every seed
    /// stream.
    pub fn tag(self) -> u64 {
        match self {
            ProblemSpec::Rosenbrock => 1,
            ProblemSpec::Ackley => 2,
            ProblemSpec::Schwefel => 3,
            ProblemSpec::Uphes => 4,
        }
    }

    /// Every problem of the paper's evaluation, in table order.
    pub fn all() -> [ProblemSpec; 4] {
        [
            ProblemSpec::Rosenbrock,
            ProblemSpec::Ackley,
            ProblemSpec::Schwefel,
            ProblemSpec::Uphes,
        ]
    }
}

/// Run one grid cell: `runs` repetitions of (algorithm, q) on the
/// problem. Run seeds are shared across algorithms (same initial sets,
/// as in the paper); they differ across repetitions and batch sizes.
pub fn run_cell(
    spec: ProblemSpec,
    algo: AlgorithmKind,
    q: usize,
    runs: usize,
    profile: Profile,
) -> Vec<RunRecord> {
    let problem = spec.build();
    let budget = profile.budget(q);
    let cfg = profile.algo_config();
    (0..runs)
        .map(|r| {
            let seed = run_seed(spec, q, r);
            run_algorithm_with(algo, problem.as_ref(), &budget, cfg.clone(), seed)
        })
        .collect()
}

/// The splitmix64 finalizer (Steele et al. 2014): a bijection on
/// `u64`, so distinct inputs always map to distinct outputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-repetition seed, independent of the algorithm
/// (every algorithm sees the same initial designs, as in the paper).
///
/// The seed is a splitmix64 bit-mix of the injectively packed cell
/// coordinates `(problem tag, q, repetition)`, so distinct grid cells
/// always receive distinct seeds. The pre-orchestrator additive scheme
/// (`base + q·100 + repetition`) collided — e.g. `(q=1, r=100)` and
/// `(q=2, r=0)` reused the same initial design, corrupting any campaign
/// with ≥ 100 repetitions. Fixing that intentionally broke the old seed
/// streams (see CHANGES.md / EXPERIMENTS.md).
///
/// Panics if `q ≥ 2^16` or `repetition ≥ 2^32` (far beyond any
/// realistic grid) rather than silently wrapping into a collision.
pub fn run_seed(spec: ProblemSpec, q: usize, repetition: usize) -> u64 {
    assert!(q < 1 << 16, "batch size {q} out of seed-packing range");
    assert!(repetition < 1 << 32, "repetition {repetition} out of seed-packing range");
    let packed = (spec.tag() << 48) | ((q as u64) << 32) | repetition as u64;
    splitmix64(packed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_shared_across_algorithms_distinct_across_reps() {
        let a = run_seed(ProblemSpec::Uphes, 4, 0);
        let b = run_seed(ProblemSpec::Uphes, 4, 1);
        assert_ne!(a, b);
        assert_ne!(run_seed(ProblemSpec::Uphes, 2, 0), a);
        assert_ne!(run_seed(ProblemSpec::Ackley, 4, 0), a);
        // run_seed takes no algorithm argument; the same cell always
        // yields the same seed (shared initial designs, as in the
        // paper), so two "algorithms" asking for the cell agree.
        assert_eq!(run_seed(ProblemSpec::Uphes, 4, 0), a);
    }

    /// Regression for the additive-seed collision bug: the realistic
    /// grid (all 4 problems × q ∈ 1..=20 × repetition < 1000) must map
    /// to pairwise-distinct seeds. The old `base + q·100 + repetition`
    /// scheme collided at e.g. (q=1, r=100) vs (q=2, r=0).
    #[test]
    fn seeds_are_injective_over_the_realistic_grid() {
        let mut seen = std::collections::HashSet::new();
        let mut n = 0usize;
        for spec in ProblemSpec::all() {
            for q in 1..=20 {
                for r in 0..1000 {
                    seen.insert(run_seed(spec, q, r));
                    n += 1;
                }
            }
        }
        assert_eq!(seen.len(), n, "seed collision inside the realistic grid");
        // The specific pair the additive scheme collided on:
        assert_ne!(run_seed(ProblemSpec::Uphes, 1, 100), run_seed(ProblemSpec::Uphes, 2, 0));
    }

    #[test]
    fn cell_produces_runs_records() {
        let recs = run_cell(
            ProblemSpec::Ackley,
            AlgorithmKind::RandomSearch,
            2,
            2,
            Profile::Smoke,
        );
        assert_eq!(recs.len(), 2);
        for r in &recs {
            assert_eq!(r.batch_size, 2);
            assert_eq!(r.problem, "ackley-12d");
        }
    }
}
