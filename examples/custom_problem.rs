//! Bring your own simulator: implement [`pbo::problems::Problem`] for a
//! custom black-box objective and optimize it with TuRBO.
//!
//! The example models a small "press shop" scheduling toy: allocate
//! production intensity over 6 shifts to maximize throughput minus
//! wear-induced maintenance, with a non-smooth penalty when consecutive
//! shifts both run hot — the kind of mildly nasty landscape BO handles
//! gracefully.
//!
//! ```text
//! cargo run --release --example custom_problem
//! ```

use pbo::core::algorithms::{run_algorithm, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::problems::Problem;

/// Allocate intensity `x_i ∈ [0, 1]` over 6 shifts.
struct PressShop {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PressShop {
    fn new() -> Self {
        PressShop { lower: vec![0.0; 6], upper: vec![1.0; 6] }
    }
}

impl Problem for PressShop {
    fn name(&self) -> &str {
        "press-shop"
    }
    fn dim(&self) -> usize {
        6
    }
    fn lower(&self) -> &[f64] {
        &self.lower
    }
    fn upper(&self) -> &[f64] {
        &self.upper
    }
    fn maximize(&self) -> bool {
        true
    }
    fn eval(&self, x: &[f64]) -> f64 {
        // Diminishing-returns throughput per shift.
        let throughput: f64 = x.iter().map(|&v| 10.0 * v.sqrt()).sum();
        // Wear cost is convex in intensity.
        let wear: f64 = x.iter().map(|&v| 6.0 * v * v).sum();
        // Non-smooth overheat penalty on consecutive hot shifts.
        let overheat: f64 = x
            .windows(2)
            .map(|w| if w[0] > 0.7 && w[1] > 0.7 { 8.0 * (w[0] + w[1] - 1.4) } else { 0.0 })
            .sum();
        throughput - wear - overheat
    }
}

fn main() {
    let problem = PressShop::new();
    // A shorter engagement than the paper's: 24 cycles of 2 candidates.
    let budget = Budget::cycles(24, 2).with_initial_samples(16);
    let record = run_algorithm(AlgorithmKind::Turbo, &problem, &budget, 11);

    println!("best profit found : {:.3}", record.best_y());
    println!("best allocation   : {:?}", record.best_x.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>());
    println!("simulations used  : {}", record.n_simulations());

    // Sanity reference: the unconstrained per-shift optimum of
    // 10√v − 6v² is at v ≈ 0.66 (below the overheat threshold), profit
    // ≈ 5.53/shift. TuRBO should land near 6 × 5.53 ≈ 33.2.
    println!("analytic ballpark : 33.2");
}
