//! Zero-allocation proof for the single-point posterior hot path.
//!
//! A counting global allocator pins the PR's acceptance criterion:
//! after workspace warm-up, `predict_with` and `posterior_parts_with`
//! must not touch the heap at all. This file holds exactly one test so
//! no concurrent test thread can pollute the counter.

use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::{GaussianProcess, PredictWorkspace};
use pbo_linalg::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Per-thread counter: the libtest harness allocates concurrently on its
// own threads, so a process-global count would be flaky. Const-init so
// the first access inside `alloc` itself cannot recurse.
thread_local! {
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

fn thread_allocs() -> usize {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn fitted_gp(n: usize, d: usize) -> GaussianProcess {
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..d {
            let v = (((i * d + j) as f64) * 0.61803).fract();
            x[(i, j)] = v;
            s += (v - 0.4) * (v - 0.4);
        }
        y.push(s + (3.0 * x[(i, 0)]).sin());
    }
    let mut kernel = Kernel::new(KernelType::Matern52, d);
    kernel.lengthscales = vec![0.4; d];
    GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
}

#[test]
fn single_point_posterior_path_is_allocation_free_after_warmup() {
    let gp = fitted_gp(64, 6);
    let mut ws = PredictWorkspace::new();
    let queries: Vec<[f64; 6]> = (0..32)
        .map(|i| {
            let mut q = [0.0; 6];
            for (j, v) in q.iter_mut().enumerate() {
                *v = (((i * 6 + j) as f64) * 0.321).fract();
            }
            q
        })
        .collect();

    // Warm-up sizes every workspace buffer.
    let (m0, v0) = gp.predict_with(&queries[0], &mut ws);
    let (ms0, vs0) = gp.posterior_parts_with(&queries[0], &mut ws);
    assert!(m0.is_finite() && v0 > 0.0 && ms0.is_finite() && vs0 > 0.0);

    let before = thread_allocs();
    let mut acc = 0.0;
    for q in &queries {
        let (m, v) = gp.predict_with(q, &mut ws);
        let (ms, vs) = gp.posterior_parts_with(q, &mut ws);
        acc += m + v + ms + vs;
    }
    let after = thread_allocs();
    assert!(acc.is_finite());
    assert_eq!(
        after - before,
        0,
        "single-point posterior path allocated {} times over {} calls",
        after - before,
        2 * queries.len()
    );
}
