//! Deterministic fault injection for batch evaluation.
//!
//! The paper's evaluation layer is an MPI worker pool driving a licensed
//! ~10 s simulator on a shared cluster node; crashed ranks, garbage
//! outputs and stragglers are operating conditions, not exceptions. This
//! module lets any [`Problem`] be wrapped in a [`FaultyProblem`] that
//! injects exactly those failure modes — worker panics, NaN/Inf results
//! and virtual-time straggler delays — *deterministically* from the
//! run's SplitMix64 seed stream.
//!
//! Determinism contract: whether an evaluation faults depends only on
//! `(plan seed, bit pattern of x, attempt index for that x)`. It does
//! **not** depend on thread scheduling, worker count or the order in
//! which batch elements are drained, so the same run seed replays the
//! same faults regardless of the host machine — the property the
//! cross-crate determinism suite (`tests/determinism.rs`) pins down.
//!
//! Injection happens only on the executor-facing
//! [`Problem::eval_effect`] surface; the plain [`Problem::eval`] is
//! forwarded untouched so that reporting paths (schedule decoding,
//! detailed breakdowns) always see the clean objective.

use crate::{EvalEffect, Problem};
use pbo_sampling::seed::derive;
use std::collections::HashMap;
use std::sync::Mutex;

/// Panic payload used for injected worker crashes. The fault-tolerant
/// executor catches any payload; this marker type lets
/// [`silence_injected_panics`] suppress the default panic-hook noise
/// for *injected* crashes only.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic;

/// Install a panic hook that stays silent for [`InjectedPanic`]
/// payloads and delegates every real panic to the previously installed
/// hook. Idempotent enough for test use (each call chains the current
/// hook). Call once at the top of tests that inject panics.
pub fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_none() {
            prev(info);
        }
    }));
}

/// What one injected fault does to an evaluation attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Healthy evaluation.
    None,
    /// The worker panics mid-simulation (crashed MPI rank).
    Panic,
    /// The simulator returns NaN (diverged numerics).
    Nan,
    /// The simulator returns +Inf in minimized orientation (solver
    /// blow-up).
    Inf,
    /// The worker straggles: the result is correct but arrives after
    /// this many extra virtual seconds.
    Straggle(f64),
}

/// A seeded, deterministic fault-injection plan.
///
/// Probabilities are per evaluation *attempt* and mutually exclusive
/// (checked against disjoint sub-intervals of one uniform draw), so
/// `p_panic + p_nan + p_inf + p_straggle` must stay ≤ 1.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the fault stream (fork it from the run's master seed).
    pub seed: u64,
    /// Probability an attempt panics.
    pub p_panic: f64,
    /// Probability an attempt returns NaN.
    pub p_nan: f64,
    /// Probability an attempt returns an infinite value.
    pub p_inf: f64,
    /// Probability an attempt straggles.
    pub p_straggle: f64,
    /// Maximum straggler delay \[virtual seconds\]; the actual delay is
    /// uniform in `(0, max_straggle_secs]`.
    pub max_straggle_secs: f64,
}

impl FaultPlan {
    /// A plan with total fault rate `rate`, split evenly across the
    /// four fault kinds, with 30-virtual-second worst-case stragglers.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        let p = rate / 4.0;
        FaultPlan {
            seed,
            p_panic: p,
            p_nan: p,
            p_inf: p,
            p_straggle: p,
            max_straggle_secs: 30.0,
        }
    }

    /// A plan that never faults (identity wrapper; useful to prove the
    /// zero-fault path is bit-identical to the plain executor).
    pub fn none(seed: u64) -> Self {
        FaultPlan { seed, p_panic: 0.0, p_nan: 0.0, p_inf: 0.0, p_straggle: 0.0, max_straggle_secs: 0.0 }
    }

    /// Decide the fault for `(x-hash, attempt)`. Pure function of the
    /// plan seed and its arguments.
    pub fn decide(&self, x_hash: u64, attempt: u32) -> FaultKind {
        let per_point = derive(self.seed, x_hash);
        let draw = derive(per_point, attempt as u64 + 1);
        let u = (draw >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = self.p_panic;
        if u < edge {
            return FaultKind::Panic;
        }
        edge += self.p_nan;
        if u < edge {
            return FaultKind::Nan;
        }
        edge += self.p_inf;
        if u < edge {
            return FaultKind::Inf;
        }
        edge += self.p_straggle;
        if u < edge {
            // Independent uniform draw for the delay magnitude, kept
            // strictly positive so a straggle is always observable.
            let d = derive(per_point, (attempt as u64 + 1) | 1 << 63);
            let frac = ((d >> 11) as f64 / (1u64 << 53) as f64).max(1e-9);
            return FaultKind::Straggle(frac * self.max_straggle_secs);
        }
        FaultKind::None
    }
}

/// Order-independent hash of a point's exact bit pattern (FNV-1a over
/// the coordinate bits).
pub fn point_hash(x: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in x {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Tally of the faults a [`FaultyProblem`] actually injected — the
/// ground truth the engine's fault counters must reconcile against.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InjectionLog {
    /// Injected worker panics.
    pub panics: u64,
    /// Injected NaN results.
    pub nans: u64,
    /// Injected infinite results.
    pub infs: u64,
    /// Injected straggler delays.
    pub straggles: u64,
    /// Total injected straggler delay \[virtual seconds\].
    pub straggle_secs: f64,
}

impl InjectionLog {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.panics + self.nans + self.infs + self.straggles
    }
}

/// A [`Problem`] wrapper injecting the faults of a [`FaultPlan`] into
/// the executor-facing [`Problem::eval_effect`] surface.
///
/// Retries of the same point see increasing attempt indices (tracked
/// per exact bit pattern), so a point that faults once is not doomed to
/// fault forever — matching a cluster where resubmitting a failed rank
/// usually succeeds.
pub struct FaultyProblem<'a> {
    inner: &'a dyn Problem,
    plan: FaultPlan,
    name: String,
    attempts: Mutex<HashMap<u64, u32>>,
    log: Mutex<InjectionLog>,
}

impl<'a> FaultyProblem<'a> {
    /// Wrap `inner` with the given plan.
    pub fn new(inner: &'a dyn Problem, plan: FaultPlan) -> Self {
        FaultyProblem {
            name: format!("{}+faults", inner.name()),
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            log: Mutex::new(InjectionLog::default()),
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of everything injected so far.
    pub fn injection_log(&self) -> InjectionLog {
        *self.log.lock().unwrap()
    }

    /// Forget attempt history and injections (fresh run on the same
    /// wrapper).
    pub fn reset(&self) {
        self.attempts.lock().unwrap().clear();
        *self.log.lock().unwrap() = InjectionLog::default();
    }
}

impl Problem for FaultyProblem<'_> {
    fn name(&self) -> &str {
        &self.name
    }
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn lower(&self) -> &[f64] {
        self.inner.lower()
    }
    fn upper(&self) -> &[f64] {
        self.inner.upper()
    }
    fn eval(&self, x: &[f64]) -> f64 {
        self.inner.eval(x)
    }
    fn maximize(&self) -> bool {
        self.inner.maximize()
    }
    fn optimum(&self) -> Option<f64> {
        self.inner.optimum()
    }

    fn eval_effect(&self, x: &[f64]) -> EvalEffect {
        let h = point_hash(x);
        let attempt = {
            let mut map = self.attempts.lock().unwrap();
            let slot = map.entry(h).or_insert(0);
            let a = *slot;
            *slot += 1;
            a
        };
        let fault = self.plan.decide(h, attempt);
        {
            let mut log = self.log.lock().unwrap();
            match fault {
                FaultKind::Panic => log.panics += 1,
                FaultKind::Nan => log.nans += 1,
                FaultKind::Inf => log.infs += 1,
                FaultKind::Straggle(d) => {
                    log.straggles += 1;
                    log.straggle_secs += d;
                }
                FaultKind::None => {}
            }
        }
        match fault {
            FaultKind::Panic => std::panic::panic_any(InjectedPanic),
            FaultKind::Nan => EvalEffect { value: f64::NAN, extra_virtual_secs: 0.0 },
            FaultKind::Inf => {
                // Infinite in *minimized* orientation regardless of the
                // problem's native orientation.
                let v = if self.inner.maximize() { f64::NEG_INFINITY } else { f64::INFINITY };
                EvalEffect { value: v, extra_virtual_secs: 0.0 }
            }
            FaultKind::Straggle(d) => {
                EvalEffect { value: self.inner.eval(x), extra_virtual_secs: d }
            }
            FaultKind::None => self.inner.eval_effect(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticFn;

    #[test]
    fn decisions_are_deterministic_and_attempt_dependent() {
        let plan = FaultPlan::uniform(9, 0.5);
        let h = point_hash(&[0.25, 0.5]);
        for attempt in 0..16 {
            assert_eq!(plan.decide(h, attempt), plan.decide(h, attempt));
        }
        // Across many attempts the decision must not be constant (else
        // retries could never succeed).
        let kinds: Vec<FaultKind> = (0..64).map(|a| plan.decide(h, a)).collect();
        assert!(kinds.iter().any(|k| *k == FaultKind::None));
        assert!(kinds.iter().any(|k| *k != FaultKind::None));
    }

    #[test]
    fn zero_rate_plan_never_faults() {
        let plan = FaultPlan::none(3);
        let p = SyntheticFn::ackley(3);
        let w = FaultyProblem::new(&p, plan);
        for i in 0..50 {
            let x = vec![0.01 * i as f64; 3];
            let e = w.eval_effect(&x);
            assert_eq!(e.value, p.eval(&x));
            assert_eq!(e.extra_virtual_secs, 0.0);
        }
        assert_eq!(w.injection_log(), InjectionLog::default());
    }

    #[test]
    fn injection_rate_roughly_matches_plan() {
        let plan = FaultPlan::uniform(11, 0.2);
        let p = SyntheticFn::ackley(2);
        let w = FaultyProblem::new(&p, plan);
        let n = 2000;
        for i in 0..n {
            let x = vec![i as f64 * 1e-3, 0.5];
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.eval_effect(&x)));
        }
        let log = w.injection_log();
        let rate = log.total() as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.05, "observed fault rate {rate}");
        // Even split across kinds (loose bounds: n·p = 100 per kind).
        for c in [log.panics, log.nans, log.infs, log.straggles] {
            assert!((30..=170).contains(&(c as usize)), "kind count {c}");
        }
        assert!(log.straggle_secs > 0.0);
    }

    #[test]
    fn plain_eval_surface_stays_clean() {
        let plan = FaultPlan { p_panic: 0.0, ..FaultPlan::uniform(5, 1.0) };
        let p = SyntheticFn::rosenbrock(2);
        let w = FaultyProblem::new(&p, plan);
        let x = vec![0.3, 0.7];
        // eval() never faults; eval_effect() with an all-fault plan
        // always does (NaN/Inf/straggle here, p_panic zeroed).
        assert_eq!(w.eval(&x), p.eval(&x));
        assert!(w.plan().p_nan > 0.0);
    }

    #[test]
    fn attempts_advance_per_point() {
        // With a plan that faults on attempt parity for some point, two
        // successive eval_effect calls on the same x must see different
        // attempt indices — observable through the log totals.
        let plan = FaultPlan { p_nan: 1.0, ..FaultPlan::none(1) };
        let p = SyntheticFn::ackley(2);
        let w = FaultyProblem::new(&p, plan);
        let x = vec![0.1, 0.9];
        let _ = w.eval_effect(&x);
        let _ = w.eval_effect(&x);
        assert_eq!(w.injection_log().nans, 2);
        w.reset();
        assert_eq!(w.injection_log().nans, 0);
    }

    #[test]
    fn maximizer_inf_fault_is_pessimal() {
        let plan = FaultPlan { p_inf: 1.0, ..FaultPlan::none(2) };
        let p = crate::UphesProblem::maizeret(3);
        let w = FaultyProblem::new(&p, plan);
        let e = w.eval_effect(&[0.5; 12]);
        // Native maximization → −∞ profit, i.e. +∞ once minimized.
        assert_eq!(e.value, f64::NEG_INFINITY);
    }
}
