//! The TCP daemon: a bounded worker pool, newline-delimited JSON.
//!
//! Failure containment is the design rule: a malformed line answers a
//! typed error and the connection lives on; a session-layer error
//! answers a typed error and the *session* lives on; a dropped, idle
//! or hostile connection costs at most one worker visit. The accept
//! loop ends on a `shutdown` request — which *drains* in-flight
//! requests and joins every worker before [`Server::run`] returns —
//! or on the process being killed, which is exactly what the
//! crash/restart conformance suite does.
//!
//! ## Concurrency model (DESIGN.md §14)
//!
//! One acceptor (the thread inside `run`) feeds accepted sockets into
//! a bounded queue served by a fixed pool of `workers` connection
//! workers. Connections are *rotated*, not owned: a worker pops a
//! connection, serves every request already buffered on it (up to a
//! fairness budget), and requeues it — so N workers multiplex M ≫ N
//! live connections without a thread per connection. Containment:
//!
//! - **Backpressure**: past `max_conns` live connections the acceptor
//!   answers a typed `server_busy` error and closes — never a silent
//!   stall, never an unbounded thread spawn.
//! - **Idle timeout**: a connection with no complete request for
//!   `idle_timeout` is answered a typed `idle_timeout` error and
//!   closed, freeing its slot.
//! - **Line cap**: a request line exceeding `max_line_bytes` is
//!   answered a typed `line_too_long` error; the oversized line is
//!   discarded as it streams in (bounded memory) and the connection
//!   stays usable.
//! - **Slow reader**: reply writes carry a write timeout; a peer that
//!   stops reading is disconnected instead of pinning a worker.
//!
//! Scheduling can never perturb a session trajectory: every session
//! transition runs under that session's own lock in the registry and
//! depends only on the session's journal — which worker ran it, and
//! in what order relative to *other* sessions' requests, is invisible
//! to the state machine (the conformance soak pins this).

use crate::proto::{parse_request, ErrorBody, Request, RequestErrorKind};
use crate::registry::Registry;
use pbo_core::json::{push_f64_lossless, push_str_literal};
use pbo_core::observe::metrics::{Counter, Gauge};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Requests served on one connection per worker visit before it is
/// requeued behind its peers (fairness under load).
const VISIT_LINE_BUDGET: usize = 32;

/// Bytes consumed from one connection per worker visit before it is
/// requeued (bounds how long a streaming client can hold a worker).
const VISIT_BYTE_BUDGET: usize = 256 * 1024;

/// Read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// How long an unproductive worker sleeps between queue rotations once
/// it has seen every queued connection yield nothing.
const ROTATION_PAUSE: Duration = Duration::from_millis(1);

/// Pool sizing and containment limits for a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Connection workers (≥ 1). Default: available parallelism.
    pub workers: usize,
    /// A connection with no complete request for this long is answered
    /// a typed `idle_timeout` error and closed. Also bounds how long a
    /// reply write may block on a non-reading peer.
    pub idle_timeout: Duration,
    /// Request lines beyond this many bytes are answered a typed
    /// `line_too_long` error and discarded (bounded memory).
    pub max_line_bytes: usize,
    /// Live-connection cap: connections accepted past it are answered
    /// a typed `server_busy` error and closed.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        ServerConfig {
            workers,
            idle_timeout: Duration::from_secs(300),
            max_line_bytes: 1 << 20,
            max_conns: workers.max(1) * 64,
        }
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    registry: Arc<Registry>,
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    /// The bound address.
    pub addr: SocketAddr,
    handle: JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Wait for the daemon to exit (after a `shutdown` request).
    /// A panicked server thread is a typed [`std::io::Error`], not a
    /// propagated panic — the supervising caller stays alive to log,
    /// restart or fail over.
    pub fn join(self) -> std::io::Result<()> {
        match self.handle.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port; read the real
    /// one back from [`Server::local_addr`]) with default
    /// [`ServerConfig`].
    pub fn bind(registry: Arc<Registry>, addr: &str) -> std::io::Result<Server> {
        Server::bind_with(registry, addr, ServerConfig::default())
    }

    /// Bind with an explicit pool configuration.
    pub fn bind_with(
        registry: Arc<Registry>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            registry,
            listener,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a `shutdown` request arrives, then drain: stop
    /// accepting, answer every in-flight request, close every
    /// connection and join every worker. Blocking; when it returns, no
    /// worker thread survives.
    pub fn run(self) -> std::io::Result<()> {
        let pool = Arc::new(Pool::new(
            self.registry,
            self.addr,
            self.shutdown.clone(),
            self.config.clone(),
        ));
        let workers: Vec<JoinHandle<()>> = (0..self.config.workers.max(1))
            .map(|i| {
                let pool = pool.clone();
                std::thread::Builder::new()
                    .name(format!("pbo-conn-worker-{i}"))
                    .spawn(move || worker_loop(&pool))
            })
            .collect::<std::io::Result<_>>()?;

        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            pool.accepted.inc();
            if pool.live.load(Ordering::SeqCst) >= self.config.max_conns.max(1) {
                pool.busy_rejected.inc();
                reject_busy(stream, self.config.max_conns);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            pool.live.fetch_add(1, Ordering::SeqCst);
            pool.live_gauge.set(pool.live.load(Ordering::SeqCst) as f64);
            let conn = Conn {
                stream,
                buf: Vec::new(),
                scanned: 0,
                discard: false,
                idle_deadline: Instant::now() + self.config.idle_timeout,
            };
            pool.push(conn);
        }

        // Drain: wake every worker so each one empties its share of
        // the queue (answering buffered requests) and exits.
        self.shutdown.store(true, Ordering::SeqCst);
        pool.ready.notify_all();
        let mut worker_panicked = false;
        for w in workers {
            worker_panicked |= w.join().is_err();
        }
        if worker_panicked {
            return Err(std::io::Error::other("a connection worker panicked"));
        }
        Ok(())
    }

    /// Serve on a background thread; returns once the socket accepts.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let handle = std::thread::spawn(move || self.run());
        ServerHandle { addr, handle }
    }
}

/// Best-effort `server_busy` refusal on a just-accepted socket.
fn reject_busy(mut stream: TcpStream, max_conns: usize) {
    let body = ErrorBody::request(
        RequestErrorKind::ServerBusy,
        format!("connection limit ({max_conns}) reached; retry shortly"),
    );
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut line = body.to_line();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// One live connection, rotated through the worker queue. `buf` holds
/// bytes received but not yet parsed into a complete line; `scanned`
/// marks the prefix already known newline-free (no re-scans).
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    scanned: usize,
    discard: bool,
    idle_deadline: Instant,
}

/// State shared by the acceptor and every connection worker.
struct Pool {
    registry: Arc<Registry>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    live: AtomicUsize,
    live_gauge: Arc<Gauge>,
    queue_gauge: Arc<Gauge>,
    accepted: Arc<Counter>,
    busy_rejected: Arc<Counter>,
    idle_timeouts: Arc<Counter>,
    oversize: Arc<Counter>,
    write_timeouts: Arc<Counter>,
}

impl Pool {
    fn new(
        registry: Arc<Registry>,
        addr: SocketAddr,
        shutdown: Arc<AtomicBool>,
        cfg: ServerConfig,
    ) -> Pool {
        let m = registry.metrics().clone();
        m.gauge("server.pool.workers").set(cfg.workers.max(1) as f64);
        Pool {
            addr,
            shutdown,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            live: AtomicUsize::new(0),
            live_gauge: m.gauge("server.conns.live"),
            queue_gauge: m.gauge("server.queue.depth"),
            accepted: m.counter("server.conns.accepted"),
            busy_rejected: m.counter("server.conns.busy_rejected"),
            idle_timeouts: m.counter("server.conns.idle_timeout"),
            oversize: m.counter("server.errors.line_too_long"),
            write_timeouts: m.counter("server.conns.write_timeout"),
            registry,
        }
    }

    fn push(&self, conn: Conn) {
        let mut q = self.queue.lock().expect("connection queue poisoned");
        q.push_back(conn);
        self.queue_gauge.set(q.len() as f64);
        drop(q);
        self.ready.notify_one();
    }

    /// Pop the next connection; `None` once shutdown is flagged and
    /// the queue is empty (the worker's exit signal).
    fn pop(&self) -> Option<Conn> {
        let mut q = self.queue.lock().expect("connection queue poisoned");
        loop {
            if let Some(conn) = q.pop_front() {
                self.queue_gauge.set(q.len() as f64);
                return Some(conn);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(q, Duration::from_millis(50))
                .expect("connection queue poisoned");
            q = guard;
        }
    }

    fn queue_len(&self) -> usize {
        self.queue.lock().expect("connection queue poisoned").len()
    }

    fn close(&self, conn: Conn) {
        drop(conn);
        self.live.fetch_sub(1, Ordering::SeqCst);
        self.live_gauge.set(self.live.load(Ordering::SeqCst) as f64);
    }
}

/// What one worker visit decided about a connection.
enum Visit {
    /// Still healthy: requeue (or close, during drain). `productive`
    /// is whether any request was served — the rotation-pacing signal.
    Keep { productive: bool },
    /// Peer closed, errored, idled out or stalled: drop it.
    Close,
    /// This connection requested `shutdown` (reply already sent).
    Stop,
}

fn worker_loop(pool: &Pool) {
    let mut streak = 0usize; // consecutive unproductive visits
    while let Some(mut conn) = pool.pop() {
        let draining = pool.shutdown.load(Ordering::SeqCst);
        match serve_visit(pool, &mut conn, draining) {
            Visit::Keep { productive } => {
                if draining {
                    // Buffered requests were just answered; drain ends
                    // the connection rather than requeueing it.
                    pool.close(conn);
                } else {
                    pool.push(conn);
                    if productive {
                        streak = 0;
                    } else {
                        streak += 1;
                        // Every queued connection yielded nothing this
                        // rotation: pause instead of spinning.
                        if streak >= pool.queue_len().max(1) {
                            streak = 0;
                            std::thread::sleep(ROTATION_PAUSE);
                        }
                    }
                }
            }
            Visit::Close => pool.close(conn),
            Visit::Stop => {
                pool.close(conn);
                pool.shutdown.store(true, Ordering::SeqCst);
                pool.ready.notify_all();
                // Unblock the acceptor so it observes the flag.
                let _ = TcpStream::connect(pool.addr);
            }
        }
    }
}

/// Serve one worker visit on `conn`: answer every complete line already
/// received (plus whatever arrives while reading), within the fairness
/// budgets. Never blocks on reads — the socket is non-blocking; reply
/// writes carry a timeout.
fn serve_visit(pool: &Pool, conn: &mut Conn, draining: bool) -> Visit {
    let mut productive = false;
    let mut lines = 0usize;
    let mut bytes = 0usize;
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        // Answer every complete line currently buffered.
        while let Some(at) = conn.buf[conn.scanned..].iter().position(|&b| b == b'\n') {
            let pos = conn.scanned + at;
            let line: Vec<u8> = conn.buf.drain(..=pos).collect();
            conn.scanned = 0;
            if conn.discard {
                // Tail of an oversized line: the error was already
                // answered when the cap tripped; swallow the rest.
                conn.discard = false;
                continue;
            }
            // A whole line can slip past the partial-line cap below if
            // it arrives (newline included) within one read burst, so
            // the cap is also enforced per complete line.
            if line.len() - 1 > pool.cfg.max_line_bytes {
                pool.oversize.inc();
                let e = ErrorBody::request(
                    RequestErrorKind::LineTooLong,
                    format!("request line exceeds {} bytes", pool.cfg.max_line_bytes),
                );
                if write_reply(pool, conn, &e.to_line()).is_err() {
                    return Visit::Close;
                }
                continue;
            }
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            if text.trim().is_empty() {
                continue;
            }
            let (response, stop) = dispatch(&pool.registry, &text);
            if write_reply(pool, conn, &response).is_err() {
                return Visit::Close;
            }
            if stop {
                return Visit::Stop;
            }
            productive = true;
            conn.idle_deadline = Instant::now() + pool.cfg.idle_timeout;
            lines += 1;
            if lines >= VISIT_LINE_BUDGET {
                return Visit::Keep { productive };
            }
        }
        conn.scanned = conn.buf.len();

        // Cap the partial line: answer the typed error once, then
        // discard the stream until its newline (bounded memory).
        if conn.discard {
            conn.buf.clear();
            conn.scanned = 0;
        } else if conn.buf.len() > pool.cfg.max_line_bytes {
            pool.oversize.inc();
            let e = ErrorBody::request(
                RequestErrorKind::LineTooLong,
                format!("request line exceeds {} bytes", pool.cfg.max_line_bytes),
            );
            if write_reply(pool, conn, &e.to_line()).is_err() {
                return Visit::Close;
            }
            conn.discard = true;
            conn.buf.clear();
            conn.scanned = 0;
        }

        if bytes >= VISIT_BYTE_BUDGET {
            return Visit::Keep { productive };
        }

        match conn.stream.read(&mut chunk) {
            Ok(0) => return Visit::Close,
            Ok(n) => {
                bytes += n;
                conn.buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if !draining && Instant::now() >= conn.idle_deadline {
                    pool.idle_timeouts.inc();
                    let e = ErrorBody::request(
                        RequestErrorKind::IdleTimeout,
                        format!(
                            "no request for {:?}; closing idle connection",
                            pool.cfg.idle_timeout
                        ),
                    );
                    let _ = write_reply(pool, conn, &e.to_line());
                    return Visit::Close;
                }
                return Visit::Keep { productive };
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Visit::Close,
        }
    }
}

/// Write one reply line with a bounded write timeout, so a peer that
/// stops reading cannot pin a worker. Restores non-blocking mode.
fn write_reply(pool: &Pool, conn: &mut Conn, response: &str) -> std::io::Result<()> {
    conn.stream.set_nonblocking(false)?;
    conn.stream.set_write_timeout(Some(pool.cfg.idle_timeout))?;
    let result = conn
        .stream
        .write_all(response.as_bytes())
        .and_then(|()| conn.stream.write_all(b"\n"))
        .and_then(|()| conn.stream.flush());
    if let Err(e) = &result {
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            pool.write_timeouts.inc();
        }
    }
    conn.stream.set_nonblocking(true)?;
    result
}

/// Serve one request line; returns the response line and whether the
/// daemon should stop. Never panics on client input.
pub fn dispatch(registry: &Registry, line: &str) -> (String, bool) {
    let (proto, request) = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            registry.metrics().counter("server.errors.protocol").inc();
            return (e.to_line(), false);
        }
    };
    let result: Result<String, ErrorBody> = match request {
        Request::Create { id, config } => {
            // A v1 client could create a variable-q session but never
            // learn each cycle's batch size; refuse up front.
            if proto < 2 && config.algorithm.is_variable_q() {
                Err(needs_proto_2(config.algorithm.name()))
            } else {
                registry.create(&id, config).map(|r| {
                    let mut out = ok_head();
                    out.push_str(",\"id\":");
                    push_str_literal(&mut out, &id);
                    out.push_str(",\"key\":");
                    push_str_literal(&mut out, &r.key);
                    let _ = write!(out, ",\"created\":{},\"turn\":{}}}", r.created, r.turn);
                    out
                })
            }
        }
        Request::Ask { id } => {
            // The session may predate this connection (created by a v2
            // client, asked by a v1 one), so the gate re-checks here.
            let gate = if proto < 2 {
                registry.variable_q(&id).and_then(|variable| {
                    if variable {
                        Err(needs_proto_2(&format!("session '{id}'")))
                    } else {
                        Ok(())
                    }
                })
            } else {
                Ok(())
            };
            gate.and_then(|()| registry.ask(&id)).map(|r| {
                let mut out = ok_head();
                let _ = write!(out, ",\"turn\":{},", r.turn);
                if proto >= 2 {
                    let _ = write!(out, "\"q\":{},", r.q);
                }
                out.push_str("\"points\":[");
                for (i, p) in r.points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (j, v) in p.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        push_f64_lossless(&mut out, *v);
                    }
                    out.push(']');
                }
                out.push_str("]}");
                out
            })
        }
        Request::Tell { id, turn, values } => registry.tell(&id, turn, &values).map(|r| {
            let mut out = ok_head();
            let _ = write!(out, ",\"turn\":{},\"done\":{}}}", r.turn, r.done);
            out
        }),
        Request::Status { id } => registry.status(&id).map(|(s, key)| {
            let mut out = ok_head();
            out.push_str(",\"id\":");
            push_str_literal(&mut out, &id);
            out.push_str(",\"phase\":");
            push_str_literal(&mut out, s.phase);
            let _ = write!(
                out,
                ",\"turn\":{},\"cycles\":{},\"n_data\":{},\"best_y\":",
                s.turn, s.cycles, s.n_data
            );
            match s.best_y {
                Some(v) => push_f64_lossless(&mut out, v),
                None => out.push_str("null"),
            }
            out.push_str(",\"clock\":");
            push_f64_lossless(&mut out, s.clock);
            out.push_str(",\"key\":");
            push_str_literal(&mut out, &key);
            out.push('}');
            out
        }),
        Request::Record { id } => registry.record_line(&id).map(|line| {
            let mut out = ok_head();
            out.push_str(",\"record\":");
            push_str_literal(&mut out, &line);
            out.push('}');
            out
        }),
        Request::List => Ok({
            let mut out = ok_head();
            out.push_str(",\"sessions\":[");
            for (i, (id, phase, turn)) in registry.list().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"id\":");
                push_str_literal(&mut out, id);
                out.push_str(",\"phase\":");
                push_str_literal(&mut out, phase);
                let _ = write!(out, ",\"turn\":{turn}}}");
            }
            out.push_str("]}");
            out
        }),
        Request::ServerStatus => Ok({
            let snap = registry.metrics().snapshot();
            let mut out = ok_head();
            let _ = write!(out, ",\"proto\":{}", crate::proto::PROTO_VERSION);
            out.push_str(",\"protos\":[");
            for (i, p) in crate::proto::SUPPORTED_PROTOS.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{p}");
            }
            out.push(']');
            let _ = write!(out, ",\"sessions\":{}", registry.len());
            out.push_str(",\"counters\":{");
            for (i, (name, value)) in snap.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_literal(&mut out, name);
                let _ = write!(out, ":{value}");
            }
            out.push_str("},\"gauges\":{");
            for (i, (name, value)) in snap.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_literal(&mut out, name);
                out.push(':');
                push_f64_lossless(&mut out, *value);
            }
            out.push_str("}}");
            out
        }),
        Request::Close { id } => registry.close(&id).map(|()| {
            let mut out = ok_head();
            out.push('}');
            out
        }),
        Request::Shutdown => {
            let mut out = ok_head();
            out.push_str(",\"stopping\":true}");
            return (out, true);
        }
    };
    match result {
        Ok(line) => (line, false),
        Err(e) => {
            registry
                .metrics()
                .counter(&format!("server.errors.{}", e.code))
                .inc();
            (e.to_line(), false)
        }
    }
}

fn ok_head() -> String {
    String::from("{\"ok\":true")
}

/// The typed refusal for variable-q work requested over protocol 1.
fn needs_proto_2(what: &str) -> ErrorBody {
    ErrorBody::request(
        RequestErrorKind::UnsupportedVersion,
        format!("{what} chooses its batch size per cycle; proto 2 is required to carry q"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::json::{parse, Json};

    #[test]
    fn dispatch_survives_garbage_without_touching_sessions() {
        let reg = Registry::in_memory();
        for garbage in ["", "{", "null", "{\"proto\":1,\"op\":\"nope\"}", "\u{7f}\u{1}"] {
            let (resp, stop) = dispatch(&reg, garbage);
            assert!(!stop);
            let v = parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        }
        assert!(reg.is_empty());
    }

    #[test]
    fn unknown_session_is_a_typed_error() {
        let reg = Registry::in_memory();
        let (resp, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"ask\",\"id\":\"ghost\"}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("unknown_session")
        );
    }

    #[test]
    fn shutdown_sets_stop_flag() {
        let reg = Registry::in_memory();
        let (resp, stop) = dispatch(&reg, "{\"proto\":1,\"op\":\"shutdown\"}");
        assert!(stop);
        assert!(resp.contains("\"stopping\":true"));
    }

    /// Satellite regression: a panicked server thread must surface as
    /// a typed error from `join`, not re-panic the supervising caller.
    #[test]
    fn join_reports_a_panicked_server_thread_as_an_error() {
        let handle = ServerHandle {
            addr: "127.0.0.1:0".parse().unwrap(),
            handle: std::thread::spawn(|| -> std::io::Result<()> {
                panic!("simulated server crash")
            }),
        };
        let err = handle.join().expect_err("panic must become an Err");
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.max_conns >= cfg.workers);
        assert_eq!(cfg.max_line_bytes, 1 << 20);
        assert_eq!(cfg.idle_timeout, Duration::from_secs(300));
    }

    fn variable_q_create_body(id: &str) -> String {
        use pbo_core::algorithms::AlgorithmKind;
        use pbo_core::budget::Budget;
        use pbo_core::session::{ProblemSpec, SessionConfig, SessionProfile};
        use pbo_problems::SyntheticFn;
        let cfg = SessionConfig {
            algorithm: AlgorithmKind::HybridQ,
            problem: ProblemSpec::of(&SyntheticFn::ackley(2)),
            budget: Budget::cycles(2, 2).with_initial_samples(4),
            profile: SessionProfile::Test,
            seed: 7,
        };
        let mut out = String::new();
        cfg.encode_json(&mut out);
        format!("\"id\":\"{id}\",\"config\":{out}}}")
    }

    fn error_code(resp: &str) -> Option<String> {
        parse(resp)
            .ok()?
            .get("error")?
            .get("code")
            .and_then(Json::as_str)
            .map(str::to_string)
    }

    #[test]
    fn proto_1_cannot_create_or_ask_a_variable_q_session() {
        let reg = Registry::in_memory();
        let body = variable_q_create_body("vq");
        // v1 create is refused with the pinned code…
        let (resp, _) = dispatch(&reg, &format!("{{\"proto\":1,\"op\":\"create\",{body}"));
        assert_eq!(error_code(&resp).as_deref(), Some("unsupported_version"));
        assert!(reg.is_empty(), "refused create must not register a session");
        // …a v2 create succeeds…
        let (resp, _) = dispatch(&reg, &format!("{{\"proto\":2,\"op\":\"create\",{body}"));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // …and a later v1 ask against that session is refused too.
        let (resp, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"ask\",\"id\":\"vq\"}");
        assert_eq!(error_code(&resp).as_deref(), Some("unsupported_version"));
        let (resp, _) = dispatch(&reg, "{\"proto\":2,\"op\":\"ask\",\"id\":\"vq\"}");
        assert!(resp.contains("\"q\":"), "v2 ask carries the batch size: {resp}");
    }

    #[test]
    fn ask_reply_carries_q_only_on_proto_2() {
        use pbo_core::algorithms::AlgorithmKind;
        use pbo_core::budget::Budget;
        use pbo_core::session::{ProblemSpec, SessionConfig, SessionProfile};
        use pbo_problems::SyntheticFn;
        let reg = Registry::in_memory();
        let cfg = SessionConfig {
            algorithm: AlgorithmKind::RandomSearch,
            problem: ProblemSpec::of(&SyntheticFn::ackley(2)),
            budget: Budget::cycles(2, 3).with_initial_samples(4),
            profile: SessionProfile::Test,
            seed: 1,
        };
        reg.create("s", cfg).unwrap();
        let (v1, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"ask\",\"id\":\"s\"}");
        assert!(v1.contains("\"ok\":true") && !v1.contains("\"q\":"), "{v1}");
        let (v2, _) = dispatch(&reg, "{\"proto\":2,\"op\":\"ask\",\"id\":\"s\"}");
        let v = parse(&v2).unwrap();
        assert_eq!(v.get("q").and_then(Json::as_usize), Some(4), "design batch: {v2}");
    }

    #[test]
    fn server_status_advertises_both_protos_and_gauges() {
        let reg = Registry::in_memory();
        let (resp, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"server-status\"}");
        assert!(resp.contains("\"protos\":[1,2]"), "{resp}");
        assert!(resp.contains("\"gauges\":{"), "{resp}");
    }
}
