//! Algorithm configuration, split into semantic sub-structs.
//!
//! PRs kept bolting flat fields onto `AlgoConfig`; this module groups
//! them by what they govern — [`AcqConfig`] for single-point
//! acquisition machinery (multistart, criteria, per-algorithm knobs),
//! [`QeiConfig`] for the joint Monte-Carlo q-EI optimization — each
//! with its own `Default`. Validation lives here too:
//! [`AlgoConfig::validate`] converts what used to be `debug_assert!`s
//! and silent misbehavior into typed [`ConfigError`]s surfaced by
//! `Engine::builder(..).build()`.

use crate::clock::CostModel;
use crate::error::{at_least_one, non_negative, positive, ConfigError};
use crate::exec::FtPolicy;
use pbo_gp::FitConfig;

/// Which surrogate backend [`crate::engine::Engine::fit_model`] builds
/// each cycle.
///
/// `Dense` is the paper's exact GP (`O(n³)` fit). `Sparse` switches to
/// the inducing-point backend ([`pbo_gp::SparseGaussianProcess`],
/// `O(n m²)` fit / `O(m²)` predict) once the dataset reaches
/// `switch_at` observations; below the threshold the engine runs the
/// dense path bit-identically to a `Dense` configuration, so existing
/// seeded trajectories are unchanged until the switch actually fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SurrogateBackend {
    /// Exact dense GP on all `n` observations (the paper's setting).
    #[default]
    Dense,
    /// Inducing-point sparse GP once the dataset is large enough.
    Sparse {
        /// Inducing-point budget (greedy pivoted-Cholesky selection may
        /// stop earlier if the kernel matrix is numerically low-rank).
        m: usize,
        /// Dataset size at which the engine switches backends. Must be
        /// at least `m` so the selection always has enough candidates.
        switch_at: usize,
    },
}

/// How the Kriging-Believer loop fills in not-yet-simulated values
/// (Ginsbourger et al. discuss all three; the paper uses the believer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FantasyKind {
    /// Believe the posterior mean (the paper's KB heuristic).
    PosteriorMean,
    /// Constant liar with the incumbent best (optimistic; clusters).
    ConstantLiarMin,
    /// Constant liar with the worst observation (pessimistic; spreads).
    ConstantLiarMax,
}

/// Single-point acquisition settings (EI/UCB multistart and the
/// per-algorithm batch-construction knobs).
#[derive(Debug, Clone)]
pub struct AcqConfig {
    /// Multistart restarts for single-point acquisition optimization.
    pub restarts: usize,
    /// Raw Sobol samples scored before acquisition restarts.
    pub raw_samples: usize,
    /// UCB exploration weight (mic-q-EGO's second criterion).
    pub ucb_beta: f64,
    /// Fantasy value used by the KB/mic sequential loops.
    pub kb_fantasy: FantasyKind,
    /// BSP-EGO: number of sub-regions as a multiple of q (paper: 2).
    pub bsp_cells_factor: usize,
    /// Thompson sampling (extension algorithm): discrete candidate-set
    /// size per cycle.
    pub thompson_candidates: usize,
    /// GP-UCB-PE (extension algorithm): Sobol candidate-set size for
    /// the variance-greedy pure-exploration fillers.
    pub pe_candidates: usize,
    /// Adaptive-q hybrid (extension algorithm): keep growing the batch
    /// while the fantasy-conditioned EI of the next point stays at
    /// least `hybrid_eta` × the leader's EI. Must lie in (0, 1]; larger
    /// values shrink batches sooner.
    pub hybrid_eta: f64,
}

impl Default for AcqConfig {
    fn default() -> Self {
        AcqConfig {
            restarts: 6,
            raw_samples: 64,
            ucb_beta: std::f64::consts::SQRT_2,
            kb_fantasy: FantasyKind::PosteriorMean,
            bsp_cells_factor: 2,
            thompson_candidates: 512,
            pe_candidates: 256,
            hybrid_eta: 0.5,
        }
    }
}

/// Joint Monte-Carlo q-EI settings (MC-q-EGO and TuRBO at q > 1).
#[derive(Debug, Clone)]
pub struct QeiConfig {
    /// qMC base samples for the sample-average q-EI estimator.
    pub samples: usize,
    /// Restarts for the joint q-EI optimization.
    pub restarts: usize,
    /// Raw samples for the joint q-EI optimization.
    pub raw_samples: usize,
}

impl Default for QeiConfig {
    fn default() -> Self {
        QeiConfig { samples: 128, restarts: 4, raw_samples: 32 }
    }
}

/// Algorithm-level configuration shared by all five methods.
#[derive(Debug, Clone)]
pub struct AlgoConfig {
    /// GP hyperparameter fitting settings.
    pub fit: FitConfig,
    /// Run a full multistart fit every k cycles; warm-start refits in
    /// between (the paper reduces intermediate fitting budgets).
    pub full_fit_every: usize,
    /// On non-full cycles, keep hyperparameters frozen and extend the
    /// cached Cholesky factor with the q new rows (O(n²q)) instead of
    /// warm-refitting and refactoring from scratch (O(n³)). Off by
    /// default: warm refits move hyperparameters every cycle, so
    /// enabling this changes trajectories (bit-identical to a
    /// frozen-hyperparameter rebuild, not to a warm refit).
    pub incremental_updates: bool,
    /// Surrogate backend: exact dense GP, or inducing-point sparse with
    /// an auto-switch threshold.
    pub surrogate: SurrogateBackend,
    /// Single-point acquisition settings.
    pub acq: AcqConfig,
    /// Joint Monte-Carlo q-EI settings.
    pub qei: QeiConfig,
    /// Virtual-clock cost model.
    pub cost_model: CostModel,
    /// Fault-tolerant evaluation policy (retries, backoff, timeout,
    /// worker-count override).
    pub ft: FtPolicy,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        AlgoConfig {
            fit: FitConfig { restarts: 2, max_iters: 40, warm_iters: 12, ..FitConfig::default() },
            full_fit_every: 10,
            incremental_updates: false,
            surrogate: SurrogateBackend::default(),
            acq: AcqConfig::default(),
            qei: QeiConfig::default(),
            cost_model: CostModel::default(),
            ft: FtPolicy::default(),
        }
    }
}

impl AlgoConfig {
    /// Deterministic test profile: fixed per-call virtual costs and
    /// small fitting budgets.
    pub fn test_profile() -> Self {
        AlgoConfig {
            fit: FitConfig { restarts: 0, max_iters: 12, warm_iters: 6, ..FitConfig::default() },
            acq: AcqConfig { restarts: 2, raw_samples: 16, ..AcqConfig::default() },
            qei: QeiConfig { samples: 48, restarts: 2, raw_samples: 8 },
            cost_model: CostModel::Fixed { per_call: 1.0 },
            ..AlgoConfig::default()
        }
    }

    /// Check every field the engine depends on; returns the first
    /// violation as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        at_least_one("cfg.full_fit_every", self.full_fit_every)?;
        if self.incremental_updates && self.full_fit_every == 1 {
            return Err(ConfigError::IncrementalUpdatesNeedStableCycles);
        }
        if let SurrogateBackend::Sparse { m, switch_at } = self.surrogate {
            if m < 2 {
                return Err(ConfigError::SparseInducingTooSmall { got: m });
            }
            if switch_at < m {
                return Err(ConfigError::SparseSwitchBeforeInducing { m, switch_at });
            }
        }
        at_least_one("cfg.fit.max_iters", self.fit.max_iters)?;
        at_least_one("cfg.acq.raw_samples", self.acq.raw_samples)?;
        at_least_one("cfg.qei.samples", self.qei.samples)?;
        at_least_one("cfg.qei.raw_samples", self.qei.raw_samples)?;
        at_least_one("cfg.acq.bsp_cells_factor", self.acq.bsp_cells_factor)?;
        at_least_one("cfg.acq.thompson_candidates", self.acq.thompson_candidates)?;
        at_least_one("cfg.acq.pe_candidates", self.acq.pe_candidates)?;
        if !(self.acq.hybrid_eta.is_finite()
            && self.acq.hybrid_eta > 0.0
            && self.acq.hybrid_eta <= 1.0)
        {
            return Err(ConfigError::HybridEtaOutOfRange { got: self.acq.hybrid_eta });
        }
        non_negative("cfg.acq.ucb_beta", self.acq.ucb_beta)?;
        for (field, (lo, hi)) in [
            ("cfg.fit.log_ls_bounds", self.fit.log_ls_bounds),
            ("cfg.fit.log_os_bounds", self.fit.log_os_bounds),
            ("cfg.fit.log_noise_bounds", self.fit.log_noise_bounds),
        ] {
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(ConfigError::InvalidFitBounds { field, lo, hi });
            }
        }
        match self.cost_model {
            CostModel::Measured { overhead_scale } => {
                positive("cfg.cost_model.overhead_scale", overhead_scale)?;
            }
            CostModel::Fixed { per_call } => {
                non_negative("cfg.cost_model.per_call", per_call)?;
            }
        }
        non_negative("cfg.ft.backoff_base", self.ft.backoff_base)?;
        if !(self.ft.backoff_factor.is_finite() && self.ft.backoff_factor >= 1.0) {
            return Err(ConfigError::BackoffFactorTooSmall { got: self.ft.backoff_factor });
        }
        // NaN must fail too (+∞ is a legitimate "no timeout").
        if self.ft.timeout_secs.is_nan() || self.ft.timeout_secs <= 0.0 {
            return Err(ConfigError::NonPositive {
                field: "cfg.ft.timeout_secs",
                got: self.ft.timeout_secs,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AlgoConfig::default().validate().unwrap();
        AlgoConfig::test_profile().validate().unwrap();
    }

    #[test]
    fn each_violation_maps_to_a_typed_error() {
        let mut c = AlgoConfig::default();
        c.full_fit_every = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroField { field: "cfg.full_fit_every" })
        );

        let mut c = AlgoConfig::default();
        c.incremental_updates = true;
        c.full_fit_every = 1;
        assert_eq!(c.validate(), Err(ConfigError::IncrementalUpdatesNeedStableCycles));

        let mut c = AlgoConfig::default();
        c.acq.ucb_beta = f64::NAN;
        assert!(matches!(c.validate(), Err(ConfigError::Negative { field, .. })
            if field == "cfg.acq.ucb_beta"));

        let mut c = AlgoConfig::default();
        c.fit.log_ls_bounds = (1.0, -1.0);
        assert!(matches!(c.validate(), Err(ConfigError::InvalidFitBounds { .. })));

        let mut c = AlgoConfig::default();
        c.surrogate = SurrogateBackend::Sparse { m: 1, switch_at: 100 };
        assert_eq!(c.validate(), Err(ConfigError::SparseInducingTooSmall { got: 1 }));

        let mut c = AlgoConfig::default();
        c.surrogate = SurrogateBackend::Sparse { m: 64, switch_at: 10 };
        assert_eq!(
            c.validate(),
            Err(ConfigError::SparseSwitchBeforeInducing { m: 64, switch_at: 10 })
        );

        let mut c = AlgoConfig::default();
        c.acq.pe_candidates = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroField { field: "cfg.acq.pe_candidates" })
        );

        let mut c = AlgoConfig::default();
        c.acq.hybrid_eta = 0.0;
        assert_eq!(c.validate(), Err(ConfigError::HybridEtaOutOfRange { got: 0.0 }));

        let mut c = AlgoConfig::default();
        c.acq.hybrid_eta = 1.5;
        assert_eq!(c.validate(), Err(ConfigError::HybridEtaOutOfRange { got: 1.5 }));

        let mut c = AlgoConfig::default();
        c.acq.hybrid_eta = f64::NAN;
        assert!(matches!(c.validate(), Err(ConfigError::HybridEtaOutOfRange { .. })));

        let mut c = AlgoConfig::default();
        c.ft.backoff_factor = 0.5;
        assert_eq!(c.validate(), Err(ConfigError::BackoffFactorTooSmall { got: 0.5 }));

        let mut c = AlgoConfig::default();
        c.cost_model = CostModel::Measured { overhead_scale: 0.0 };
        assert!(matches!(c.validate(), Err(ConfigError::NonPositive { .. })));

        let mut c = AlgoConfig::default();
        c.ft.timeout_secs = f64::NAN;
        assert!(matches!(c.validate(), Err(ConfigError::NonPositive { .. })));
    }

    #[test]
    fn incremental_updates_with_stable_schedule_validates() {
        let mut c = AlgoConfig::default();
        c.incremental_updates = true;
        c.full_fit_every = 2;
        c.validate().unwrap();
    }

    #[test]
    fn sparse_backend_with_sane_thresholds_validates() {
        let mut c = AlgoConfig::default();
        c.surrogate = SurrogateBackend::Sparse { m: 64, switch_at: 256 };
        c.validate().unwrap();
        // switch_at == m is the earliest legal switch point.
        c.surrogate = SurrogateBackend::Sparse { m: 64, switch_at: 64 };
        c.validate().unwrap();
    }

    #[test]
    fn infinite_timeout_is_allowed() {
        let mut c = AlgoConfig::default();
        c.ft.timeout_secs = f64::INFINITY;
        c.validate().unwrap();
    }
}
