//! End-to-end cycle benchmarks: one full optimization cycle (fit +
//! acquisition + batch evaluation) per algorithm, on the benchmark
//! suite and on UPHES — the per-cycle wall cost that, multiplied by the
//! paper's overhead scale, fills the 20-minute virtual budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbo_core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo_core::budget::Budget;
use pbo_core::clock::CostModel;
use pbo_core::engine::{AcqConfig, AlgoConfig, QeiConfig};
use pbo_problems::{SyntheticFn, UphesProblem};

fn quick_cfg() -> AlgoConfig {
    AlgoConfig {
        acq: AcqConfig { restarts: 2, raw_samples: 16, ..AcqConfig::default() },
        qei: QeiConfig { samples: 48, restarts: 2, raw_samples: 8 },
        cost_model: CostModel::Fixed { per_call: 1.0 },
        ..AlgoConfig::default()
    }
}

/// Three cycles of each algorithm at q = 4 on Ackley-12d.
fn bench_three_cycles_benchmarkfn(c: &mut Criterion) {
    let problem = SyntheticFn::ackley(12);
    let budget = Budget::cycles(3, 4).with_initial_samples(16);
    let cfg = quick_cfg();
    let mut g = c.benchmark_group("three_cycles_ackley12_q4");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for kind in AlgorithmKind::paper_set() {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| run_algorithm_with(k, &problem, &budget, cfg.clone(), 1).best_y())
        });
    }
    g.finish();
}

/// Three cycles on the UPHES scheduling problem (includes simulator
/// cost).
fn bench_three_cycles_uphes(c: &mut Criterion) {
    let problem = UphesProblem::maizeret(42);
    let budget = Budget::cycles(3, 4).with_initial_samples(16);
    let cfg = quick_cfg();
    let mut g = c.benchmark_group("three_cycles_uphes_q4");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for kind in [AlgorithmKind::MicQEgo, AlgorithmKind::Turbo] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| run_algorithm_with(k, &problem, &budget, cfg.clone(), 1).best_y())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_three_cycles_benchmarkfn, bench_three_cycles_uphes);
criterion_main!(benches);
