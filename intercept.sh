#!/bin/bash
# Wait for the uphes phase to start, replace it with a runs=2 version.
cd /root/repo
while true; do
  if grep -q "repro uphes --runs 3" results/repro_progress.txt 2>/dev/null; then
    # Kill the script and its child repro.
    SCRIPT_PID=$(pgrep -xf "/bin/bash ./run_experiments.sh" | head -1)
    [ -n "$SCRIPT_PID" ] && kill $SCRIPT_PID
    sleep 1
    for p in $(pgrep -x repro); do
      if grep -q uphes /proc/$p/cmdline 2>/dev/null; then kill $p; fi
    done
    sleep 1
    target/release/repro uphes --runs 2 > results/uphes_output.txt 2> results/uphes_progress.txt
    echo UPHES_DONE >> results/uphes_progress.txt
    break
  fi
  sleep 10
done
