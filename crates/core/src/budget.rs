//! Budget allocation — Table 2 of the paper.
//!
//! The limiting resource is (virtual) wall-clock time: 20 minutes of
//! optimization after an initial design of `16 × n_batch` simulations
//! (the DoE is *excluded* from the 20-minute budget, as in the paper,
//! whose total run duration is "around 25 min, initial sampling
//! included"). Each simulation costs a fixed 10 s; parallel batch
//! dispatch adds a small software overhead, which the paper observes to
//! be non-negligible for its licensed simulator.

use crate::error::{non_negative, positive, ConfigError};

/// Stopping rule of an optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stopping {
    /// Stop when virtual time reaches this many seconds (paper mode).
    VirtualTime(f64),
    /// Stop after this many cycles (deterministic; for tests/examples).
    Cycles(usize),
}

/// Full budget description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Batch size `q` = parallel workers.
    pub batch_size: usize,
    /// Stopping rule.
    pub stopping: Stopping,
    /// Initial design size (Table 2: `16 × q`).
    pub initial_samples: usize,
    /// Virtual cost of one simulation \[seconds\].
    pub sim_seconds: f64,
    /// Flat dispatch overhead charged per parallel batch \[seconds\].
    pub dispatch_overhead: f64,
    /// Extra dispatch overhead per batch element \[seconds\] (the paper's
    /// licensed-executable interfacing cost grows with the batch).
    pub dispatch_overhead_per_point: f64,
}

impl Budget {
    /// The paper's protocol for batch size `q`: 20 virtual minutes,
    /// 10 s simulations, `16q` initial samples.
    pub fn paper(q: usize) -> Self {
        assert!(q >= 1);
        Budget {
            batch_size: q,
            stopping: Stopping::VirtualTime(20.0 * 60.0),
            initial_samples: 16 * q,
            sim_seconds: 10.0,
            dispatch_overhead: 0.5,
            dispatch_overhead_per_point: 0.05,
        }
    }

    /// Cycle-bounded budget (tests and examples).
    pub fn cycles(n_cycles: usize, q: usize) -> Self {
        Budget {
            batch_size: q,
            stopping: Stopping::Cycles(n_cycles),
            initial_samples: 16 * q,
            sim_seconds: 10.0,
            dispatch_overhead: 0.5,
            dispatch_overhead_per_point: 0.05,
        }
    }

    /// Shrink the initial design (used by fast test profiles).
    pub fn with_initial_samples(mut self, n: usize) -> Self {
        self.initial_samples = n.max(4);
        self
    }

    /// Check the budget for degenerate settings; returns the first
    /// violation as a typed error. Called by `Engine::builder`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.initial_samples < 2 {
            return Err(ConfigError::InitialSamplesTooSmall { got: self.initial_samples });
        }
        positive("budget.sim_seconds", self.sim_seconds)?;
        non_negative("budget.dispatch_overhead", self.dispatch_overhead)?;
        non_negative("budget.dispatch_overhead_per_point", self.dispatch_overhead_per_point)?;
        if let Stopping::VirtualTime(t) = self.stopping {
            positive("budget.stopping.virtual_time", t)?;
        }
        Ok(())
    }

    /// Virtual time consumed by one parallel batch evaluation.
    pub fn batch_sim_time(&self, batch_len: usize) -> f64 {
        self.sim_seconds
            + self.dispatch_overhead
            + self.dispatch_overhead_per_point * batch_len as f64
    }

    /// The theoretical maximum number of cycles under a virtual-time
    /// stopping rule (ignoring all surrogate overhead) — 120 in the
    /// paper's setting.
    pub fn max_cycles(&self) -> Option<usize> {
        match self.stopping {
            Stopping::VirtualTime(t) => Some((t / self.sim_seconds).floor() as usize),
            Stopping::Cycles(n) => Some(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_matches_table2() {
        for q in [1usize, 2, 4, 8, 16] {
            let b = Budget::paper(q);
            assert_eq!(b.initial_samples, 16 * q);
            assert!(matches!(b.stopping, Stopping::VirtualTime(t) if (t - 1200.0).abs() < 1e-9));
            assert_eq!(b.sim_seconds, 10.0);
        }
    }

    #[test]
    fn max_cycles_is_120_in_paper_mode() {
        assert_eq!(Budget::paper(4).max_cycles(), Some(120));
    }

    #[test]
    fn validate_accepts_paper_budgets_and_rejects_degenerate_ones() {
        for q in [1usize, 4, 16] {
            Budget::paper(q).validate().unwrap();
            Budget::cycles(3, q).validate().unwrap();
        }
        let mut b = Budget::paper(2);
        b.batch_size = 0;
        assert_eq!(b.validate(), Err(ConfigError::ZeroBatchSize));
        let mut b = Budget::paper(2);
        b.initial_samples = 1;
        assert_eq!(b.validate(), Err(ConfigError::InitialSamplesTooSmall { got: 1 }));
        let mut b = Budget::paper(2);
        b.sim_seconds = -1.0;
        assert!(matches!(b.validate(), Err(ConfigError::NonPositive { .. })));
        let mut b = Budget::paper(2);
        b.stopping = Stopping::VirtualTime(0.0);
        assert!(matches!(b.validate(), Err(ConfigError::NonPositive { .. })));
    }

    #[test]
    fn batch_time_grows_with_batch() {
        let b = Budget::paper(8);
        assert!(b.batch_sim_time(8) > b.batch_sim_time(1));
        assert!(b.batch_sim_time(1) >= b.sim_seconds);
    }
}
