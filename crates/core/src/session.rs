//! Resumable ask/tell optimization sessions.
//!
//! The paper's real deployment is a licensed UPHES simulator on a
//! cluster — a *remote* evaluator. This module inverts the engine's
//! control flow accordingly: instead of the engine calling a
//! [`Problem`], a [`SessionState`] suspends at the evaluate boundary,
//! hands the caller the native-space points to simulate ([`ask`]) and
//! absorbs the reported values ([`tell`]), refitting and advancing the
//! virtual clock exactly as the in-process loop would.
//!
//! # Resume identity
//!
//! A session is event-sourced: its durable state is the
//! [`SessionConfig`] plus the ordered journal of told value vectors.
//! Everything else (GP, clock, trust region, BSP tree, seed streams) is
//! deterministically recomputed by replaying the journal through the
//! same [`BatchStepper`]/[`Engine`] code the in-process loop runs —
//! [`SeedStream`](pbo_sampling::SeedStream) forks are pure in
//! `(seed, tag)`, and session profiles pin the deterministic
//! [`CostModel::Fixed`] clock (a measured clock charges host wall time
//! and cannot replay). A killed server that re-creates the session from
//! its checkpoint line and replays the journal therefore lands in a
//! bit-identical state: same proposals, same clock, same `RunRecord`.
//!
//! [`ask`]: SessionState::ask
//! [`tell`]: SessionState::tell

use crate::algorithms::{AlgorithmKind, BatchStepper};
use crate::budget::{Budget, Stopping};
use crate::checkpoint::fnv1a64;
use crate::clock::CostModel;
use crate::config::AlgoConfig;
use crate::engine::{Engine, PreparedEngine};
use crate::error::ConfigError;
use crate::exec::{BatchReport, PointOutcome};
use crate::json::{parse, push_f64_lossless, push_str_literal, Json};
use crate::observe::Observer;
use crate::record::{FaultCounters, RunRecord};
use pbo_problems::Problem;
use std::fmt;
use std::fmt::Write as _;

/// Schema version of the session checkpoint line. Schema 2 added the
/// per-turn batch sizes (`"qs"`) for the variable-q algorithms; schema
/// 1 lines (fixed-q by construction) are still read.
pub const SESSION_SCHEMA_VERSION: u32 = 2;

/// Version of the *config descriptor* feeding the content-addressed
/// checkpoint key. Deliberately independent of
/// [`SESSION_SCHEMA_VERSION`]: the schema-2 line layout changed nothing
/// about what determines a run, so schema-1 checkpoints must keep
/// passing key validation and orchestrator keys must not churn.
pub const CONFIG_KEY_VERSION: u32 = 1;

/// Everything that can go wrong driving a session. Typed so the server
/// can map each case to a stable protocol error code instead of
/// unwinding a connection (or the whole daemon).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The engine rejected the configuration.
    Config(ConfigError),
    /// The problem specification is unusable (mismatched or non-finite
    /// bounds, zero dimension).
    InvalidProblem(String),
    /// A `tell` arrived for the wrong turn (out-of-order or duplicate).
    WrongTurn {
        /// The turn the session expects next.
        expected: usize,
        /// The turn the client sent.
        got: usize,
    },
    /// A `tell` carried the wrong number of values for the pending
    /// batch.
    WrongPointCount {
        /// Points the pending batch contains.
        expected: usize,
        /// Values the client sent.
        got: usize,
    },
    /// The run is complete; no further asks or tells are accepted.
    Finished,
    /// Every initial-design value was non-finite; there is no dataset
    /// to start from. The session stays in the design phase so a
    /// corrected tell can still succeed.
    EmptyDesign,
    /// A checkpoint line or journal failed to parse or replay.
    Corrupt(String),
    /// The session hit an internal invariant failure on a previous
    /// operation and can no longer be driven.
    Poisoned,
}

impl SessionError {
    /// Every stable session-level wire code, in declaration order. The
    /// server documents these (with the request-level codes) in one
    /// table in DESIGN.md; a conformance test asserts the table is
    /// exhaustive against this list.
    pub const ALL_CODES: [&'static str; 8] = [
        "invalid_config",
        "invalid_problem",
        "wrong_turn",
        "wrong_point_count",
        "finished",
        "empty_design",
        "session_corrupt",
        "session_poisoned",
    ];

    /// Stable machine-readable code (protocol error field).
    pub fn code(&self) -> &'static str {
        match self {
            SessionError::Config(_) => "invalid_config",
            SessionError::InvalidProblem(_) => "invalid_problem",
            SessionError::WrongTurn { .. } => "wrong_turn",
            SessionError::WrongPointCount { .. } => "wrong_point_count",
            SessionError::Finished => "finished",
            SessionError::EmptyDesign => "empty_design",
            SessionError::Corrupt(_) => "session_corrupt",
            SessionError::Poisoned => "session_poisoned",
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Config(e) => write!(f, "invalid configuration: {e}"),
            SessionError::InvalidProblem(m) => write!(f, "invalid problem: {m}"),
            SessionError::WrongTurn { expected, got } => {
                write!(f, "wrong turn: expected {expected}, got {got}")
            }
            SessionError::WrongPointCount { expected, got } => {
                write!(f, "wrong point count: expected {expected}, got {got}")
            }
            SessionError::Finished => write!(f, "session already finished"),
            SessionError::EmptyDesign => {
                write!(f, "every initial-design value was non-finite; no dataset to start from")
            }
            SessionError::Corrupt(m) => write!(f, "corrupt session checkpoint: {m}"),
            SessionError::Poisoned => write!(f, "session poisoned by an earlier failure"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ConfigError> for SessionError {
    fn from(e: ConfigError) -> Self {
        SessionError::Config(e)
    }
}

/// Search-space description of a remote problem: the server never
/// evaluates it, so bounds and orientation are all it needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Display name carried into the `RunRecord`.
    pub name: String,
    /// Per-dimension lower bounds (native space).
    pub lower: Vec<f64>,
    /// Per-dimension upper bounds (native space).
    pub upper: Vec<f64>,
    /// Whether the client-side objective is maximized. Clients always
    /// tell *native* values; the session flips them internally exactly
    /// as [`pbo_problems::eval_min`] would.
    pub maximize: bool,
}

impl ProblemSpec {
    /// Describe an existing in-process problem (test helpers and the
    /// conformance suite).
    pub fn of(p: &dyn Problem) -> ProblemSpec {
        ProblemSpec {
            name: p.name().to_string(),
            lower: p.lower().to_vec(),
            upper: p.upper().to_vec(),
            maximize: p.maximize(),
        }
    }

    fn validate(&self) -> Result<(), SessionError> {
        if self.lower.is_empty() || self.lower.len() != self.upper.len() {
            return Err(SessionError::InvalidProblem(format!(
                "bounds must be non-empty and matched (lower {}, upper {})",
                self.lower.len(),
                self.upper.len()
            )));
        }
        for (i, (lo, hi)) in self.lower.iter().zip(&self.upper).enumerate() {
            if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                return Err(SessionError::InvalidProblem(format!(
                    "dimension {i}: need finite lower < upper, got ({lo}, {hi})"
                )));
            }
        }
        Ok(())
    }
}

/// The never-evaluated stand-in [`Problem`] a session's engine holds.
/// Sessions suspend at every evaluate boundary, so `eval` is
/// unreachable; it panics loudly rather than fabricating values in case
/// a future refactor re-introduces an in-process evaluation path.
struct RemoteProblem {
    spec: ProblemSpec,
}

impl Problem for RemoteProblem {
    fn name(&self) -> &str {
        &self.spec.name
    }
    fn dim(&self) -> usize {
        self.spec.lower.len()
    }
    fn lower(&self) -> &[f64] {
        &self.spec.lower
    }
    fn upper(&self) -> &[f64] {
        &self.spec.upper
    }
    fn maximize(&self) -> bool {
        self.spec.maximize
    }
    fn eval(&self, _x: &[f64]) -> f64 {
        unreachable!("remote problems are never evaluated in-process")
    }
}

/// Engine configuration profile for a session. Sessions must replay
/// deterministically, so every profile pins [`CostModel::Fixed`]: the
/// measured cost model charges *host wall time* to the virtual clock,
/// which no replay can reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionProfile {
    /// `AlgoConfig::test_profile()` — small multistart budgets, fixed
    /// 1 s per surrogate charge. The conformance suite's profile.
    Test,
    /// Default engine configuration with the cost model replaced by
    /// `Fixed { per_call: 1.0 }`.
    Standard,
}

impl SessionProfile {
    /// Stable profile name (protocol field).
    pub fn name(self) -> &'static str {
        match self {
            SessionProfile::Test => "test",
            SessionProfile::Standard => "standard",
        }
    }

    /// Parse a profile name.
    pub fn from_name(s: &str) -> Option<SessionProfile> {
        match s {
            "test" => Some(SessionProfile::Test),
            "standard" => Some(SessionProfile::Standard),
            _ => None,
        }
    }

    /// The engine configuration this profile pins.
    pub fn algo_config(self) -> AlgoConfig {
        match self {
            SessionProfile::Test => AlgoConfig::test_profile(),
            SessionProfile::Standard => AlgoConfig {
                cost_model: CostModel::Fixed { per_call: 1.0 },
                ..AlgoConfig::default()
            },
        }
    }
}

/// Complete, serializable description of one session — every
/// run-determining input. Two sessions with equal configs produce
/// bit-identical trajectories for equal journals.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Which acquisition algorithm drives the session.
    pub algorithm: AlgorithmKind,
    /// The remote problem's search space.
    pub problem: ProblemSpec,
    /// Batch size, stopping rule and virtual simulation cost.
    pub budget: Budget,
    /// Engine profile (deterministic cost model enforced).
    pub profile: SessionProfile,
    /// Run seed.
    pub seed: u64,
}

impl SessionConfig {
    /// Canonical descriptor string: hashes into the content-addressed
    /// checkpoint key, so it must cover every run-determining input.
    pub fn descriptor(&self) -> String {
        let stopping = match self.budget.stopping {
            Stopping::VirtualTime(t) => format!("time:{t:?}"),
            Stopping::Cycles(n) => format!("cycles:{n}"),
        };
        format!(
            "session-v{}|algo={}|problem={}|lower={:?}|upper={:?}|maximize={}|q={}|stop={}|n0={}|sim={:?}|disp={:?}|dispp={:?}|profile={}|seed={}",
            CONFIG_KEY_VERSION,
            self.algorithm.name(),
            self.problem.name,
            self.problem.lower,
            self.problem.upper,
            self.problem.maximize,
            self.budget.batch_size,
            stopping,
            self.budget.initial_samples,
            self.budget.sim_seconds,
            self.budget.dispatch_overhead,
            self.budget.dispatch_overhead_per_point,
            self.profile.name(),
            self.seed,
        )
    }

    /// Content-addressed key: FNV-1a-64 of the descriptor, as 16 hex
    /// digits. Names the session's checkpoint file and guards resumes
    /// against config drift.
    pub fn key(&self) -> String {
        format!("{:016x}", fnv1a64(self.descriptor().as_bytes()))
    }

    /// Encode as a JSON object fragment (appended to `out`).
    pub fn encode_json(&self, out: &mut String) {
        out.push_str("{\"algorithm\":");
        push_str_literal(out, self.algorithm.name());
        out.push_str(",\"problem\":{\"name\":");
        push_str_literal(out, &self.problem.name);
        out.push_str(",\"lower\":");
        push_f64_array(out, &self.problem.lower);
        out.push_str(",\"upper\":");
        push_f64_array(out, &self.problem.upper);
        let _ = write!(out, ",\"maximize\":{}}}", self.problem.maximize);
        out.push_str(",\"budget\":{");
        let _ = write!(out, "\"q\":{}", self.budget.batch_size);
        match self.budget.stopping {
            Stopping::Cycles(n) => {
                let _ = write!(out, ",\"stopping\":\"cycles\",\"stop_value\":{n}");
            }
            Stopping::VirtualTime(t) => {
                out.push_str(",\"stopping\":\"virtual-time\",\"stop_value\":");
                push_f64_lossless(out, t);
            }
        }
        let _ = write!(out, ",\"initial_samples\":{}", self.budget.initial_samples);
        out.push_str(",\"sim_seconds\":");
        push_f64_lossless(out, self.budget.sim_seconds);
        out.push_str(",\"dispatch_overhead\":");
        push_f64_lossless(out, self.budget.dispatch_overhead);
        out.push_str(",\"dispatch_overhead_per_point\":");
        push_f64_lossless(out, self.budget.dispatch_overhead_per_point);
        out.push_str("},\"profile\":");
        push_str_literal(out, self.profile.name());
        // Seeds are u64; >2^53 would lose bits as a JSON number.
        let _ = write!(out, ",\"seed\":\"{}\"}}", self.seed);
    }

    /// Decode from a parsed JSON object (inverse of
    /// [`SessionConfig::encode_json`]).
    pub fn from_json(v: &Json) -> Result<SessionConfig, String> {
        let algorithm = v
            .require("algorithm")?
            .as_str()
            .and_then(AlgorithmKind::from_name)
            .ok_or("unknown algorithm")?;
        let p = v.require("problem")?;
        let problem = ProblemSpec {
            name: p.require("name")?.as_str().ok_or("problem.name must be a string")?.into(),
            lower: f64_array(p.require("lower")?).ok_or("problem.lower must be numbers")?,
            upper: f64_array(p.require("upper")?).ok_or("problem.upper must be numbers")?,
            maximize: p.require("maximize")?.as_bool().ok_or("problem.maximize must be a bool")?,
        };
        let b = v.require("budget")?;
        let stopping = match b.require("stopping")?.as_str() {
            Some("cycles") => Stopping::Cycles(
                b.require("stop_value")?.as_usize().ok_or("stop_value must be a count")?,
            ),
            Some("virtual-time") => Stopping::VirtualTime(
                b.require("stop_value")?.as_f64().ok_or("stop_value must be a number")?,
            ),
            _ => return Err("unknown stopping kind".into()),
        };
        let budget = Budget {
            batch_size: b.require("q")?.as_usize().ok_or("q must be a count")?,
            stopping,
            initial_samples: b
                .require("initial_samples")?
                .as_usize()
                .ok_or("initial_samples must be a count")?,
            sim_seconds: b.require("sim_seconds")?.as_f64().ok_or("sim_seconds")?,
            dispatch_overhead: b
                .require("dispatch_overhead")?
                .as_f64()
                .ok_or("dispatch_overhead")?,
            dispatch_overhead_per_point: b
                .require("dispatch_overhead_per_point")?
                .as_f64()
                .ok_or("dispatch_overhead_per_point")?,
        };
        let profile = v
            .require("profile")?
            .as_str()
            .and_then(SessionProfile::from_name)
            .ok_or("unknown profile")?;
        let seed = v
            .require("seed")?
            .as_str()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or("seed must be a decimal string")?;
        Ok(SessionConfig { algorithm, problem, budget, profile, seed })
    }
}

fn push_f64_array(out: &mut String, vals: &[f64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64_lossless(out, *v);
    }
    out.push(']');
}

fn f64_array(v: &Json) -> Option<Vec<f64>> {
    v.as_array()?.iter().map(Json::as_f64).collect()
}

/// A batch proposed but not yet told back.
struct PendingBatch {
    /// Unit-cube coordinates (what `commit_report` needs).
    unit: Vec<Vec<f64>>,
    /// Native coordinates (what the client evaluates).
    native: Vec<Vec<f64>>,
}

enum Phase {
    /// Waiting for the initial-design values.
    Design(Box<PreparedEngine<'static>>),
    /// In the cycle loop.
    Cycle {
        engine: Box<Engine<'static>>,
        stepper: BatchStepper,
        pending: Option<PendingBatch>,
    },
    /// Budget exhausted; record closed.
    Done(Box<RunRecord>),
    /// A previous operation failed mid-transition.
    Poisoned,
}

/// What an [`SessionState::ask`] returns: the points to evaluate and
/// the turn a matching tell must cite.
#[derive(Debug, Clone, PartialEq)]
pub struct AskReply {
    /// Journal turn the next `tell` must carry.
    pub turn: usize,
    /// This turn's batch size (= `points.len()`). Equal to the
    /// configured q for fixed-q algorithms; the variable-q algorithms
    /// choose it per cycle, which is why protocol v2 carries it on the
    /// wire.
    pub q: usize,
    /// Native-space points for the client to evaluate, in order.
    pub points: Vec<Vec<f64>>,
}

/// Introspection snapshot of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStatus {
    /// `"design"`, `"cycle"` or `"done"`.
    pub phase: &'static str,
    /// Tells absorbed so far (= the next expected turn while running).
    pub turn: usize,
    /// Completed cycles.
    pub cycles: usize,
    /// Observations in the dataset.
    pub n_data: usize,
    /// Best objective value so far, in the client's native orientation
    /// (`None` before the design is told).
    pub best_y: Option<f64>,
    /// Virtual clock reading \[seconds\].
    pub clock: f64,
}

/// One resumable ask/tell session: a [`SessionConfig`] plus the journal
/// of told values, with the live engine/stepper state derived from
/// them. See the module docs for the resume-identity argument.
pub struct SessionState {
    cfg: SessionConfig,
    /// Ordered tell payloads (native values), the event-sourced truth.
    journal: Vec<Vec<f64>>,
    phase: Phase,
}

impl SessionState {
    /// Validate the config and open a session suspended before its
    /// initial design evaluation.
    pub fn create(cfg: SessionConfig) -> Result<SessionState, SessionError> {
        Self::create_observed(cfg, crate::observe::NullObserver)
    }

    /// [`SessionState::create`] with an event sink attached; the server
    /// uses this to stream per-session events into its metrics
    /// registry. Replaying a journal re-emits the events, so a restart
    /// rebuilds observer state along with the engine.
    pub fn create_observed(
        cfg: SessionConfig,
        observer: impl Observer + Send + 'static,
    ) -> Result<SessionState, SessionError> {
        cfg.problem.validate()?;
        let algo_cfg = cfg.profile.algo_config();
        debug_assert!(
            matches!(algo_cfg.cost_model, CostModel::Fixed { .. }),
            "session profiles must pin a deterministic cost model"
        );
        let problem: Box<dyn Problem + Send + Sync> =
            Box::new(RemoteProblem { spec: cfg.problem.clone() });
        let prep = Engine::builder_owned(problem)
            .budget(cfg.budget)
            .config(algo_cfg)
            .seed(cfg.seed)
            .algorithm(cfg.algorithm.name())
            .observer(observer)
            .prepare()?;
        Ok(SessionState { cfg, journal: Vec::new(), phase: Phase::Design(Box::new(prep)) })
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The next turn a `tell` must cite (= tells absorbed so far).
    pub fn turn(&self) -> usize {
        self.journal.len()
    }

    /// The journal of told value vectors.
    pub fn journal(&self) -> &[Vec<f64>] {
        &self.journal
    }

    /// The closed record once the session is done.
    pub fn record(&self) -> Option<&RunRecord> {
        match &self.phase {
            Phase::Done(r) => Some(r),
            _ => None,
        }
    }

    /// True once the budget is exhausted and the record is closed.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done(_))
    }

    /// Snapshot for `status` queries.
    pub fn status(&self) -> SessionStatus {
        let maximize = self.cfg.problem.maximize;
        let native = |v: f64| if maximize { -v } else { v };
        match &self.phase {
            Phase::Design(_) => SessionStatus {
                phase: "design",
                turn: self.journal.len(),
                cycles: 0,
                n_data: 0,
                best_y: None,
                clock: 0.0,
            },
            Phase::Cycle { engine, .. } => SessionStatus {
                phase: "cycle",
                turn: self.journal.len(),
                cycles: engine.cycle_index(),
                n_data: engine.n_data(),
                best_y: Some(native(engine.best_min())),
                clock: engine.now(),
            },
            Phase::Done(r) => SessionStatus {
                phase: "done",
                turn: self.journal.len(),
                cycles: r.n_cycles(),
                n_data: r.n_simulations(),
                best_y: Some(r.best_y()),
                clock: r.final_clock,
            },
            Phase::Poisoned => SessionStatus {
                phase: "poisoned",
                turn: self.journal.len(),
                cycles: 0,
                n_data: 0,
                best_y: None,
                clock: 0.0,
            },
        }
    }

    /// The points the client must evaluate next: the initial design in
    /// the design phase, the stepper's proposal in the cycle phase.
    /// Idempotent — asking again without telling returns the same
    /// batch (the proposal is cached, never recomputed, so the virtual
    /// clock is charged exactly once per cycle).
    pub fn ask(&mut self) -> Result<AskReply, SessionError> {
        let turn = self.journal.len();
        match &mut self.phase {
            Phase::Design(prep) => {
                let points = prep.design_native().to_vec();
                Ok(AskReply { turn, q: points.len(), points })
            }
            Phase::Cycle { engine, stepper, pending } => {
                if pending.is_none() {
                    let unit = stepper.propose(engine);
                    let native = engine.to_native(&unit);
                    *pending = Some(PendingBatch { unit, native });
                }
                let batch = pending.as_ref().expect("just filled");
                Ok(AskReply { turn, q: batch.native.len(), points: batch.native.clone() })
            }
            Phase::Done(_) => Err(SessionError::Finished),
            Phase::Poisoned => Err(SessionError::Poisoned),
        }
    }

    /// Report the evaluated values (native orientation, aligned with
    /// the last ask's points) for `turn`. Non-finite values route
    /// through the engine's quarantine/imputation machinery exactly as
    /// a faulty in-process rank would: NaN/Inf are counted, excluded
    /// from the dataset (design phase) or imputed constant-liar style
    /// (cycle phase), and surface in the record's fault counters.
    ///
    /// An explicit `ask` beforehand is not required — a tell on a
    /// fresh cycle proposes the batch itself, which is what makes a
    /// journal replay a plain sequence of tells.
    pub fn tell(&mut self, turn: usize, values: &[f64]) -> Result<(), SessionError> {
        let expected = self.journal.len();
        if turn != expected {
            return Err(SessionError::WrongTurn { expected, got: turn });
        }
        match &mut self.phase {
            Phase::Design(prep) => {
                let n = prep.design_native().len();
                if values.len() != n {
                    return Err(SessionError::WrongPointCount { expected: n, got: values.len() });
                }
                let maximize = self.cfg.problem.maximize;
                let sim = self.cfg.budget.sim_seconds;
                let report = synth_report(values, maximize, sim);
                // All-failed designs must NOT consume the prepared
                // engine: surface the typed error and stay tellable.
                if report.outcomes.iter().all(|o| o.value.is_none()) {
                    return Err(SessionError::EmptyDesign);
                }
                prep.emit_report_faults(&report);
                let prep = match std::mem::replace(&mut self.phase, Phase::Poisoned) {
                    Phase::Design(p) => p,
                    _ => unreachable!("phase checked above"),
                };
                let engine = prep.absorb_design(&report)?;
                let stepper = BatchStepper::new(self.cfg.algorithm, &engine);
                self.journal.push(values.to_vec());
                self.phase =
                    Phase::Cycle { engine: Box::new(engine), stepper, pending: None };
                self.close_if_exhausted();
                Ok(())
            }
            Phase::Cycle { engine, stepper, pending } => {
                if pending.is_none() {
                    let unit = stepper.propose(engine);
                    let native = engine.to_native(&unit);
                    *pending = Some(PendingBatch { unit, native });
                }
                let n = pending.as_ref().expect("just filled").unit.len();
                if values.len() != n {
                    return Err(SessionError::WrongPointCount { expected: n, got: values.len() });
                }
                let batch = pending.take().expect("just filled");
                let maximize = self.cfg.problem.maximize;
                let sim = self.cfg.budget.sim_seconds;
                let report = synth_report(values, maximize, sim);
                engine.emit_report_faults(&report);
                engine.commit_report(batch.unit, &report);
                stepper.after_commit(engine);
                self.journal.push(values.to_vec());
                self.close_if_exhausted();
                Ok(())
            }
            Phase::Done(_) => Err(SessionError::Finished),
            Phase::Poisoned => Err(SessionError::Poisoned),
        }
    }

    /// Transition to `Done` when the stopping rule says so — mirrors
    /// the `while should_continue` exit in `drive_stepper`.
    fn close_if_exhausted(&mut self) {
        let exhausted = match &self.phase {
            Phase::Cycle { engine, .. } => !engine.should_continue(),
            _ => false,
        };
        if exhausted {
            let engine = match std::mem::replace(&mut self.phase, Phase::Poisoned) {
                Phase::Cycle { engine, .. } => engine,
                _ => unreachable!("phase checked above"),
            };
            self.phase = Phase::Done(Box::new(engine.finish()));
        }
    }

    // -----------------------------------------------------------------
    // Checkpointing
    // -----------------------------------------------------------------

    /// Serialize the session as one self-contained JSON line:
    /// `{"event":"pbo-session","schema":2,"key":…,"id":…,"config":…,
    /// "tells":[…],"qs":[…]}`. The derived state (GP, clock, trust
    /// region) is deliberately absent — it is recomputed by replay,
    /// which is what makes the resume bit-identical instead of
    /// approximately restored. `"qs"` records each turn's batch size
    /// (design turn = design size); every tell's width is checked
    /// against the pending batch when absorbed, so the list is
    /// redundant with the tells by construction — recording it anyway
    /// lets the reader reject a truncated or spliced journal before
    /// replay, and gives variable-q turns an explicit wire trace.
    pub fn to_checkpoint_line(&self, id: &str) -> String {
        let mut out = String::with_capacity(256 + 32 * self.journal.len());
        let _ = write!(out, "{{\"event\":\"pbo-session\",\"schema\":{SESSION_SCHEMA_VERSION}");
        out.push_str(",\"key\":");
        push_str_literal(&mut out, &self.cfg.key());
        out.push_str(",\"id\":");
        push_str_literal(&mut out, id);
        out.push_str(",\"config\":");
        self.cfg.encode_json(&mut out);
        out.push_str(",\"tells\":[");
        for (i, tell) in self.journal.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64_array(&mut out, tell);
        }
        out.push_str("],\"qs\":[");
        for (i, tell) in self.journal.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", tell.len());
        }
        out.push_str("]}");
        out
    }

    /// Rebuild a session from its checkpoint line: parse, validate the
    /// content-addressed key, then replay the journal. Every failure —
    /// malformed JSON, schema drift, key mismatch, a journal the
    /// engine rejects — is the typed [`SessionError::Corrupt`], so a
    /// damaged checkpoint quarantines one session instead of panicking
    /// the server.
    pub fn from_checkpoint_line(line: &str) -> Result<(String, SessionState), SessionError> {
        let corrupt = |m: String| SessionError::Corrupt(m);
        let v = parse(line.trim_end()).map_err(|e| corrupt(format!("parse: {e}")))?;
        if v.get("event").and_then(Json::as_str) != Some("pbo-session") {
            return Err(corrupt("not a pbo-session line".into()));
        }
        // Schema 1 (pre-variable-q, no "qs") is still accepted: the
        // per-turn batch sizes it omits are implied by the tell widths,
        // which replay validates against each pending batch anyway.
        let schema = v.get("schema").and_then(Json::as_u64).unwrap_or(0);
        if !(1..=SESSION_SCHEMA_VERSION as u64).contains(&schema) {
            return Err(corrupt(format!(
                "unsupported session schema {schema} (expected 1..={SESSION_SCHEMA_VERSION})"
            )));
        }
        let id = v
            .require("id")
            .and_then(|j| j.as_str().ok_or_else(|| "id must be a string".to_string()))
            .map_err(corrupt)?
            .to_string();
        let cfg = v
            .require("config")
            .and_then(SessionConfig::from_json)
            .map_err(|e| corrupt(format!("config: {e}")))?;
        let key = v
            .require("key")
            .and_then(|j| j.as_str().ok_or_else(|| "key must be a string".to_string()))
            .map_err(corrupt)?;
        if key != cfg.key() {
            return Err(corrupt(format!(
                "key mismatch: line says {key}, config hashes to {}",
                cfg.key()
            )));
        }
        let tells: Vec<Vec<f64>> = v
            .require("tells")
            .map_err(corrupt)?
            .as_array()
            .ok_or_else(|| corrupt("tells must be an array".into()))?
            .iter()
            .map(|t| f64_array(t).ok_or_else(|| corrupt("tells entries must be numbers".into())))
            .collect::<Result<_, _>>()?;
        if schema >= 2 {
            let qs: Vec<usize> = v
                .require("qs")
                .map_err(corrupt)?
                .as_array()
                .ok_or_else(|| corrupt("qs must be an array".into()))?
                .iter()
                .map(|q| q.as_usize().ok_or_else(|| corrupt("qs entries must be counts".into())))
                .collect::<Result<_, _>>()?;
            if qs.len() != tells.len()
                || qs.iter().zip(&tells).any(|(&q, tell)| q != tell.len())
            {
                return Err(corrupt(format!(
                    "qs ({qs:?}) disagree with the tell widths — truncated or spliced journal"
                )));
            }
        }
        let state = replay(cfg, &tells)?;
        Ok((id, state))
    }
}

/// Build the [`BatchReport`] a remote tell implies: one healthy,
/// single-attempt outcome per finite value; NaN/Inf become quarantined
/// failures (the remote evaluator's retries, if any, already happened
/// on its side). Values arrive in the client's native orientation and
/// are flipped to minimization exactly as
/// [`pbo_problems::eval_min`] flips in-process evaluations — the flip
/// preserves NaN/Inf classes, so quarantine counters agree with what a
/// local faulty rank would have recorded.
fn synth_report(values: &[f64], maximize: bool, sim_seconds: f64) -> BatchReport {
    let outcomes = values
        .iter()
        .map(|&raw| {
            let v = if maximize { -raw } else { raw };
            let mut faults = FaultCounters::default();
            let value = if v.is_finite() {
                Some(v)
            } else {
                if v.is_nan() {
                    faults.nan_quarantined += 1;
                } else {
                    faults.inf_quarantined += 1;
                }
                None
            };
            PointOutcome { value, virtual_secs: sim_seconds, attempts: 1, faults }
        })
        .collect();
    BatchReport { outcomes }
}

/// Rebuild a session by replaying a journal of tells against a fresh
/// engine. Any rejection along the way means the journal cannot have
/// come from a healthy run of this config → [`SessionError::Corrupt`].
pub fn replay(cfg: SessionConfig, tells: &[Vec<f64>]) -> Result<SessionState, SessionError> {
    let mut state = SessionState::create(cfg)?;
    for (i, values) in tells.iter().enumerate() {
        state
            .tell(i, values)
            .map_err(|e| SessionError::Corrupt(format!("replaying tell {i}: {e}")))?;
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    fn toy_cfg(algorithm: AlgorithmKind, cycles: usize, q: usize, seed: u64) -> SessionConfig {
        let p = SyntheticFn::ackley(3);
        SessionConfig {
            algorithm,
            problem: ProblemSpec::of(&p),
            budget: Budget::cycles(cycles, q).with_initial_samples(6),
            profile: SessionProfile::Test,
            seed,
        }
    }

    /// Drive a session to completion by evaluating its asks with the
    /// real problem, returning the closed record.
    fn drive_locally(mut s: SessionState) -> RunRecord {
        let p = SyntheticFn::ackley(3);
        while !s.is_done() {
            let ask = s.ask().unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            s.tell(ask.turn, &values).unwrap();
        }
        s.record().unwrap().clone()
    }

    #[test]
    fn session_matches_in_process_run() {
        let cfg = toy_cfg(AlgorithmKind::KbQEgo, 3, 2, 42);
        let s = SessionState::create(cfg.clone()).unwrap();
        let remote = drive_locally(s);
        let p = SyntheticFn::ackley(3);
        let local = crate::algorithms::run_algorithm_observed(
            cfg.algorithm,
            &p,
            &cfg.budget,
            cfg.profile.algo_config(),
            cfg.seed,
            crate::observe::NullObserver,
        )
        .unwrap();
        assert_eq!(remote.to_json_line(), local.to_json_line());
    }

    #[test]
    fn ask_is_idempotent_until_told() {
        let cfg = toy_cfg(AlgorithmKind::RandomSearch, 2, 2, 7);
        let mut s = SessionState::create(cfg).unwrap();
        let a1 = s.ask().unwrap();
        let a2 = s.ask().unwrap();
        assert_eq!(a1, a2);
        let values = vec![1.0; a1.points.len()];
        s.tell(a1.turn, &values).unwrap();
        let a3 = s.ask().unwrap();
        assert_ne!(a1.turn, a3.turn);
    }

    #[test]
    fn wrong_turn_and_count_are_typed_and_harmless() {
        let cfg = toy_cfg(AlgorithmKind::RandomSearch, 2, 2, 8);
        let mut s = SessionState::create(cfg).unwrap();
        let ask = s.ask().unwrap();
        assert_eq!(
            s.tell(ask.turn + 1, &vec![0.0; ask.points.len()]),
            Err(SessionError::WrongTurn { expected: 0, got: 1 })
        );
        assert_eq!(
            s.tell(ask.turn, &[0.0]),
            Err(SessionError::WrongPointCount { expected: ask.points.len(), got: 1 })
        );
        // The session is still drivable after both rejections.
        s.tell(ask.turn, &vec![1.5; ask.points.len()]).unwrap();
        assert_eq!(s.turn(), 1);
    }

    #[test]
    fn all_nan_design_keeps_session_tellable() {
        let cfg = toy_cfg(AlgorithmKind::RandomSearch, 1, 2, 9);
        let mut s = SessionState::create(cfg).unwrap();
        let ask = s.ask().unwrap();
        let nans = vec![f64::NAN; ask.points.len()];
        assert_eq!(s.tell(ask.turn, &nans), Err(SessionError::EmptyDesign));
        // Retry with healthy values succeeds on the same turn.
        s.tell(ask.turn, &vec![2.0; ask.points.len()]).unwrap();
        assert_eq!(s.status().phase, "cycle");
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let p = SyntheticFn::ackley(3);
        let cfg = toy_cfg(AlgorithmKind::Turbo, 4, 2, 11);
        // Drive two tells, checkpoint, resume, finish both copies.
        let mut a = SessionState::create(cfg).unwrap();
        for _ in 0..2 {
            let ask = a.ask().unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            a.tell(ask.turn, &values).unwrap();
        }
        let line = a.to_checkpoint_line("s-1");
        let (id, b) = SessionState::from_checkpoint_line(&line).unwrap();
        assert_eq!(id, "s-1");
        assert_eq!(b.turn(), a.turn());
        let ra = drive_locally(a);
        let rb = drive_locally(b);
        assert_eq!(ra.to_json_line(), rb.to_json_line());
    }

    #[test]
    fn corrupt_checkpoints_yield_typed_errors() {
        let cfg = toy_cfg(AlgorithmKind::RandomSearch, 1, 1, 3);
        let s = SessionState::create(cfg).unwrap();
        let line = s.to_checkpoint_line("x");
        // Truncation, garbage, wrong schema, tampered key.
        for bad in [
            &line[..line.len() / 2],
            "not json at all",
            &line.replace("\"schema\":2", "\"schema\":99"),
            &line.replace(&s.config().key(), "0000000000000000"),
        ] {
            match SessionState::from_checkpoint_line(bad) {
                Err(SessionError::Corrupt(_)) => {}
                Err(other) => panic!("expected Corrupt, got {other:?}"),
                Ok(_) => panic!("expected Corrupt, got Ok"),
            }
        }
    }

    #[test]
    fn schema_1_checkpoints_without_qs_still_resume() {
        let p = SyntheticFn::ackley(3);
        let cfg = toy_cfg(AlgorithmKind::Turbo, 3, 2, 17);
        let mut a = SessionState::create(cfg).unwrap();
        for _ in 0..2 {
            let ask = a.ask().unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            a.tell(ask.turn, &values).unwrap();
        }
        // Reconstruct the pre-variable-q line layout: schema 1, no
        // "qs" field. The content-addressed key is schema-independent
        // (CONFIG_KEY_VERSION), so it must validate unchanged.
        let line = a.to_checkpoint_line("old");
        let qs_start = line.find(",\"qs\":[").unwrap();
        let qs_end = line[qs_start..].find(']').unwrap() + qs_start + 1;
        let v1_line = format!(
            "{}{}",
            line[..qs_start].replace("\"schema\":2", "\"schema\":1"),
            &line[qs_end..]
        );
        let (id, b) = SessionState::from_checkpoint_line(&v1_line).unwrap();
        assert_eq!(id, "old");
        let ra = drive_locally(a);
        let rb = drive_locally(b);
        assert_eq!(ra.to_json_line(), rb.to_json_line());
    }

    #[test]
    fn qs_disagreeing_with_tell_widths_is_corrupt() {
        let p = SyntheticFn::ackley(3);
        let cfg = toy_cfg(AlgorithmKind::RandomSearch, 2, 2, 19);
        let mut s = SessionState::create(cfg).unwrap();
        let ask = s.ask().unwrap();
        let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
        s.tell(ask.turn, &values).unwrap();
        let line = s.to_checkpoint_line("x");
        assert!(line.contains(",\"qs\":[6]"), "{line}");
        for bad in [line.replace(",\"qs\":[6]", ",\"qs\":[5]"),
                    line.replace(",\"qs\":[6]", ",\"qs\":[6,2]"),
                    line.replace(",\"qs\":[6]", ",\"qs\":[]")] {
            match SessionState::from_checkpoint_line(&bad) {
                Err(SessionError::Corrupt(m)) => assert!(m.contains("qs"), "{m}"),
                Err(other) => panic!("expected Corrupt, got {other:?}"),
                Ok(_) => panic!("expected Corrupt, got Ok"),
            }
        }
    }

    #[test]
    fn ask_reply_q_tracks_the_batch_size() {
        let p = SyntheticFn::ackley(3);
        let mut cfg = toy_cfg(AlgorithmKind::HybridQ, 4, 4, 7);
        cfg.budget = Budget::cycles(4, 4).with_initial_samples(6);
        let mut s = SessionState::create(cfg).unwrap();
        let mut qs = Vec::new();
        while !s.is_done() {
            let ask = s.ask().unwrap();
            assert_eq!(ask.q, ask.points.len());
            qs.push(ask.q);
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            s.tell(ask.turn, &values).unwrap();
        }
        assert_eq!(qs[0], 6, "design turn asks the whole design");
        // The adaptive-q hybrid must actually exercise variability
        // somewhere in the run for the variable-q machinery to mean
        // anything (1 <= q <= q_max always holds).
        assert!(qs[1..].iter().all(|&q| (1..=4).contains(&q)), "{qs:?}");
        // And the checkpoint records exactly those sizes.
        let line = s.to_checkpoint_line("h");
        let want: Vec<String> = qs.iter().map(|q| q.to_string()).collect();
        assert!(line.contains(&format!(",\"qs\":[{}]", want.join(","))), "{line}");
    }

    #[test]
    fn config_json_roundtrips() {
        for (algo, maximize) in
            [(AlgorithmKind::KbQEgo, false), (AlgorithmKind::ThompsonSampling, true)]
        {
            let mut cfg = toy_cfg(algo, 5, 3, u64::MAX - 7);
            cfg.problem.maximize = maximize;
            cfg.budget.stopping = if maximize {
                Stopping::VirtualTime(1200.0)
            } else {
                Stopping::Cycles(5)
            };
            let mut s = String::new();
            cfg.encode_json(&mut s);
            let back = SessionConfig::from_json(&parse(&s).unwrap()).unwrap();
            assert_eq!(back.descriptor(), cfg.descriptor());
        }
    }
}
