//! Replayable JSONL trace sink: one event per line, deterministic
//! field order.
//!
//! The workspace vendors no JSON library, so the encoding is
//! hand-rolled: each [`Event`] variant serializes its fields in
//! declaration order, floats print through Rust's shortest-roundtrip
//! `Display` (bit-faithful on re-parse), and non-finite floats encode
//! as `null`. A trace is therefore a stable, diffable function of the
//! event stream — two runs emitting identical events produce
//! byte-identical traces except for the host-measured `wall_ns`
//! payloads.
//!
//! [`validate_line`] is the matching checker used by the CI trace
//! smoke: a strict single-line JSON parser that returns the `event`
//! name, so a run's trace can be verified to parse and reconcile
//! without any external tooling.

use super::{Event, Observer};
use crate::record::FaultCounters;
use std::io::Write;

/// Write a JSON string literal (the few strings we emit are algorithm
/// and problem names, but escape defensively anyway).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an f64: shortest-roundtrip decimal, `null` for non-finite.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn push_fault_counters(out: &mut String, f: &FaultCounters) {
    out.push('{');
    out.push_str(&format!(
        "\"panics\":{},\"nan_quarantined\":{},\"inf_quarantined\":{},\
         \"stragglers\":{},\"timeouts\":{},\"retries\":{},\
         \"imputed\":{},\"dropped\":{},\"virtual_secs_lost\":",
        f.panics,
        f.nan_quarantined,
        f.inf_quarantined,
        f.stragglers,
        f.timeouts,
        f.retries,
        f.imputed,
        f.dropped,
    ));
    push_json_f64(out, f.virtual_secs_lost);
    out.push('}');
}

impl Event {
    /// Encode as one JSON line (no trailing newline), fields in a
    /// deterministic order with `event` first.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"event\":\"");
        s.push_str(self.name());
        s.push('"');
        match self {
            Event::RunStarted { algorithm, problem, seed, q, dim } => {
                s.push_str(",\"algorithm\":");
                push_json_str(&mut s, algorithm);
                s.push_str(",\"problem\":");
                push_json_str(&mut s, problem);
                s.push_str(&format!(",\"seed\":{seed},\"q\":{q},\"dim\":{dim}"));
            }
            Event::DesignEvaluated { requested, evaluated, faults } => {
                s.push_str(&format!(
                    ",\"requested\":{requested},\"evaluated\":{evaluated},\"faults\":"
                ));
                push_fault_counters(&mut s, faults);
            }
            Event::CycleStarted { cycle, clock } => {
                s.push_str(&format!(",\"cycle\":{cycle},\"clock\":"));
                push_json_f64(&mut s, *clock);
            }
            Event::FitCompleted {
                cycle,
                n,
                full,
                restarts,
                evals,
                mll,
                fallback,
                wall_ns,
                virtual_s,
            } => {
                s.push_str(&format!(
                    ",\"cycle\":{cycle},\"n\":{n},\"full\":{full},\
                     \"restarts\":{restarts},\"evals\":{evals},\"mll\":"
                ));
                push_json_f64(&mut s, *mll);
                s.push_str(&format!(
                    ",\"fallback\":{fallback},\"wall_ns\":{wall_ns},\"virtual_s\":"
                ));
                push_json_f64(&mut s, *virtual_s);
            }
            Event::AcquisitionCompleted {
                cycle,
                algo,
                q,
                restart_shortfall,
                wall_ns,
                virtual_s,
            } => {
                s.push_str(&format!(",\"cycle\":{cycle},\"algo\":"));
                push_json_str(&mut s, algo);
                s.push_str(&format!(
                    ",\"q\":{q},\"restart_shortfall\":{restart_shortfall},\
                     \"wall_ns\":{wall_ns},\"virtual_s\":"
                ));
                push_json_f64(&mut s, *virtual_s);
            }
            Event::PointFaulted { index, attempts, recovered, faults } => {
                s.push_str(&format!(
                    ",\"index\":{index},\"attempts\":{attempts},\
                     \"recovered\":{recovered},\"faults\":"
                ));
                push_fault_counters(&mut s, faults);
            }
            Event::BatchEvaluated { cycle, n_points, n_evals, faults, virtual_s } => {
                s.push_str(&format!(
                    ",\"cycle\":{cycle},\"n_points\":{n_points},\
                     \"n_evals\":{n_evals},\"faults\":"
                ));
                push_fault_counters(&mut s, faults);
                s.push_str(",\"virtual_s\":");
                push_json_f64(&mut s, *virtual_s);
            }
            Event::IncumbentImproved { cycle, best_y_min } => {
                s.push_str(&format!(",\"cycle\":{cycle},\"best_y_min\":"));
                push_json_f64(&mut s, *best_y_min);
            }
            Event::RunFinished { n_cycles, n_simulations, best_y_min, final_clock } => {
                s.push_str(&format!(
                    ",\"n_cycles\":{n_cycles},\"n_simulations\":{n_simulations},\
                     \"best_y_min\":"
                ));
                push_json_f64(&mut s, *best_y_min);
                s.push_str(",\"final_clock\":");
                push_json_f64(&mut s, *final_clock);
            }
        }
        s.push('}');
        s
    }
}

/// JSONL trace sink: one event per line to any [`Write`] target.
///
/// The writer buffers internally; lines are flushed on drop or via
/// [`JsonlTraceWriter::flush`]. An I/O failure poisons the sink (it
/// stops writing and remembers the error) rather than panicking
/// mid-run — observation must never take a run down.
pub struct JsonlTraceWriter<W: Write> {
    out: std::io::BufWriter<W>,
    lines: u64,
    error: Option<std::io::ErrorKind>,
}

impl<W: Write> JsonlTraceWriter<W> {
    /// Wrap a write target.
    pub fn new(target: W) -> Self {
        JsonlTraceWriter { out: std::io::BufWriter::new(target), lines: 0, error: None }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered, if any.
    pub fn io_error(&self) -> Option<std::io::ErrorKind> {
        self.error
    }

    /// Flush buffered lines to the target.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl JsonlTraceWriter<std::fs::File> {
    /// Create (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlTraceWriter::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> Observer for JsonlTraceWriter<W> {
    fn enabled(&self) -> bool {
        self.error.is_none()
    }

    fn on_event(&mut self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e.kind()),
        }
    }
}

impl<W: Write> Drop for JsonlTraceWriter<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

// ---------------------------------------------------------------------
// Trace validation (CI smoke): a strict single-line JSON parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let c = self.peek().ok_or_else(|| self.err("unexpected end"))?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bump()? == c {
            Ok(())
        } else {
            self.i -= 1;
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(s),
                b'\\' => match self.bump()? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            v = v * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad \\u escape"))?;
                        }
                        s.push(char::from_u32(v).ok_or_else(|| self.err("bad codepoint"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                c => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let start = self.i - 1;
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xF0 => 4,
                        c if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    self.i = start + len;
                    if self.i > self.b.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
        text.parse::<f64>().map_err(|_| self.err("invalid number"))?;
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'"' => self.string().map(|_| ()),
            b'{' => self.object().map(|_| ()),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            _ => self.number(),
        }
    }

    /// Parse an object, returning its `event` member if present.
    fn object(&mut self) -> Result<Option<String>, String> {
        self.expect(b'{')?;
        let mut event = None;
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(event);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            if key == "event" {
                let start = self.i;
                if self.peek() == Some(b'"') {
                    event = Some(self.string()?);
                } else {
                    self.i = start;
                    self.value()?;
                }
            } else {
                self.value()?;
            }
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(event),
                _ => {
                    self.i -= 1;
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

/// Validate one trace line as strict single-line JSON (no insignificant
/// whitespace — exactly what [`Event::to_json_line`] emits) and return
/// its `event` name.
pub fn validate_line(line: &str) -> Result<String, String> {
    let mut p = Parser { b: line.as_bytes(), i: 0 };
    let event = p.object()?;
    if p.i != p.b.len() {
        return Err(p.err("trailing bytes after object"));
    }
    event.ok_or_else(|| "line has no \"event\" field".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStarted {
                algorithm: "kb-q-ego".into(),
                problem: "ackley-4d \"x\"".into(),
                seed: 7,
                q: 2,
                dim: 4,
            },
            Event::DesignEvaluated {
                requested: 8,
                evaluated: 7,
                faults: FaultCounters { dropped: 1, ..FaultCounters::default() },
            },
            Event::CycleStarted { cycle: 0, clock: 0.0 },
            Event::FitCompleted {
                cycle: 0,
                n: 7,
                full: true,
                restarts: 3,
                evals: 120,
                mll: -12.75,
                fallback: false,
                wall_ns: 12345,
                virtual_s: 1.0,
            },
            Event::AcquisitionCompleted {
                cycle: 0,
                algo: "kb-q-ego".into(),
                q: 2,
                restart_shortfall: 0,
                wall_ns: 999,
                virtual_s: 0.25,
            },
            Event::PointFaulted {
                index: 1,
                attempts: 3,
                recovered: true,
                faults: FaultCounters { retries: 2, panics: 2, ..FaultCounters::default() },
            },
            Event::BatchEvaluated {
                cycle: 0,
                n_points: 2,
                n_evals: 2,
                faults: FaultCounters::default(),
                virtual_s: 10.6,
            },
            Event::IncumbentImproved { cycle: 0, best_y_min: -0.5 },
            Event::RunFinished {
                n_cycles: 1,
                n_simulations: 9,
                best_y_min: f64::NAN,
                final_clock: 11.85,
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips_through_the_validator() {
        for e in sample_events() {
            let line = e.to_json_line();
            let name = validate_line(&line).unwrap_or_else(|err| {
                panic!("line failed to validate: {err}\n  {line}")
            });
            assert_eq!(name, e.name());
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = sample_events();
        let b = sample_events();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_json_line(), y.to_json_line());
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let e = Event::IncumbentImproved { cycle: 0, best_y_min: f64::INFINITY };
        assert!(e.to_json_line().contains("\"best_y_min\":null"));
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.1 + 0.2, 1.0 / 3.0, 1e-300, -5.5e17, 10.600000000000001] {
            let mut s = String::new();
            push_json_f64(&mut s, v);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",                          // no event field
            "not json",
            "{\"event\":\"x\"} trailing",
            "{\"event\":\"x\",}",
            "{\"event\":\"x\",\"v\":nul}",
            "{\"event\":\"x\",\"v\":1.2.3}",
        ] {
            assert!(validate_line(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn writer_emits_one_line_per_event_and_flushes_on_drop() {
        let mut buf = Vec::new();
        {
            let mut w = JsonlTraceWriter::new(&mut buf);
            for e in sample_events() {
                w.on_event(&e);
            }
            assert_eq!(w.lines_written(), 9);
            assert!(w.enabled());
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 9);
        for l in lines {
            validate_line(l).unwrap();
        }
    }

    #[test]
    fn writer_poisons_on_io_error_instead_of_panicking() {
        struct Fail;
        impl Write for Fail {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("boom"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Zero-capacity BufWriter is not possible; force the write
        // through with a long line by emitting many events.
        let mut w = JsonlTraceWriter::new(Fail);
        for _ in 0..100_000 {
            w.on_event(&Event::CycleStarted { cycle: 0, clock: 0.0 });
            if !w.enabled() {
                break;
            }
        }
        assert!(w.io_error().is_some());
        assert!(!w.enabled());
    }
}
