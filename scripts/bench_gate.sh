#!/bin/bash
# Performance regression gate over the criterion-shim benches.
#
#   scripts/bench_gate.sh baseline   # record target/bench_gate/baseline.jsonl
#   scripts/bench_gate.sh check      # re-run same profile, fail on >15% regression
#   scripts/bench_gate.sh smoke      # one bench run + self-check of the gate machinery
#
# Profiles (BENCH_GATE_PROFILE=quick|standard|full, default quick):
#   quick     fit_scaling only, PBO_BENCH_SMOKE truncation — the ci.sh gate
#   standard  fit_scaling + acquisition_scaling + sparse_scaling, smoke sizes
#   full      all three families at full measurement sizes (minutes-scale;
#             for recording the real BENCH_*.json baselines, not CI)
#
# The gate pins a handful of headline cases (below) and compares their
# per-iteration minimum against the recorded baseline; p50/p95 are
# reported alongside for context. `min_ns` drives the pass/fail because
# it is the statistic least sensitive to scheduler noise on a loaded
# host. The point is catching order-of-magnitude rot (an accidentally
# serialized hot path, a lost cache), not micro-benchmarking — real
# measurements live in BENCH_*.json.
#
# Baselines embed an environment manifest (nproc, CPU model, rustc
# version); `check` warns when the current host differs from the one
# the baseline was recorded on.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
PROFILE="${BENCH_GATE_PROFILE:-quick}"
GATE_DIR="target/bench_gate"
BASELINE="${BENCH_GATE_BASELINE:-$GATE_DIR/baseline.jsonl}"
TOL_PCT="${BENCH_GATE_TOL_PCT:-15}"

# Headline cases per bench family. All fit_scaling cases exist under the
# PBO_BENCH_SMOKE truncation; the acquisition/sparse cases are chosen so
# the same id exists in both smoke and full profiles.
PINNED_FIT=(
  "fit_scaling/mll_grad_workspace/64"
  "fit_scaling/fit_workspace/64"
  "fit_scaling/gp_update/256q8"
  "fit_scaling/chol_blocked/512"
)
PINNED_ACQ=(
  "acq_kb_q_ego/2"
  "acq_mc_qei_joint/2"
  "acq_gp_ucb_pe/2"
)
PINNED_SPARSE=(
  "sparse_scaling/sparse_build/1024"
  "sparse_scaling/sparse_predict_many_q256/1024"
)

case "$PROFILE" in
  quick)
    BENCHES=(fit_scaling)
    PINNED=("${PINNED_FIT[@]}")
    SMOKE=1
    ;;
  standard)
    BENCHES=(fit_scaling acquisition_scaling sparse_scaling)
    PINNED=("${PINNED_FIT[@]}" "${PINNED_ACQ[@]}" "${PINNED_SPARSE[@]}")
    SMOKE=1
    ;;
  full)
    BENCHES=(fit_scaling acquisition_scaling sparse_scaling)
    PINNED=("${PINNED_FIT[@]}" "${PINNED_ACQ[@]}" "${PINNED_SPARSE[@]}")
    SMOKE=0
    ;;
  *)
    echo "bench_gate: unknown profile '$PROFILE' (quick|standard|full)" >&2
    exit 2
    ;;
esac

manifest() { # prints one JSON line describing the host + toolchain
  local cpu="unknown"
  if [[ -r /proc/cpuinfo ]]; then
    cpu="$(awk -F': ' '/model name/ { print $2; exit }' /proc/cpuinfo)"
  fi
  printf '{"manifest":{"profile":"%s","nproc":%s,"cpu":"%s","rustc":"%s","recorded":"%s"}}\n' \
    "$PROFILE" "$(nproc)" "$cpu" "$(rustc -V)" "$(date -u +%FT%TZ)"
}

run_benches() { # out-file
  local out="$1"
  mkdir -p "$(dirname "$out")"
  rm -f "$out"
  # The bench binary runs with the *package* directory as its CWD, so
  # the shim output path must be absolute.
  local out_abs
  out_abs="$(cd "$(dirname "$out")" && pwd)/$(basename "$out")"
  manifest >"$out"
  for bench in "${BENCHES[@]}"; do
    PBO_BENCH_SMOKE="$SMOKE" CRITERION_SHIM_OUT="$out_abs" \
      cargo bench -q -p pbo-bench --bench "$bench" >/dev/null
  done
}

field_ns() { # file id field -> prints value or nothing
  grep -F "\"id\":\"$2\"" "$1" | tail -1 |
    sed -En "s/.*\"$3\":([0-9.eE+-]+).*/\1/p"
}

min_ns() { field_ns "$1" "$2" min_ns; }

show_manifest() { # file label
  local line
  line="$(grep -F '"manifest"' "$1" | tail -1 || true)"
  [[ -n "$line" ]] && echo "bench_gate: $2 environment: $line"
}

check_manifest_drift() { # baseline-file
  local base_line cur_line
  base_line="$(grep -F '"manifest"' "$1" | tail -1 || true)"
  [[ -z "$base_line" ]] && return 0 # pre-manifest baseline: nothing to compare
  cur_line="$(manifest)"
  # Compare everything except the timestamp.
  local strip='s/,"recorded":"[^"]*"//'
  if [[ "$(sed "$strip" <<<"$base_line")" != "$(sed "$strip" <<<"$cur_line")" ]]; then
    echo "bench_gate: WARNING — baseline was recorded on a different environment:" >&2
    echo "  baseline: $base_line" >&2
    echo "  current:  $cur_line" >&2
  fi
}

require_pinned() { # file
  local missing=0
  for id in "${PINNED[@]}"; do
    if [[ -z "$(min_ns "$1" "$id")" ]]; then
      echo "bench_gate: pinned case '$id' missing from $1" >&2
      missing=1
    fi
  done
  return "$missing"
}

compare() { # baseline-file current-file
  local fail=0
  for id in "${PINNED[@]}"; do
    local base cur p50 p95
    base="$(min_ns "$1" "$id")"
    cur="$(min_ns "$2" "$id")"
    p50="$(field_ns "$2" "$id" p50_ns)"
    p95="$(field_ns "$2" "$id" p95_ns)"
    if [[ -z "$base" || -z "$cur" ]]; then
      echo "bench_gate: '$id' missing (baseline='$base' current='$cur')" >&2
      fail=1
      continue
    fi
    if awk -v b="$base" -v c="$cur" -v tol="$TOL_PCT" \
        'BEGIN { exit !(c <= b * (1 + tol / 100)) }'; then
      printf 'bench_gate: OK   %-44s %12.0f -> %12.0f ns (p50 %s, p95 %s)\n' \
        "$id" "$base" "$cur" "${p50:-?}" "${p95:-?}"
    else
      printf 'bench_gate: FAIL %-44s %12.0f -> %12.0f ns (>%s%% slower; p50 %s, p95 %s)\n' \
        "$id" "$base" "$cur" "$TOL_PCT" "${p50:-?}" "${p95:-?}" >&2
      fail=1
    fi
  done
  return "$fail"
}

case "$MODE" in
  baseline)
    run_benches "$BASELINE"
    require_pinned "$BASELINE"
    show_manifest "$BASELINE" baseline
    echo "bench_gate: baseline ($PROFILE profile) recorded at $BASELINE"
    ;;
  check)
    if [[ ! -f "$BASELINE" ]]; then
      echo "bench_gate: no baseline at $BASELINE — run 'scripts/bench_gate.sh baseline' first" >&2
      exit 1
    fi
    check_manifest_drift "$BASELINE"
    current="$GATE_DIR/current.jsonl"
    run_benches "$current"
    compare "$BASELINE" "$current"
    echo "bench_gate: no pinned case regressed by more than ${TOL_PCT}%."
    ;;
  smoke)
    # One bench run exercises capture; self-comparison exercises the
    # parse/compare plumbing without back-to-back-run flakiness.
    smoke_out="$GATE_DIR/smoke.jsonl"
    run_benches "$smoke_out"
    require_pinned "$smoke_out"
    compare "$smoke_out" "$smoke_out"
    echo "bench_gate: smoke ($PROFILE profile) passed."
    ;;
  *)
    echo "usage: [BENCH_GATE_PROFILE=quick|standard|full] scripts/bench_gate.sh [baseline|check|smoke]" >&2
    exit 2
    ;;
esac
