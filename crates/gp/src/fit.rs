//! Marginal-likelihood fitting of the GP hyperparameters.
//!
//! Parameters are optimized in log space:
//! `θ = [log ℓ_1 … log ℓ_d, log s², log σ_n²]` (length `d + 2`).
//!
//! The exact log marginal likelihood with the constant trend profiled
//! out is
//!
//! `L(θ) = −½ rᵀ K_y⁻¹ r − ½ log |K_y| − (n/2) log 2π`,
//!
//! with `r = y − m̂(θ)·1` and `m̂ = (1ᵀK_y⁻¹y)/(1ᵀK_y⁻¹1)`. Because
//! `∂L/∂m = 0` at the profiled optimum, the gradient with respect to the
//! kernel parameters computed at fixed `m̂` is the exact total gradient
//! (envelope theorem), so the analytic gradient below treats `r` as
//! constant in `θ` apart from the kernel terms:
//!
//! `∂L/∂θ_j = ½ αᵀ (∂K_y/∂θ_j) α − ½ tr(K_y⁻¹ ∂K_y/∂θ_j)`, `α = K_y⁻¹ r`.
//!
//! Fitting follows the paper's two regimes:
//! - [`fit`]: full multi-start optimization at the start of a cycle,
//! - [`refit_warm`]: reduced-budget warm start from the current values
//!   (the "partial fit" used inside the Kriging-Believer loop).
//!
//! Both drive the optimizer through the cached-distance, inverse-free
//! evaluation in [`crate::workspace`] (wrapped in a one-point
//! memoization, since line searches re-request accepted points);
//! [`mll_and_grad`] below is the straightforward quadratic-loop
//! reference implementation the fast path is property-tested against.

use crate::gp::GaussianProcess;
use crate::kernel::{Kernel, KernelType};
use crate::sparse::SparseGaussianProcess;
use crate::workspace::{mll_and_grad_ws, mll_value_ws, FitWorkspace};
use crate::{GpError, Result};
use pbo_linalg::vec_ops::{dot, mean, variance};
use pbo_linalg::{Cholesky, Matrix};
use pbo_opt::lbfgs::LbfgsConfig;
use pbo_opt::{Bounds, GradObjective, MemoGradObjective};
use pbo_sampling::SeedStream;
use rand::Rng;
use std::cell::RefCell;

/// Hyperparameter bounds and fitting budgets.
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Kernel family (Matérn-5/2 in the paper).
    pub family: KernelType,
    /// Random restarts for the full fit (in addition to the warm start).
    pub restarts: usize,
    /// L-BFGS iterations per restart for the full fit.
    pub max_iters: usize,
    /// L-BFGS iterations for the reduced warm refit.
    pub warm_iters: usize,
    /// Bounds on log lengthscales.
    pub log_ls_bounds: (f64, f64),
    /// Bounds on log outputscale.
    pub log_os_bounds: (f64, f64),
    /// Bounds on log noise variance.
    pub log_noise_bounds: (f64, f64),
    /// When set, fit the hyperparameters on a random subset of at most
    /// this many points (predictions still use all data). The paper's
    /// discussion (Sec. 4) names data subsetting as the standard remedy
    /// for the growing fitting cost.
    pub max_fit_points: Option<usize>,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            family: KernelType::Matern52,
            restarts: 3,
            max_iters: 50,
            warm_iters: 10,
            log_ls_bounds: ((5e-3f64).ln(), (20.0f64).ln()),
            log_os_bounds: ((1e-3f64).ln(), (100.0f64).ln()),
            log_noise_bounds: ((1e-8f64).ln(), (1.0f64).ln()),
            max_fit_points: None,
        }
    }
}

/// Diagnostics from a fitting call.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Best log marginal likelihood reached.
    pub mll: f64,
    /// Objective/gradient evaluations spent.
    pub evals: usize,
    /// Number of local optimizations run.
    pub starts: usize,
}

/// Pack kernel + noise into the log-parameter vector.
pub fn pack(kernel: &Kernel, noise: f64) -> Vec<f64> {
    let mut p: Vec<f64> = kernel.lengthscales.iter().map(|v| v.ln()).collect();
    p.push(kernel.outputscale.ln());
    p.push(noise.ln());
    p
}

/// Unpack a log-parameter vector into kernel + noise.
pub fn unpack(family: KernelType, params: &[f64]) -> (Kernel, f64) {
    let d = params.len() - 2;
    let kernel = Kernel {
        family,
        outputscale: params[d].exp(),
        lengthscales: params[..d].iter().map(|v| v.exp()).collect(),
    };
    (kernel, params[d + 1].exp())
}

/// Exact log marginal likelihood and its gradient in log-parameter
/// space, on standardized targets.
pub fn mll_and_grad(
    family: KernelType,
    x: &Matrix,
    y_std: &[f64],
    params: &[f64],
) -> Result<(f64, Vec<f64>)> {
    let n = x.rows();
    let d = x.cols();
    if params.len() != d + 2 {
        return Err(GpError::BadHyperparameters(format!(
            "{} params for dim {d}",
            params.len()
        )));
    }
    let (kernel, noise) = unpack(family, params);
    let k_kernel = kernel.matrix(x);
    let mut ky = k_kernel.clone();
    ky.add_diag(noise);
    let chol = Cholesky::factor(&ky)?;

    // Profiled trend and weights.
    let ones = vec![1.0; n];
    let kinv_ones = chol.solve(&ones)?;
    let kinv_y = chol.solve(y_std)?;
    let denom = dot(&ones, &kinv_ones).max(1e-300);
    let trend = dot(&ones, &kinv_y) / denom;
    let r: Vec<f64> = y_std.iter().map(|v| v - trend).collect();
    let alpha: Vec<f64> = kinv_y.iter().zip(&kinv_ones).map(|(a, b)| a - trend * b).collect();

    let mll = -0.5 * dot(&r, &alpha)
        - 0.5 * chol.log_det()
        - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // Gradient: W = α αᵀ − K_y⁻¹ contracted with each ∂K_y/∂θ.
    let kinv = chol.inverse();
    let mut grad = vec![0.0; d + 2];

    // Lengthscales: off-diagonal pairs only (d_j = 0 on the diagonal).
    let inv_ls2: Vec<f64> =
        kernel.lengthscales.iter().map(|l| 1.0 / (l * l)).collect();
    for a in 0..n {
        for b in 0..a {
            let w = alpha[a] * alpha[b] - kinv[(a, b)];
            let ra = x.row(a);
            let rb = x.row(b);
            let rdist = kernel.scaled_dist(ra, rb);
            let gf = kernel.outputscale * family.grad_factor(rdist);
            // Symmetric pair counted once => factor 2 cancels the ½.
            for j in 0..d {
                let dj = ra[j] - rb[j];
                grad[j] += w * gf * dj * dj * inv_ls2[j];
            }
        }
    }
    // Outputscale: ∂K_y/∂log s² = K_kernel.
    let mut g_os = 0.0;
    for a in 0..n {
        for b in 0..n {
            g_os += (alpha[a] * alpha[b] - kinv[(a, b)]) * k_kernel[(a, b)];
        }
    }
    grad[d] = 0.5 * g_os;
    // Noise: ∂K_y/∂log σ_n² = σ_n² I.
    let mut g_n = 0.0;
    for a in 0..n {
        g_n += alpha[a] * alpha[a] - kinv[(a, a)];
    }
    grad[d + 1] = 0.5 * noise * g_n;

    Ok((mll, grad))
}

/// Negated-MLL objective over a prepared [`FitWorkspace`].
///
/// `value` takes the gradient-free path (no triangular inverse); both
/// paths reuse the workspace's cached distances and buffers. The
/// interior mutability is sound: the optimizers are single-threaded per
/// objective.
struct NegMllWs<'a> {
    family: KernelType,
    ws: RefCell<&'a mut FitWorkspace>,
    y_std: &'a [f64],
    dim: usize,
}

impl GradObjective for NegMllWs<'_> {
    fn dim(&self) -> usize {
        self.dim + 2
    }
    fn value(&self, p: &[f64]) -> f64 {
        let mut ws = self.ws.borrow_mut();
        match mll_value_ws(self.family, &mut ws, self.y_std, p) {
            Ok(v) => -v,
            Err(_) => f64::INFINITY,
        }
    }
    fn value_grad(&self, p: &[f64]) -> (f64, Vec<f64>) {
        let mut ws = self.ws.borrow_mut();
        match mll_and_grad_ws(self.family, &mut ws, self.y_std, p) {
            Ok((v, g)) => (-v, g.into_iter().map(|gi| -gi).collect()),
            Err(_) => (f64::INFINITY, vec![0.0; p.len()]),
        }
    }
}

/// Log-parameter box from a [`FitConfig`].
fn param_bounds(cfg: &FitConfig, d: usize) -> Bounds {
    let mut lo = vec![cfg.log_ls_bounds.0; d];
    let mut hi = vec![cfg.log_ls_bounds.1; d];
    lo.push(cfg.log_os_bounds.0);
    hi.push(cfg.log_os_bounds.1);
    lo.push(cfg.log_noise_bounds.0);
    hi.push(cfg.log_noise_bounds.1);
    Bounds::new(lo, hi)
}

/// Random initial log-parameters: lengthscales log-uniform in
/// [0.1, 2.0], outputscale 1, noise log-uniform in [1e-6, 1e-2].
fn random_start<R: Rng>(rng: &mut R, d: usize) -> Vec<f64> {
    let mut p = Vec::with_capacity(d + 2);
    for _ in 0..d {
        p.push(rng.gen_range((0.1f64).ln()..(2.0f64).ln()));
    }
    p.push(0.0);
    p.push(rng.gen_range((1e-6f64).ln()..(1e-2f64).ln()));
    p
}

/// Standardize and optionally subsample the fitting data.
fn fitting_view(
    x: &Matrix,
    y: &[f64],
    cfg: &FitConfig,
    seeds: &mut SeedStream,
) -> (Matrix, Vec<f64>) {
    let shift = mean(y);
    let scale = variance(y).sqrt().max(1e-8);
    let y_std: Vec<f64> = y.iter().map(|v| (v - shift) / scale).collect();
    match cfg.max_fit_points {
        Some(cap) if x.rows() > cap => {
            // Uniform subsample without replacement (partial Fisher-Yates).
            let mut rng = seeds.fork_named("fit-subsample").rng();
            let mut idx: Vec<usize> = (0..x.rows()).collect();
            for i in 0..cap {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(cap);
            let mut xs = Matrix::zeros(cap, x.cols());
            let mut ys = Vec::with_capacity(cap);
            for (row, &i) in idx.iter().enumerate() {
                xs.row_mut(row).copy_from_slice(x.row(i));
                ys.push(y_std[i]);
            }
            (xs, ys)
        }
        _ => (x.clone(), y_std),
    }
}

/// Full multi-start fit: returns a ready-to-predict GP on (`x`, `y`).
///
/// `warm` optionally supplies the previous cycle's hyperparameters as an
/// extra start (the paper's full update still benefits from it).
/// Allocates a fresh [`FitWorkspace`]; callers fitting repeatedly (the
/// BO engine, once per cycle) should hold one and use [`fit_with`].
pub fn fit(
    x: &Matrix,
    y: &[f64],
    cfg: &FitConfig,
    warm: Option<(&Kernel, f64)>,
    seeds: &mut SeedStream,
) -> Result<(GaussianProcess, FitReport)> {
    fit_with(x, y, cfg, warm, seeds, &mut FitWorkspace::new())
}

/// [`fit`] with a caller-owned workspace: cached pairwise distances are
/// computed once here and reused by every MLL evaluation of every
/// restart, and the workspace's matrix buffers persist across calls.
pub fn fit_with(
    x: &Matrix,
    y: &[f64],
    cfg: &FitConfig,
    warm: Option<(&Kernel, f64)>,
    seeds: &mut SeedStream,
    workspace: &mut FitWorkspace,
) -> Result<(GaussianProcess, FitReport)> {
    let (kernel, noise, report) = fit_hypers_with(x, y, cfg, warm, seeds, workspace)?;
    let gp = GaussianProcess::new(x.clone(), y, kernel, noise)?;
    Ok((gp, report))
}

/// The hyperparameter half of [`fit_with`]: run the full multi-start
/// MLL optimization and return the winning kernel + noise without
/// building a predictor. [`fit_with`] layers the dense
/// [`GaussianProcess`] on top; [`fit_sparse_with`] layers the sparse
/// inducing-point backend instead. The optimization arithmetic and the
/// seed-stream consumption are identical either way.
pub fn fit_hypers_with(
    x: &Matrix,
    y: &[f64],
    cfg: &FitConfig,
    warm: Option<(&Kernel, f64)>,
    seeds: &mut SeedStream,
    workspace: &mut FitWorkspace,
) -> Result<(Kernel, f64, FitReport)> {
    let d = x.cols();
    let (fx, fy) = fitting_view(x, y, cfg, seeds);
    workspace.prepare(&fx);
    let obj = MemoGradObjective::new(NegMllWs {
        family: cfg.family,
        ws: RefCell::new(workspace),
        y_std: &fy,
        dim: d,
    });
    let bounds = param_bounds(cfg, d);
    let lbfgs = LbfgsConfig { max_iters: cfg.max_iters, ..LbfgsConfig::default() };

    let mut starts: Vec<Vec<f64>> = Vec::new();
    if let Some((k, n)) = warm {
        starts.push(pack(k, n));
    }
    let mut rng = seeds.fork_named("fit-starts").rng();
    // Default deterministic start: mid lengthscales, unit outputscale.
    let mut mid = vec![(0.5f64).ln(); d];
    mid.push(0.0);
    mid.push((1e-4f64).ln());
    starts.push(mid);
    for _ in 0..cfg.restarts {
        starts.push(random_start(&mut rng, d));
    }

    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut evals = 0;
    for s in &starts {
        let mut s = s.clone();
        bounds.clamp(&mut s);
        let r = pbo_opt::lbfgs::minimize(&obj, &bounds, &s, &lbfgs);
        evals += r.evals;
        if r.value.is_finite() && best.as_ref().is_none_or(|(v, _)| r.value < *v) {
            best = Some((r.value, r.x));
        }
    }
    let (neg_mll, params) = best.ok_or_else(|| {
        GpError::BadTrainingData("all hyperparameter starts failed".into())
    })?;
    let (kernel, noise) = unpack(cfg.family, &params);
    Ok((kernel, noise, FitReport { mll: -neg_mll, evals, starts: starts.len() }))
}

/// Full fit with the **sparse inducing-point backend**: hyperparameters
/// are optimized on a subset of at most `m` points (unless the config
/// caps harder already — the standard inducing-scale heuristic, and the
/// reason the fit stays `O(m³)` instead of `O(n³)`), then a
/// [`SparseGaussianProcess`] with `m` greedily selected inducing points
/// is built on the **full** data in `O(n m²)`.
pub fn fit_sparse_with(
    x: &Matrix,
    y: &[f64],
    cfg: &FitConfig,
    m: usize,
    warm: Option<(&Kernel, f64)>,
    seeds: &mut SeedStream,
    workspace: &mut FitWorkspace,
) -> Result<(SparseGaussianProcess, FitReport)> {
    let hyper_cfg = FitConfig {
        max_fit_points: Some(cfg.max_fit_points.unwrap_or(m).min(m)),
        ..cfg.clone()
    };
    let (kernel, noise, report) = fit_hypers_with(x, y, &hyper_cfg, warm, seeds, workspace)?;
    let gp = SparseGaussianProcess::new(x.clone(), y, kernel, noise, m)?;
    Ok((gp, report))
}

/// Reduced-budget warm refit from the GP's current hyperparameters
/// (no restarts). Returns a rebuilt GP on the same data.
pub fn refit_warm(
    gp: &GaussianProcess,
    cfg: &FitConfig,
    seeds: &mut SeedStream,
) -> Result<(GaussianProcess, FitReport)> {
    refit_warm_with(gp, cfg, seeds, &mut FitWorkspace::new())
}

/// [`refit_warm`] with a caller-owned workspace (see [`fit_with`]).
pub fn refit_warm_with(
    gp: &GaussianProcess,
    cfg: &FitConfig,
    seeds: &mut SeedStream,
    workspace: &mut FitWorkspace,
) -> Result<(GaussianProcess, FitReport)> {
    let x = gp.train_x().clone();
    let y = gp.train_y_raw();
    let d = x.cols();
    let (fx, fy) = fitting_view(&x, &y, cfg, seeds);
    workspace.prepare(&fx);
    let obj = MemoGradObjective::new(NegMllWs {
        family: cfg.family,
        ws: RefCell::new(workspace),
        y_std: &fy,
        dim: d,
    });
    let bounds = param_bounds(cfg, d);
    let lbfgs = LbfgsConfig { max_iters: cfg.warm_iters, ..LbfgsConfig::default() };
    let mut start = pack(gp.kernel(), gp.noise());
    bounds.clamp(&mut start);
    let r = pbo_opt::lbfgs::minimize(&obj, &bounds, &start, &lbfgs);
    let params = if r.value.is_finite() { r.x } else { start };
    let (kernel, noise) = unpack(cfg.family, &params);
    let gp = GaussianProcess::new(x, &y, kernel, noise)?;
    Ok((gp, FitReport { mll: -r.value, evals: r.evals, starts: 1 }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        // 2-D quadratic-plus-sine surface.
        let stream = SeedStream::new(seed);
        let mut rng = stream.fork_named("data").rng();
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push((3.0 * a).sin() + (a - 0.4) * (a - 0.4) + 0.5 * b + 7.0);
        }
        (x, y)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (x, y) = training_data(14, 1);
        let shift = mean(&y);
        let scale = variance(&y).sqrt();
        let y_std: Vec<f64> = y.iter().map(|v| (v - shift) / scale).collect();
        let params = vec![
            (0.4f64).ln(),
            (0.9f64).ln(),
            (1.3f64).ln(),
            (1e-3f64).ln(),
        ];
        for family in [KernelType::Matern52, KernelType::Matern32, KernelType::Rbf] {
            let (_, grad) = mll_and_grad(family, &x, &y_std, &params).unwrap();
            let fd = pbo_opt::fd_gradient(
                |p| mll_and_grad(family, &x, &y_std, p).unwrap().0,
                &params,
                1e-6,
            );
            for (i, (a, n)) in grad.iter().zip(&fd).enumerate() {
                assert!(
                    (a - n).abs() < 1e-4 * (1.0 + n.abs()),
                    "{} param {i}: analytic {a} vs fd {n}",
                    family.name()
                );
            }
        }
    }

    #[test]
    fn fit_recovers_reasonable_model() {
        let (x, y) = training_data(30, 2);
        let mut seeds = SeedStream::new(3);
        let cfg = FitConfig::default();
        let (gp, report) = fit(&x, &y, &cfg, None, &mut seeds).unwrap();
        assert!(report.mll.is_finite());
        // In-sample predictions should be accurate for noiseless data.
        let mut worst: f64 = 0.0;
        for i in 0..x.rows() {
            let m = gp.predict_mean(x.row(i));
            worst = worst.max((m - y[i]).abs());
        }
        let spread = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - y.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(worst < 0.1 * spread, "worst in-sample error {worst} vs spread {spread}");
    }

    #[test]
    fn fit_improves_over_default_hypers() {
        let (x, y) = training_data(25, 4);
        let shift = mean(&y);
        let scale = variance(&y).sqrt();
        let y_std: Vec<f64> = y.iter().map(|v| (v - shift) / scale).collect();
        let default_params = vec![(0.5f64).ln(), (0.5f64).ln(), 0.0, (1e-4f64).ln()];
        let (default_mll, _) =
            mll_and_grad(KernelType::Matern52, &x, &y_std, &default_params).unwrap();
        let mut seeds = SeedStream::new(5);
        let (_, report) = fit(&x, &y, &FitConfig::default(), None, &mut seeds).unwrap();
        assert!(report.mll >= default_mll - 1e-6, "{} vs {}", report.mll, default_mll);
    }

    #[test]
    fn warm_refit_does_not_regress_much() {
        let (x, y) = training_data(20, 6);
        let mut seeds = SeedStream::new(7);
        let cfg = FitConfig::default();
        let (gp, full) = fit(&x, &y, &cfg, None, &mut seeds).unwrap();
        let (gp2, warm) = refit_warm(&gp, &cfg, &mut seeds).unwrap();
        assert!(warm.mll >= full.mll - 1e-3, "warm {} vs full {}", warm.mll, full.mll);
        assert_eq!(gp2.n(), gp.n());
    }

    #[test]
    fn subsampled_fit_runs_and_predicts_on_all_data() {
        let (x, y) = training_data(40, 8);
        let cfg = FitConfig { max_fit_points: Some(15), ..Default::default() };
        let mut seeds = SeedStream::new(9);
        let (gp, _) = fit(&x, &y, &cfg, None, &mut seeds).unwrap();
        // Predictions use the full 40-point data set.
        assert_eq!(gp.n(), 40);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let kernel = Kernel {
            family: KernelType::Matern32,
            outputscale: 2.2,
            lengthscales: vec![0.1, 0.7, 3.0],
        };
        let p = pack(&kernel, 1e-4);
        let (k2, n2) = unpack(KernelType::Matern32, &p);
        assert!((n2 - 1e-4).abs() < 1e-18);
        assert!((k2.outputscale - 2.2).abs() < 1e-12);
        for (a, b) in k2.lengthscales.iter().zip(&kernel.lengthscales) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn warm_start_is_used_by_full_fit() {
        let (x, y) = training_data(18, 10);
        let mut seeds = SeedStream::new(11);
        let cfg = FitConfig { restarts: 0, ..Default::default() };
        let (gp, _) = fit(&x, &y, &cfg, None, &mut seeds).unwrap();
        let warm = (gp.kernel().clone(), gp.noise());
        let (_, report) =
            fit(&x, &y, &cfg, Some((&warm.0, warm.1)), &mut seeds).unwrap();
        assert_eq!(report.starts, 2); // warm + deterministic mid start
    }
}
