//! Single-point acquisition criteria with analytic gradients.
//!
//! All criteria are written for the workspace's **minimization**
//! convention: improvement means falling below the incumbent `f_best`.
//! With `u = (f_best − μ)/σ`:
//!
//! - EI: `σ (u Φ(u) + φ(u))`, gradient `−Φ(u) ∇μ + φ(u) ∇σ`,
//! - PI: `Φ(u)`, gradient `φ(u) (−∇μ − u ∇σ)/σ`,
//! - UCB (the paper's exploit-leaning complement in mic-q-EGO): in
//!   minimization form the *lower* confidence bound `−(μ − β σ)`,
//!   gradient `−∇μ + β ∇σ`. β defaults to the common `√2` scale.

use crate::{posterior_with_grad, posterior_with_grad_ws, AcqWorkspace, Acquisition};
use pbo_gp::Surrogate;
use pbo_linalg::Matrix;
use pbo_opt::multistart::{minimize_multistart, MultistartConfig};
use pbo_opt::{BatchObjective, Bounds, GradObjective, OptResult};
use pbo_sampling::normal;
use std::cell::RefCell;

/// EI core on posterior moments. `u Φ(u) + φ(u)` is evaluated directly:
/// for `u → −∞` the two terms cancel to `≈ φ(u)/u²` with only `O(ε u²)`
/// relative error, which stays below `1e-12` for `|u| ≤ 30`, and both
/// factors underflow gracefully past that. The terminal `max(0.0)`
/// clamps the `O(ε φ(u))` negative rounding residue so EI is exactly
/// nonnegative.
#[inline]
fn ei_from_moments(f_best: f64, mean: f64, sigma_raw: f64) -> f64 {
    let sigma = sigma_raw.max(1e-12);
    let u = (f_best - mean) / sigma;
    (sigma * (u * normal::cdf(u) + normal::pdf(u))).max(0.0)
}

/// PI core on posterior moments.
#[inline]
fn pi_from_moments(f_best: f64, mean: f64, sigma_raw: f64) -> f64 {
    let sigma = sigma_raw.max(1e-12);
    normal::cdf((f_best - mean) / sigma)
}

/// Expected Improvement below the incumbent `f_best`.
#[derive(Debug, Clone)]
pub struct ExpectedImprovement {
    /// Incumbent (best observed) objective value.
    pub f_best: f64,
}

impl Acquisition for ExpectedImprovement {
    fn value(&self, gp: &dyn Surrogate, x: &[f64]) -> f64 {
        let (mean, var) = gp.predict(x);
        ei_from_moments(self.f_best, mean, var.sqrt())
    }

    fn value_grad(&self, gp: &dyn Surrogate, x: &[f64]) -> (f64, Vec<f64>) {
        let pg = posterior_with_grad(gp, x);
        let sigma = pg.sigma.max(1e-12);
        let u = (self.f_best - pg.mean) / sigma;
        let (cdf, pdf) = (normal::cdf(u), normal::pdf(u));
        let value = (sigma * (u * cdf + pdf)).max(0.0);
        let grad = pg
            .dmean
            .iter()
            .zip(&pg.dsigma)
            .map(|(dm, ds)| -cdf * dm + pdf * ds)
            .collect();
        (value, grad)
    }

    fn name(&self) -> &'static str {
        "ei"
    }

    fn value_with(&self, gp: &dyn Surrogate, x: &[f64], ws: &mut AcqWorkspace) -> f64 {
        let (mean, var) = gp.predict_with(x, &mut ws.pred);
        ei_from_moments(self.f_best, mean, var.sqrt())
    }

    fn value_grad_into(
        &self,
        gp: &dyn Surrogate,
        x: &[f64],
        ws: &mut AcqWorkspace,
        grad: &mut Vec<f64>,
    ) -> f64 {
        posterior_with_grad_ws(gp, x, ws);
        let pg = ws.posterior();
        let sigma = pg.sigma.max(1e-12);
        let u = (self.f_best - pg.mean) / sigma;
        let (cdf, pdf) = (normal::cdf(u), normal::pdf(u));
        grad.clear();
        grad.extend(pg.dmean.iter().zip(&pg.dsigma).map(|(dm, ds)| -cdf * dm + pdf * ds));
        (sigma * (u * cdf + pdf)).max(0.0)
    }

    fn value_many(&self, gp: &dyn Surrogate, pts: &Matrix, out: &mut [f64]) {
        let (means, vars) = gp.predict_many(pts);
        for (o, (m, v)) in out.iter_mut().zip(means.iter().zip(&vars)) {
            *o = ei_from_moments(self.f_best, *m, v.sqrt());
        }
    }
}

/// Probability of Improvement below `f_best`.
#[derive(Debug, Clone)]
pub struct ProbabilityOfImprovement {
    /// Incumbent objective value.
    pub f_best: f64,
}

impl Acquisition for ProbabilityOfImprovement {
    fn value(&self, gp: &dyn Surrogate, x: &[f64]) -> f64 {
        let (mean, var) = gp.predict(x);
        pi_from_moments(self.f_best, mean, var.sqrt())
    }

    fn value_grad(&self, gp: &dyn Surrogate, x: &[f64]) -> (f64, Vec<f64>) {
        let pg = posterior_with_grad(gp, x);
        let sigma = pg.sigma.max(1e-12);
        let u = (self.f_best - pg.mean) / sigma;
        let pdf = normal::pdf(u);
        let value = normal::cdf(u);
        let grad = pg
            .dmean
            .iter()
            .zip(&pg.dsigma)
            .map(|(dm, ds)| pdf * (-dm - u * ds) / sigma)
            .collect();
        (value, grad)
    }

    fn name(&self) -> &'static str {
        "pi"
    }

    fn value_with(&self, gp: &dyn Surrogate, x: &[f64], ws: &mut AcqWorkspace) -> f64 {
        let (mean, var) = gp.predict_with(x, &mut ws.pred);
        pi_from_moments(self.f_best, mean, var.sqrt())
    }

    fn value_grad_into(
        &self,
        gp: &dyn Surrogate,
        x: &[f64],
        ws: &mut AcqWorkspace,
        grad: &mut Vec<f64>,
    ) -> f64 {
        posterior_with_grad_ws(gp, x, ws);
        let pg = ws.posterior();
        let sigma = pg.sigma.max(1e-12);
        let u = (self.f_best - pg.mean) / sigma;
        let pdf = normal::pdf(u);
        grad.clear();
        grad.extend(
            pg.dmean
                .iter()
                .zip(&pg.dsigma)
                .map(|(dm, ds)| pdf * (-dm - u * ds) / sigma),
        );
        normal::cdf(u)
    }

    fn value_many(&self, gp: &dyn Surrogate, pts: &Matrix, out: &mut [f64]) {
        let (means, vars) = gp.predict_many(pts);
        for (o, (m, v)) in out.iter_mut().zip(means.iter().zip(&vars)) {
            *o = pi_from_moments(self.f_best, *m, v.sqrt());
        }
    }
}

/// Confidence-bound criterion (minimization form: maximize `−μ + β σ`).
#[derive(Debug, Clone)]
pub struct UpperConfidenceBound {
    /// Exploration weight β ≥ 0. 0 = pure posterior-mean exploitation.
    pub beta: f64,
}

impl Default for UpperConfidenceBound {
    fn default() -> Self {
        UpperConfidenceBound { beta: std::f64::consts::SQRT_2 }
    }
}

impl Acquisition for UpperConfidenceBound {
    fn value(&self, gp: &dyn Surrogate, x: &[f64]) -> f64 {
        let (mean, var) = gp.predict(x);
        -mean + self.beta * var.sqrt()
    }

    fn value_grad(&self, gp: &dyn Surrogate, x: &[f64]) -> (f64, Vec<f64>) {
        let pg = posterior_with_grad(gp, x);
        let value = -pg.mean + self.beta * pg.sigma;
        let grad = pg
            .dmean
            .iter()
            .zip(&pg.dsigma)
            .map(|(dm, ds)| -dm + self.beta * ds)
            .collect();
        (value, grad)
    }

    fn name(&self) -> &'static str {
        "ucb"
    }

    fn value_with(&self, gp: &dyn Surrogate, x: &[f64], ws: &mut AcqWorkspace) -> f64 {
        let (mean, var) = gp.predict_with(x, &mut ws.pred);
        -mean + self.beta * var.sqrt()
    }

    fn value_grad_into(
        &self,
        gp: &dyn Surrogate,
        x: &[f64],
        ws: &mut AcqWorkspace,
        grad: &mut Vec<f64>,
    ) -> f64 {
        posterior_with_grad_ws(gp, x, ws);
        let pg = ws.posterior();
        grad.clear();
        grad.extend(
            pg.dmean
                .iter()
                .zip(&pg.dsigma)
                .map(|(dm, ds)| -dm + self.beta * ds),
        );
        -pg.mean + self.beta * pg.sigma
    }

    fn value_many(&self, gp: &dyn Surrogate, pts: &Matrix, out: &mut [f64]) {
        let (means, vars) = gp.predict_many(pts);
        for (o, (m, v)) in out.iter_mut().zip(means.iter().zip(&vars)) {
            *o = -m + self.beta * v.sqrt();
        }
    }
}

thread_local! {
    /// Per-thread acquisition workspace. The multistart fans objective
    /// calls out over scoped threads; a `thread_local!` keeps the
    /// objective `Sync` while giving every worker its own buffers.
    static ACQ_WS: RefCell<AcqWorkspace> = RefCell::new(AcqWorkspace::new());
}

/// Negated single-point acquisition as a minimization objective, with
/// per-thread workspaces for the allocation-free posterior path and
/// batched raw-candidate scoring through [`Acquisition::value_many`].
struct NegAcq<'a> {
    gp: &'a dyn Surrogate,
    acq: &'a dyn Acquisition,
}

impl GradObjective for NegAcq<'_> {
    fn dim(&self) -> usize {
        self.gp.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        ACQ_WS.with(|w| -self.acq.value_with(self.gp, x, &mut w.borrow_mut()))
    }

    fn value_grad(&self, x: &[f64]) -> (f64, Vec<f64>) {
        ACQ_WS.with(|w| {
            let mut grad = Vec::with_capacity(x.len());
            let v = self.acq.value_grad_into(self.gp, x, &mut w.borrow_mut(), &mut grad);
            for g in grad.iter_mut() {
                *g = -*g;
            }
            (-v, grad)
        })
    }
}

impl BatchObjective for NegAcq<'_> {
    fn value_batch(&self, xs: &[f64], out: &mut [f64]) {
        let d = self.gp.dim().max(1);
        debug_assert_eq!(xs.len(), out.len() * d);
        // Candidate blocks arrive every cycle with the same shape; the
        // per-thread workspace matrix absorbs them without reallocating.
        ACQ_WS.with(|w| {
            let ws = &mut *w.borrow_mut();
            ws.pts.reset_zeros(out.len(), d);
            ws.pts.as_mut_slice().copy_from_slice(xs);
            self.acq.value_many(self.gp, &ws.pts, out);
        });
        for o in out.iter_mut() {
            *o = -*o;
        }
    }
}

/// Maximize a single-point acquisition over `bounds` with multistart
/// L-BFGS (the `optimize_acqf` analogue). Returns the maximizer; the
/// reported `value` is the (positive) acquisition value.
///
/// Raw-Sobol candidates are scored in batched GP predictions and the
/// per-start polishes run on `pbo_linalg::parallel` scoped threads; the
/// result is bit-identical for any thread count (see
/// `pbo_opt::multistart`).
pub fn optimize_single(
    gp: &dyn Surrogate,
    acq: &dyn Acquisition,
    bounds: &Bounds,
    warm_starts: &[Vec<f64>],
    cfg: &MultistartConfig,
) -> OptResult {
    let obj = NegAcq { gp, acq };
    let mut r = minimize_multistart(&obj, bounds, warm_starts, cfg);
    r.value = -r.value;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_gp::kernel::{Kernel, KernelType};
    use pbo_gp::GaussianProcess;
    use pbo_linalg::Matrix;

    fn gp_1d() -> GaussianProcess {
        // y = (x - 0.35)^2 sampled coarsely: minimum near 0.35.
        let xs = [0.0, 0.15, 0.5, 0.72, 1.0];
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = xs.iter().map(|&v: &f64| (v - 0.35) * (v - 0.35)).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 1);
        kernel.lengthscales = vec![0.3];
        kernel.outputscale = 1.0;
        GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
    }

    #[test]
    fn ei_nonnegative_and_zero_at_certainty() {
        let gp = gp_1d();
        let ei = ExpectedImprovement { f_best: gp.best_observed(false) };
        for i in 0..=20 {
            let x = [i as f64 / 20.0];
            assert!(ei.value(&gp, &x) >= 0.0);
        }
        // At a training point with tiny noise, σ≈0 and the value there is
        // not below f_best => EI ≈ 0.
        assert!(ei.value(&gp, &[0.0]) < 1e-6);
    }

    #[test]
    fn gradients_match_fd() {
        let gp = gp_1d();
        let f_best = gp.best_observed(false);
        let acqs: Vec<Box<dyn Acquisition>> = vec![
            Box::new(ExpectedImprovement { f_best }),
            Box::new(ProbabilityOfImprovement { f_best }),
            Box::new(UpperConfidenceBound::default()),
        ];
        for acq in &acqs {
            for &p in &[0.22, 0.4, 0.63, 0.88] {
                let (_, g) = acq.value_grad(&gp, &[p]);
                let fd = pbo_opt::fd_gradient(|x| acq.value(&gp, x), &[p], 1e-6);
                assert!(
                    (g[0] - fd[0]).abs() < 1e-4 * (1.0 + fd[0].abs()),
                    "{} at {p}: {} vs {}",
                    acq.name(),
                    g[0],
                    fd[0]
                );
            }
        }
    }

    #[test]
    fn optimize_ei_proposes_near_minimum_region() {
        let gp = gp_1d();
        let ei = ExpectedImprovement { f_best: gp.best_observed(false) };
        let bounds = Bounds::unit(1);
        let r = optimize_single(&gp, &ei, &bounds, &[], &MultistartConfig::default());
        assert!(r.value > 0.0, "EI at proposal must be positive, got {}", r.value);
        // With data on both sides, the proposal falls inside the box.
        assert!(bounds.contains(&r.x));
        // EI at the proposal beats EI at a handful of reference points.
        for &p in &[0.05, 0.5, 0.95] {
            assert!(r.value >= ei.value(&gp, &[p]) - 1e-9);
        }
    }

    #[test]
    fn ucb_beta_zero_is_posterior_mean_exploitation() {
        let gp = gp_1d();
        let ucb = UpperConfidenceBound { beta: 0.0 };
        let bounds = Bounds::unit(1);
        let r = optimize_single(&gp, &ucb, &bounds, &[], &MultistartConfig::default());
        // Maximizing −μ = minimizing posterior mean => near 0.35.
        assert!((r.x[0] - 0.35).abs() < 0.1, "got {:?}", r.x);
    }
}
