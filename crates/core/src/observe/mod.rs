//! Structured observability for the optimization engine.
//!
//! The paper's whole evaluation hinges on *where virtual time goes* —
//! fitting vs. acquisition vs. simulation under the 20-minute budget —
//! yet that split used to be recoverable only post-hoc from
//! [`crate::record::RunRecord`]. This module adds live, typed
//! visibility with a strict zero-cost-when-disabled contract:
//!
//! - [`Observer`] is the sink trait; the engine holds at most one
//!   (installed through `Engine::builder(..).observer(..)`) and emits
//!   [`Event`]s at the phase boundaries of every cycle. When no
//!   observer is installed — or [`Observer::enabled`] returns `false`,
//!   as for [`NullObserver`] — events are **never constructed**: every
//!   emit site builds its event inside a closure that is only invoked
//!   for an enabled sink.
//! - Events are emitted *outside* the virtual clock's `charge(..)`
//!   closures, so observer wall-time is never charged to the virtual
//!   clock and the recorded time split is bit-identical with and
//!   without observation (the determinism suite pins this).
//! - Per-phase `virtual_s` payloads are computed with exactly the same
//!   clock-split subtractions as the [`crate::record::CycleRecord`]
//!   fields, so folding a run's events reproduces
//!   `RunRecord::time_split()` *bit-exactly*, not just approximately.
//!
//! Shipped sinks: [`NullObserver`] (disabled), [`CollectingObserver`]
//! (in-memory, for tests), [`FanoutObserver`] (tee),
//! [`jsonl::JsonlTraceWriter`] (replayable one-event-per-line trace)
//! and [`metrics::MetricsObserver`] (lock-free counters/gauges/
//! histograms in a [`metrics::MetricsRegistry`]).

pub mod jsonl;
pub mod metrics;

use crate::record::FaultCounters;

/// One structured engine event. Every variant carries enough context to
/// be folded back into the aggregates of a [`crate::record::RunRecord`]
/// (the reconciliation test in `tests/observability.rs` holds the fold
/// to exact agreement).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Emitted once, before the initial design is evaluated.
    RunStarted {
        /// Algorithm display name.
        algorithm: String,
        /// Problem display name.
        problem: String,
        /// Run seed.
        seed: u64,
        /// Batch size q.
        q: usize,
        /// Problem dimension.
        dim: usize,
    },
    /// Emitted once, after the (untimed) initial design is evaluated.
    DesignEvaluated {
        /// Points requested from the Latin-hypercube design.
        requested: usize,
        /// Points that survived evaluation (failed ones are dropped).
        evaluated: usize,
        /// Faults absorbed while evaluating the design.
        faults: FaultCounters,
    },
    /// A cycle began (before any fitting work).
    CycleStarted {
        /// 0-based cycle index.
        cycle: usize,
        /// Virtual clock reading at cycle start \[s\].
        clock: f64,
    },
    /// The surrogate was (re)fitted for this cycle.
    FitCompleted {
        /// 0-based cycle index.
        cycle: usize,
        /// Dataset size the model was fitted on.
        n: usize,
        /// Whether this was a full multistart fit (vs. a warm refit).
        full: bool,
        /// Multistart fit starts actually run.
        restarts: usize,
        /// Objective (MLL) evaluations spent.
        evals: usize,
        /// Best log marginal likelihood reached (NaN when the fit fell
        /// back to the default-kernel model).
        mll: f64,
        /// Whether the fit failed and the engine fell back to a
        /// default-kernel GP (the Cholesky-fallback path).
        fallback: bool,
        /// Host wall time of the fit \[ns\] (never charged virtually).
        wall_ns: u64,
        /// Virtual seconds charged to the fit phase — bit-identical to
        /// this cycle's `CycleRecord::fit_time`.
        virtual_s: f64,
    },
    /// The acquisition process finished building this cycle's batch.
    AcquisitionCompleted {
        /// 0-based cycle index.
        cycle: usize,
        /// Algorithm display name.
        algo: String,
        /// Batch size q.
        q: usize,
        /// Multistart restarts lost to non-finite objective values,
        /// summed over the cycle's inner optimizations.
        restart_shortfall: usize,
        /// Host wall time \[ns\] (never charged virtually).
        wall_ns: u64,
        /// Virtual seconds charged to the acquisition phase —
        /// bit-identical to this cycle's `CycleRecord::acq_time`.
        virtual_s: f64,
    },
    /// One batch element absorbed faults (retries, quarantines,
    /// stragglers, …) in the fault-tolerant executor. Emitted in input
    /// order after the batch completes, so observers need not be
    /// thread-safe and the event stream stays deterministic.
    PointFaulted {
        /// Index of the point within its batch.
        index: usize,
        /// Attempts performed (≥ 1).
        attempts: u32,
        /// Whether a finite value was eventually obtained.
        recovered: bool,
        /// Faults this point absorbed.
        faults: FaultCounters,
    },
    /// A batch was evaluated and committed; closes the cycle.
    BatchEvaluated {
        /// 0-based cycle index.
        cycle: usize,
        /// Points submitted to the executor.
        n_points: usize,
        /// Points that entered the dataset (imputed points included).
        n_evals: usize,
        /// Faults absorbed by this batch (imputations/drops included).
        faults: FaultCounters,
        /// Virtual seconds charged to the simulation phase —
        /// bit-identical to this cycle's `CycleRecord::sim_time`.
        virtual_s: f64,
    },
    /// The incumbent improved after committing a batch.
    IncumbentImproved {
        /// 0-based cycle index.
        cycle: usize,
        /// New best minimized objective value.
        best_y_min: f64,
    },
    /// The run finished; totals for reconciliation.
    RunFinished {
        /// Optimization cycles completed.
        n_cycles: usize,
        /// Total simulations in the dataset (DoE included).
        n_simulations: usize,
        /// Best minimized objective value.
        best_y_min: f64,
        /// Final virtual clock \[s\].
        final_clock: f64,
    },
}

impl Event {
    /// Stable variant name (the `event` field of the JSONL encoding).
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "run_started",
            Event::DesignEvaluated { .. } => "design_evaluated",
            Event::CycleStarted { .. } => "cycle_started",
            Event::FitCompleted { .. } => "fit_completed",
            Event::AcquisitionCompleted { .. } => "acquisition_completed",
            Event::PointFaulted { .. } => "point_faulted",
            Event::BatchEvaluated { .. } => "batch_evaluated",
            Event::IncumbentImproved { .. } => "incumbent_improved",
            Event::RunFinished { .. } => "run_finished",
        }
    }
}

/// A sink for engine events.
///
/// Observers run on the engine's thread, strictly outside virtual-clock
/// charging, and see events in a deterministic order for a given seed.
/// They take `&mut self`, so sinks can buffer or write without interior
/// mutability; share one sink across call sites with
/// `Arc<Mutex<impl Observer>>` (blanket-implemented below).
pub trait Observer {
    /// Whether this sink wants events at all. Emit sites check this
    /// *before constructing the event*, so a disabled sink costs one
    /// virtual call per site and no allocation — the
    /// zero-cost-when-disabled contract.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event.
    fn on_event(&mut self, event: &Event);
}

/// The default sink: observes nothing, costs nothing. Installing it is
/// equivalent to installing no observer at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&mut self, _event: &Event) {}
}

/// In-memory sink: records every event in order. Intended for tests
/// and small diagnostic runs.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    /// Events in emission order.
    pub events: Vec<Event>,
}

impl CollectingObserver {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        CollectingObserver::default()
    }

    /// Count events with the given variant name.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name() == name).count()
    }
}

impl Observer for CollectingObserver {
    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Shared-sink adapter: lets a test hand the engine one handle and keep
/// another for inspection after the run.
impl<O: Observer> Observer for std::sync::Arc<std::sync::Mutex<O>> {
    fn enabled(&self) -> bool {
        self.lock().expect("observer mutex poisoned").enabled()
    }

    fn on_event(&mut self, event: &Event) {
        self.lock().expect("observer mutex poisoned").on_event(event);
    }
}

/// Tee sink: forwards each event to every enabled child (e.g. a JSONL
/// trace and a metrics registry in the same run).
#[derive(Default)]
pub struct FanoutObserver<'a> {
    sinks: Vec<Box<dyn Observer + Send + 'a>>,
}

impl<'a> FanoutObserver<'a> {
    /// Empty fanout (disabled until a sink is added).
    pub fn new() -> Self {
        FanoutObserver { sinks: Vec::new() }
    }

    /// Add a sink; builder-style. Sinks are `Send` so a fanout-observed
    /// engine can live inside a detached session moved across threads.
    pub fn with(mut self, sink: impl Observer + Send + 'a) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }
}

impl Observer for FanoutObserver<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn on_event(&mut self, event: &Event) {
        for s in &mut self.sinks {
            if s.enabled() {
                s.on_event(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
    }

    #[test]
    fn collecting_observer_records_in_order() {
        let mut c = CollectingObserver::new();
        c.on_event(&Event::CycleStarted { cycle: 0, clock: 0.0 });
        c.on_event(&Event::IncumbentImproved { cycle: 0, best_y_min: 1.0 });
        assert_eq!(c.events.len(), 2);
        assert_eq!(c.events[0].name(), "cycle_started");
        assert_eq!(c.count("incumbent_improved"), 1);
    }

    #[test]
    fn fanout_forwards_to_enabled_sinks_only() {
        let shared = std::sync::Arc::new(std::sync::Mutex::new(CollectingObserver::new()));
        let mut tee = FanoutObserver::new().with(NullObserver).with(shared.clone());
        assert!(tee.enabled());
        tee.on_event(&Event::CycleStarted { cycle: 3, clock: 1.5 });
        assert_eq!(shared.lock().unwrap().events.len(), 1);
        let empty = FanoutObserver::new().with(NullObserver);
        assert!(!empty.enabled());
    }

    #[test]
    fn event_names_are_stable() {
        let e = Event::RunFinished {
            n_cycles: 0,
            n_simulations: 0,
            best_y_min: 0.0,
            final_clock: 0.0,
        };
        assert_eq!(e.name(), "run_finished");
    }
}
