//! Reverse-mode differentiation through a Cholesky factorization.
//!
//! Given `Σ = L Lᵀ` and the adjoint `L̄ = ∂f/∂L` of some scalar `f`,
//! the adjoint with respect to the (symmetric) input is
//!
//! `Σ̄ = ½ · L⁻ᵀ (Φ(Lᵀ L̄) + Φ(Lᵀ L̄)ᵀ) L⁻¹`
//!
//! where `Φ` keeps the lower triangle and halves the diagonal
//! (I. Murray, "Differentiation of the Cholesky decomposition", 2016).
//! This is the hand-derived replacement for the autodiff step BoTorch
//! relies on when optimizing Monte-Carlo q-EI.

use pbo_linalg::Matrix;

/// Solve `Lᵀ X = B` for lower-triangular `L` (columns independently).
fn solve_lower_t_matrix(l: &Matrix, b: &Matrix) -> Matrix {
    let n = l.rows();
    let mut x = b.clone();
    for j in 0..b.cols() {
        for i in (0..n).rev() {
            let mut s = x[(i, j)];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[(k, j)];
            }
            x[(i, j)] = s / l[(i, i)];
        }
    }
    x
}

/// Solve `X L = B` for lower-triangular `L`, i.e. `X = B L⁻¹`
/// (row-wise back-substitution against `Lᵀ`).
fn solve_right_lower(l: &Matrix, b: &Matrix) -> Matrix {
    let n = l.rows();
    let mut x = b.clone();
    for i in 0..b.rows() {
        for j in (0..n).rev() {
            let mut s = x[(i, j)];
            for k in (j + 1)..n {
                s -= x[(i, k)] * l[(k, j)];
            }
            x[(i, j)] = s / l[(j, j)];
        }
    }
    x
}

/// `Φ`: keep the lower triangle, halve the diagonal.
fn phi(m: &Matrix) -> Matrix {
    let n = m.rows();
    Matrix::from_fn(n, n, |i, j| {
        if i > j {
            m[(i, j)]
        } else if i == j {
            0.5 * m[(i, j)]
        } else {
            0.0
        }
    })
}

/// Compute `Σ̄` from `L` and `L̄` (see module docs). The result is
/// symmetric.
pub fn chol_pullback(l: &Matrix, lbar: &Matrix) -> Matrix {
    assert!(l.is_square() && lbar.rows() == l.rows() && lbar.cols() == l.cols());
    // M = Φ(Lᵀ L̄), symmetrized.
    let ltlbar = l.transpose().matmul(lbar).expect("square product");
    let p = phi(&ltlbar);
    let mut sym = p.add(&p.transpose()).expect("same shape");
    sym.scale(0.5);
    // Σ̄ = L⁻ᵀ sym L⁻¹.
    let tmp = solve_lower_t_matrix(l, &sym);
    solve_right_lower(l, &tmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_linalg::Cholesky;

    /// Parameterize a 3x3 SPD matrix by 6 free entries of a symmetric
    /// matrix added to a well-conditioned base, compute f(L(Σ)) for a
    /// generic linear functional of L, and compare the pullback against
    /// finite differences of Σ entries.
    #[test]
    fn pullback_matches_finite_differences() {
        let n = 3;
        // Weights of the scalar test functional f(L) = sum w_ij L_ij
        // over the lower triangle.
        let w = Matrix::from_fn(n, n, |i, j| {
            if i >= j {
                ((i * n + j) as f64 * 0.7).sin() + 0.2
            } else {
                0.0
            }
        });
        let base = {
            let g = Matrix::from_fn(n, n, |i, j| ((i + 2 * j) as f64).cos() * 0.4);
            let mut a = g.matmul_nt(&g).unwrap();
            a.add_diag(2.0);
            a
        };
        let f_of_sigma = |sigma: &Matrix| -> f64 {
            let l = Cholesky::factor(sigma).unwrap();
            let mut s = 0.0;
            for i in 0..n {
                for j in 0..=i {
                    s += w[(i, j)] * l.l()[(i, j)];
                }
            }
            s
        };

        let l = Cholesky::factor(&base).unwrap();
        let sigma_bar = chol_pullback(l.l(), &w);

        // Finite differences: perturb Σ symmetrically.
        let h = 1e-6;
        for a in 0..n {
            for b in 0..=a {
                let mut plus = base.clone();
                let mut minus = base.clone();
                plus[(a, b)] += h;
                minus[(a, b)] -= h;
                if a != b {
                    plus[(b, a)] += h;
                    minus[(b, a)] -= h;
                }
                let fd = (f_of_sigma(&plus) - f_of_sigma(&minus)) / (2.0 * h);
                // Perturbing the symmetric pair (a,b)+(b,a) picks up both
                // adjoint entries.
                let analytic = if a == b {
                    sigma_bar[(a, b)]
                } else {
                    sigma_bar[(a, b)] + sigma_bar[(b, a)]
                };
                assert!(
                    (fd - analytic).abs() < 1e-6 * (1.0 + fd.abs()),
                    "entry ({a},{b}): fd {fd} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn pullback_of_zero_is_zero() {
        let base = {
            let mut m = Matrix::identity(4);
            m.add_diag(1.0);
            m
        };
        let l = Cholesky::factor(&base).unwrap();
        let z = Matrix::zeros(4, 4);
        let out = chol_pullback(l.l(), &z);
        assert!(out.norm_max() < 1e-300);
    }

    #[test]
    fn pullback_is_symmetric() {
        let g = Matrix::from_fn(4, 4, |i, j| ((i * 3 + j) as f64 * 0.31).sin());
        let mut sigma = g.matmul_nt(&g).unwrap();
        sigma.add_diag(3.0);
        let l = Cholesky::factor(&sigma).unwrap();
        let lbar = Matrix::from_fn(4, 4, |i, j| if i >= j { (i + j) as f64 } else { 0.0 });
        let sb = chol_pullback(l.l(), &lbar);
        for i in 0..4 {
            for j in 0..4 {
                assert!((sb[(i, j)] - sb[(j, i)]).abs() < 1e-12);
            }
        }
    }
}
