//! Head-to-head comparison of the five batch-acquisition algorithms on
//! one benchmark function — a miniature of the paper's Tables 4–6 with
//! the scalability readout of Fig. 9.
//!
//! ```text
//! cargo run --release --example algorithm_comparison [q]
//! ```

use pbo::core::algorithms::{run_algorithm, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::problems::SyntheticFn;

fn main() {
    let q: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let problem = SyntheticFn::schwefel(12);
    let budget = Budget::paper(q);

    println!("Schwefel-12d, 20 virtual minutes, q = {q}");
    println!(
        "{:<12} {:>10} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "algorithm", "best", "cycles", "sims", "fit[s]", "acq[s]", "sim[s]"
    );
    for kind in AlgorithmKind::paper_set() {
        let r = run_algorithm(kind, &problem, &budget, 2024);
        let (fit, acq, sim) = r.time_split();
        println!(
            "{:<12} {:>10.1} {:>8} {:>8} | {:>8.0} {:>8.0} {:>8.0}",
            kind.name(),
            r.best_y(),
            r.n_cycles(),
            r.n_simulations(),
            fit,
            acq,
            sim
        );
    }
    // The weak baseline for perspective.
    let r = run_algorithm(AlgorithmKind::RandomSearch, &problem, &budget, 2024);
    println!(
        "{:<12} {:>10.1} {:>8} {:>8} | {:>8} {:>8} {:>8.0}",
        "random",
        r.best_y(),
        r.n_cycles(),
        r.n_simulations(),
        "-",
        "-",
        r.time_split().2
    );
}
