//! Box-constrained Nelder–Mead simplex minimization.
//!
//! Derivative-free fallback used where gradients are unreliable (the
//! clipped q-EI landscape has flat plateaus) and by ablation studies.
//! Standard Lagarias et al. coefficients with box handling by clamping
//! proposed vertices into the feasible box.

use crate::{Bounds, OptResult};

/// Tunables for [`minimize`].
#[derive(Debug, Clone)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Terminate when the simplex's value spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex's diameter falls below this.
    pub x_tol: f64,
    /// Initial simplex edge, as a fraction of each box width.
    pub init_step: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig { max_evals: 400, f_tol: 1e-10, x_tol: 1e-9, init_step: 0.05 }
    }
}

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

/// Minimize `f` over `bounds` starting from `x0`.
pub fn minimize<F: Fn(&[f64]) -> f64 + ?Sized>(
    f: &F,
    bounds: &Bounds,
    x0: &[f64],
    cfg: &NelderMeadConfig,
) -> OptResult {
    let d = bounds.dim();
    assert_eq!(x0.len(), d);
    let widths = bounds.widths();

    // Initial simplex: x0 plus a step along each axis (flipped if it
    // would leave the box).
    let mut start = x0.to_vec();
    bounds.clamp(&mut start);
    let mut simplex: Vec<Vec<f64>> = vec![start.clone()];
    for i in 0..d {
        let mut v = start.clone();
        let step = (cfg.init_step * widths[i]).max(1e-12);
        v[i] = if v[i] + step <= bounds.hi()[i] { v[i] + step } else { v[i] - step };
        bounds.clamp(&mut v);
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| f(v)).collect();
    let mut evals = d + 1;
    let mut iters = 0;

    let order = |simplex: &mut Vec<Vec<f64>>, values: &mut Vec<f64>| {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        *simplex = idx.iter().map(|&i| simplex[i].clone()).collect();
        *values = idx.iter().map(|&i| values[i]).collect();
    };
    order(&mut simplex, &mut values);

    while evals < cfg.max_evals {
        iters += 1;
        // Convergence: value spread and simplex diameter.
        let spread = values[d] - values[0];
        let diam = simplex[1..]
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[0])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if spread.abs() < cfg.f_tol * (1.0 + values[0].abs()) && diam < cfg.x_tol {
            return OptResult {
                x: simplex[0].clone(),
                value: values[0],
                evals,
                iters,
                converged: true,
                restart_shortfall: 0,
            };
        }

        // Centroid of the d best vertices.
        let mut centroid = vec![0.0; d];
        for v in &simplex[..d] {
            for i in 0..d {
                centroid[i] += v[i] / d as f64;
            }
        }
        let worst = simplex[d].clone();
        let propose = |coef: f64| -> Vec<f64> {
            let mut p: Vec<f64> = centroid
                .iter()
                .zip(&worst)
                .map(|(c, w)| c + coef * (c - w))
                .collect();
            bounds.clamp(&mut p);
            p
        };

        let xr = propose(ALPHA);
        let fr = f(&xr);
        evals += 1;
        if fr < values[0] {
            // Try expansion.
            let xe = propose(GAMMA);
            let fe = f(&xe);
            evals += 1;
            if fe < fr {
                simplex[d] = xe;
                values[d] = fe;
            } else {
                simplex[d] = xr;
                values[d] = fr;
            }
        } else if fr < values[d - 1] {
            simplex[d] = xr;
            values[d] = fr;
        } else {
            // Contraction (outside if reflected point improved the worst).
            let (xc, base) = if fr < values[d] { (propose(RHO), fr) } else { (propose(-RHO), values[d]) };
            let fc = f(&xc);
            evals += 1;
            if fc < base {
                simplex[d] = xc;
                values[d] = fc;
            } else {
                // Shrink toward the best vertex.
                for i in 1..=d {
                    for j in 0..d {
                        simplex[i][j] =
                            simplex[0][j] + SIGMA * (simplex[i][j] - simplex[0][j]);
                    }
                    bounds.clamp(&mut simplex[i]);
                    values[i] = f(&simplex[i]);
                }
                evals += d;
            }
        }
        order(&mut simplex, &mut values);
    }

    OptResult {
        x: simplex[0].clone(),
        value: values[0],
        evals,
        iters,
        converged: false,
        restart_shortfall: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_quadratic_minimum() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2) + 2.0 * (x[1] + 0.7).powi(2);
        let b = Bounds::cube(2, -2.0, 2.0);
        let r = minimize(&f, &b, &[1.5, 1.5], &NelderMeadConfig::default());
        assert!((r.x[0] - 0.3).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] + 0.7).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn stays_in_box_with_boundary_optimum() {
        let f = |x: &[f64]| -x[0]; // max at upper bound
        let b = Bounds::unit(1);
        let r = minimize(&f, &b, &[0.1], &NelderMeadConfig::default());
        assert!(b.contains(&r.x));
        assert!((r.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn handles_nonsmooth_objective() {
        let f = |x: &[f64]| x[0].abs() + (x[1] - 0.5).abs();
        let b = Bounds::cube(2, -1.0, 1.0);
        let cfg = NelderMeadConfig { max_evals: 2000, ..Default::default() };
        let r = minimize(&f, &b, &[0.9, -0.9], &cfg);
        assert!(r.value < 1e-3, "value {}", r.value);
    }

    #[test]
    fn respects_eval_budget() {
        use std::cell::Cell;
        let count = Cell::new(0usize);
        let f = |x: &[f64]| {
            count.set(count.get() + 1);
            x[0] * x[0]
        };
        let b = Bounds::cube(1, -1.0, 1.0);
        let cfg = NelderMeadConfig { max_evals: 20, f_tol: 0.0, x_tol: 0.0, ..Default::default() };
        let _ = minimize(&f, &b, &[0.9], &cfg);
        // A couple of evals of slack: the final loop iteration may finish
        // its reflection/expansion pair.
        assert!(count.get() <= 24, "{} evals", count.get());
    }
}
