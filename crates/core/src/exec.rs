//! Parallel batch evaluation — the MPI4Py worker pool of the paper,
//! as a scoped-thread fan-out.
//!
//! The candidates of one cycle are evaluated concurrently. The paper maps
//! one MPI rank per batch element; here the fan-out is capped at the
//! machine's available parallelism, with each worker draining a contiguous
//! chunk of the batch, so a q = 64 scalability sweep does not spawn 64 OS
//! threads on an 8-core box. The virtual clock is charged by the *engine*
//! (fixed 10 s + dispatch overhead), not here: this module only runs the
//! real Rust simulator, whose actual speed is irrelevant to the protocol.

use pbo_problems::{eval_min, Problem};

/// Evaluate each point with the problem, in parallel when the batch has
/// more than one element. Returns minimization-oriented values.
pub fn evaluate_batch(problem: &dyn Problem, points: &[Vec<f64>]) -> Vec<f64> {
    match points.len() {
        0 => Vec::new(),
        1 => vec![eval_min(problem, &points[0])],
        n => {
            let workers = std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
                .min(n);
            let mut out = vec![0.0f64; n];
            if workers <= 1 {
                for (slot, p) in out.iter_mut().zip(points) {
                    *slot = eval_min(problem, p);
                }
                return out;
            }
            let per = n.div_ceil(workers);
            std::thread::scope(|s| {
                for (slots, pts) in out.chunks_mut(per).zip(points.chunks(per)) {
                    s.spawn(move || {
                        for (slot, p) in slots.iter_mut().zip(pts) {
                            *slot = eval_min(problem, p);
                        }
                    });
                }
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn matches_sequential_evaluation() {
        let p = SyntheticFn::ackley(5);
        let pts: Vec<Vec<f64>> = (0..7)
            .map(|i| (0..5).map(|j| (i * 5 + j) as f64 * 0.1 - 1.0).collect())
            .collect();
        let par = evaluate_batch(&p, &pts);
        for (v, x) in par.iter().zip(&pts) {
            assert_eq!(*v, p.eval(x));
        }
    }

    #[test]
    fn flips_sign_for_maximizers() {
        let p = pbo_problems::UphesProblem::maizeret(2);
        let pts = vec![vec![0.45; 12], vec![0.2; 12]];
        let vals = evaluate_batch(&p, &pts);
        assert_eq!(vals[0], -p.eval(&pts[0]));
        assert_eq!(vals[1], -p.eval(&pts[1]));
    }

    #[test]
    fn empty_batch_ok() {
        let p = SyntheticFn::ackley(3);
        assert!(evaluate_batch(&p, &[]).is_empty());
    }

    #[test]
    fn batch_larger_than_core_count_matches_sequential() {
        // More candidates than any plausible worker count: the chunked
        // fan-out must still cover every slot exactly once.
        let p = SyntheticFn::ackley(4);
        let pts: Vec<Vec<f64>> = (0..130)
            .map(|i| (0..4).map(|j| ((i * 7 + j * 3) % 40) as f64 * 0.05 - 1.0).collect())
            .collect();
        let par = evaluate_batch(&p, &pts);
        for (v, x) in par.iter().zip(&pts) {
            assert_eq!(*v, p.eval(x));
        }
    }
}
