//! Cross-crate integration of the surrogate stack: sampling → linalg →
//! GP → acquisition, on realistic 12-d data.

use pbo::acq::single::{optimize_single, ExpectedImprovement};
use pbo::acq::Acquisition;
use pbo::gp::fit::{fit, FitConfig};
use pbo::gp::GaussianProcess;
use pbo::linalg::Matrix;
use pbo::opt::Bounds;
use pbo::problems::{Problem, SyntheticFn};
use pbo::sampling::{lhs, SeedStream};

/// Fit a GP on an LHS sample of a benchmark function.
fn fitted_gp(problem: &SyntheticFn, n: usize, seed: u64) -> (GaussianProcess, Matrix, Vec<f64>) {
    let d = problem.dim();
    let mut seeds = SeedStream::new(seed);
    let pts = lhs::latin_hypercube(&mut seeds.fork_named("doe").rng(), n, d);
    let mut x = Matrix::zeros(0, d);
    let mut y = Vec::with_capacity(n);
    for u in &pts {
        let mut native = u.clone();
        pbo::sampling::scale_to_box(&mut native, problem.lower(), problem.upper());
        y.push(problem.eval(&native));
        x.push_row(u).unwrap();
    }
    let cfg = FitConfig { restarts: 1, max_iters: 30, ..FitConfig::default() };
    let (gp, report) = fit(&x, &y, &cfg, None, &mut seeds).unwrap();
    assert!(report.mll.is_finite());
    (gp, x, y)
}

#[test]
fn gp_generalizes_on_ackley_12d() {
    let problem = SyntheticFn::ackley(12);
    let (gp, _, y) = fitted_gp(&problem, 80, 3);
    // Out-of-sample check at fresh points: the model must beat the
    // trivial predict-the-mean baseline on squared error.
    let seeds = SeedStream::new(99);
    let test = lhs::latin_hypercube(&mut seeds.fork_named("test").rng(), 40, 12);
    let ybar = y.iter().sum::<f64>() / y.len() as f64;
    let (mut se_gp, mut se_mean) = (0.0, 0.0);
    for u in &test {
        let mut native = u.clone();
        pbo::sampling::scale_to_box(&mut native, problem.lower(), problem.upper());
        let truth = problem.eval(&native);
        let (m, v) = gp.predict(u);
        assert!(v >= 0.0);
        se_gp += (m - truth) * (m - truth);
        se_mean += (ybar - truth) * (ybar - truth);
    }
    assert!(
        se_gp < 0.8 * se_mean,
        "GP RMSE² {se_gp:.1} not clearly below baseline {se_mean:.1}"
    );
}

#[test]
fn ei_maximizer_is_a_sensible_candidate_in_12d() {
    let problem = SyntheticFn::rosenbrock(12);
    let (gp, _, y) = fitted_gp(&problem, 60, 7);
    let f_best = y.iter().copied().fold(f64::INFINITY, f64::min);
    let ei = ExpectedImprovement { f_best };
    let bounds = Bounds::unit(12);
    let ms = pbo::opt::multistart::MultistartConfig {
        raw_samples: 64,
        restarts: 4,
        ..Default::default()
    };
    let r = optimize_single(&gp, &ei, &bounds, &[], &ms);
    assert!(bounds.contains(&r.x));
    assert!(r.value >= 0.0);
    // The proposal's EI beats EI at 20 Sobol probes.
    let mut sobol = pbo::sampling::sobol::Sobol::new(12);
    for _ in 0..20 {
        let p = sobol.next_point();
        assert!(r.value >= ei.value(&gp, &p) - 1e-9);
    }
}

#[test]
fn fantasy_conditioning_shrinks_variance_locally() {
    let problem = SyntheticFn::ackley(12);
    let (gp, _, _) = fitted_gp(&problem, 50, 11);
    let probe = vec![0.42; 12];
    let (_, var_before) = gp.predict(&probe);
    let fantasy_y = gp.predict_mean(&probe);
    let gp2 = gp.condition_on(std::slice::from_ref(&probe), &[fantasy_y]).unwrap();
    let (_, var_after) = gp2.predict(&probe);
    assert!(
        var_after < 0.05 * var_before + 1e-10,
        "conditioning should collapse local variance: {var_before} -> {var_after}"
    );
    // And the far field is barely affected.
    let far = vec![0.95; 12];
    let (_, vf_before) = gp.predict(&far);
    let (_, vf_after) = gp2.predict(&far);
    assert!((vf_after - vf_before).abs() < 0.2 * vf_before + 1e-10);
}

#[test]
fn qei_of_diverse_batch_beats_clumped_batch() {
    let problem = SyntheticFn::ackley(12);
    let (gp, _, y) = fitted_gp(&problem, 50, 13);
    let f_best = y.iter().copied().fold(f64::INFINITY, f64::min);
    let qei = pbo::acq::mc::QExpectedImprovement::new(f_best, 2, 2048, 5);
    // Clumped: the same promising point twice. Diverse: promising point
    // + a second distinct location.
    let p = vec![0.4; 12];
    let clumped = Matrix::from_rows(&[p.clone(), p.clone()]).unwrap();
    let mut p2 = p.clone();
    p2[0] = 0.7;
    p2[5] = 0.1;
    let diverse = Matrix::from_rows(&[p, p2]).unwrap();
    assert!(
        qei.value(&gp, &diverse) >= qei.value(&gp, &clumped) - 1e-6,
        "diversification must not hurt qEI"
    );
}
