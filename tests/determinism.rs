//! Cross-crate determinism suite.
//!
//! The whole stack is seeded from one `u64` through SplitMix64 stream
//! forking, and the fault-tolerant executor charges retries/backoff to
//! the *virtual* clock — so a run must replay bit-identically whatever
//! the physical worker count, with and without injected faults. These
//! tests pin that contract at the outermost API (`run_algorithm_with`
//! on the `pbo` facade), where any ordering leak in sampling, GP
//! fitting, acquisition multistart, executor fan-out or fault
//! injection would surface.

use pbo::core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::core::engine::{AlgoConfig, SurrogateBackend};
use pbo::core::exec::FtPolicy;
use pbo::core::record::RunRecord;
use pbo::problems::fault::{silence_injected_panics, FaultPlan, FaultyProblem};
use pbo::problems::SyntheticFn;

/// Test config pinned to `workers` evaluation threads.
fn cfg_with_workers(workers: usize) -> AlgoConfig {
    AlgoConfig {
        ft: FtPolicy { eval_workers: Some(workers), ..FtPolicy::default() },
        ..AlgoConfig::test_profile()
    }
}

/// Everything about a run that must be reproducible: the best-so-far
/// trace, the final incumbent, per-cycle timings on the virtual clock
/// and the fault counters.
fn fingerprint(r: &RunRecord) -> (Vec<u64>, Vec<u64>, Vec<(u64, u64, u64)>, Vec<u64>) {
    let trace = r.y_min.iter().map(|v| v.to_bits()).collect();
    let best_x = r.best_x.iter().map(|v| v.to_bits()).collect();
    let cycles = r
        .cycles
        .iter()
        .map(|c| (c.best_y_min.to_bits(), c.sim_time.to_bits(), c.clock.to_bits()))
        .collect();
    let t = r.fault_totals();
    let faults = vec![
        t.panics,
        t.nan_quarantined,
        t.inf_quarantined,
        t.stragglers,
        t.timeouts,
        t.retries,
        t.imputed,
        t.dropped,
        t.virtual_secs_lost.to_bits(),
    ];
    (trace, best_x, cycles, faults)
}

fn run_clean(algo: AlgorithmKind, seed: u64, workers: usize) -> RunRecord {
    let p = SyntheticFn::ackley(4);
    let budget = Budget::cycles(4, 2).with_initial_samples(10);
    run_algorithm_with(algo, &p, &budget, cfg_with_workers(workers), seed)
}

fn run_faulty(algo: AlgorithmKind, seed: u64, workers: usize) -> RunRecord {
    let p = SyntheticFn::ackley(4);
    let faulty = FaultyProblem::new(&p, FaultPlan::uniform(seed ^ 0xFA17, 0.25));
    let budget = Budget::cycles(4, 2).with_initial_samples(10);
    run_algorithm_with(algo, &faulty, &budget, cfg_with_workers(workers), seed)
}

#[test]
fn same_seed_same_trace_regardless_of_worker_count_clean() {
    for algo in [AlgorithmKind::MicQEgo, AlgorithmKind::Turbo] {
        let base = fingerprint(&run_clean(algo, 77, 1));
        for workers in [2, 5, 8] {
            let other = fingerprint(&run_clean(algo, 77, workers));
            assert_eq!(
                base, other,
                "{algo:?}: 1-worker vs {workers}-worker traces diverged"
            );
        }
    }
}

#[test]
fn same_seed_same_trace_regardless_of_worker_count_faulty() {
    silence_injected_panics();
    for algo in [AlgorithmKind::KbQEgo, AlgorithmKind::McQEgo] {
        let base = fingerprint(&run_faulty(algo, 31, 1));
        // Faults injected deterministically per (seed, x, attempt) must
        // replay identically however the batch is sharded over threads.
        for workers in [3, 7] {
            let other = fingerprint(&run_faulty(algo, 31, workers));
            assert_eq!(
                base, other,
                "{algo:?}: faulty 1-worker vs {workers}-worker traces diverged"
            );
        }
        // And the faulty runs must actually have exercised the fault
        // path, else the assertion above is vacuous.
        assert!(base.3.iter().take(6).any(|&c| c > 0), "{algo:?}: no faults injected");
    }
}

#[test]
fn repeated_runs_with_same_seed_are_bit_identical() {
    let a = fingerprint(&run_clean(AlgorithmKind::BspEgo, 5, 4));
    let b = fingerprint(&run_clean(AlgorithmKind::BspEgo, 5, 4));
    assert_eq!(a, b);
}

/// PR 9's algorithms — including the variable-q hybrid, whose
/// per-cycle batch sizing must itself be a pure function of the seeded
/// state — replay bit-identically across eval-worker counts.
#[test]
fn new_batch_algorithms_are_worker_count_invariant() {
    for algo in [AlgorithmKind::GpUcbPe, AlgorithmKind::HybridQ] {
        let base = fingerprint(&run_clean(algo, 91, 1));
        for workers in [2, 5] {
            let other = fingerprint(&run_clean(algo, 91, workers));
            assert_eq!(
                base, other,
                "{algo:?}: 1-worker vs {workers}-worker traces diverged"
            );
        }
    }
    // The hybrid must have actually flexed its batch size, else the
    // variable-q leg of the invariance claim is vacuous.
    let r = run_clean(AlgorithmKind::HybridQ, 91, 1);
    let widths: Vec<usize> = r.cycles.iter().map(|c| c.n_evals).collect();
    assert!(
        widths.iter().any(|&w| w != widths[0]) || widths.iter().any(|&w| w < 2),
        "hybrid never varied q ({widths:?}); pick a seed where it does"
    );
}

#[test]
fn different_seeds_diverge() {
    // Guard against a degenerate fingerprint (e.g. everything constant).
    let a = fingerprint(&run_clean(AlgorithmKind::MicQEgo, 1, 2));
    let b = fingerprint(&run_clean(AlgorithmKind::MicQEgo, 2, 2));
    assert_ne!(a.0, b.0, "different seeds should explore differently");
}

#[test]
fn zero_fault_plan_is_bit_identical_to_unwrapped_problem() {
    let p = SyntheticFn::schwefel(3);
    let budget = Budget::cycles(3, 2).with_initial_samples(8);
    let plain =
        run_algorithm_with(AlgorithmKind::MicQEgo, &p, &budget, cfg_with_workers(4), 99);
    let wrapped = FaultyProblem::new(&p, FaultPlan::none(123));
    let faulty =
        run_algorithm_with(AlgorithmKind::MicQEgo, &wrapped, &budget, cfg_with_workers(4), 99);
    assert_eq!(fingerprint(&plain).0, fingerprint(&faulty).0);
    assert_eq!(fingerprint(&plain).2, fingerprint(&faulty).2);
    assert!(!faulty.fault_totals().any());
    assert_eq!(wrapped.injection_log().total(), 0);
}

// ---------------------------------------------------------------------
// Acquisition-thread bit-identity: the multistart acquisition optimizer
// fans raw scoring and per-start polishing out over
// `pbo_linalg::parallel` scoped threads, reducing by `(value,
// start_index)`. These tests mirror the eval-worker suite one level
// down: the full trace must be bit-identical whatever the *compute*
// thread count, with and without injected faults.
// ---------------------------------------------------------------------

/// The thread override is process-global, so tests that touch it must
/// not interleave.
static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const ALL_SIX: [AlgorithmKind; 6] = [
    AlgorithmKind::KbQEgo,
    AlgorithmKind::MicQEgo,
    AlgorithmKind::McQEgo,
    AlgorithmKind::BspEgo,
    AlgorithmKind::Turbo,
    AlgorithmKind::RandomSearch,
];

fn at_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    pbo::linalg::parallel::set_num_threads(threads);
    let out = f();
    pbo::linalg::parallel::set_num_threads(0);
    out
}

#[test]
fn same_seed_same_trace_regardless_of_thread_count_clean() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    for algo in ALL_SIX {
        let base = at_threads(1, || fingerprint(&run_clean(algo, 53, 2)));
        for threads in [2, 6] {
            let other = at_threads(threads, || fingerprint(&run_clean(algo, 53, 2)));
            assert_eq!(
                base, other,
                "{algo:?}: 1-thread vs {threads}-thread traces diverged"
            );
        }
    }
}

#[test]
fn new_batch_algorithms_are_thread_count_invariant() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    for algo in [AlgorithmKind::GpUcbPe, AlgorithmKind::HybridQ] {
        let base = at_threads(1, || fingerprint(&run_clean(algo, 53, 2)));
        let other = at_threads(4, || fingerprint(&run_clean(algo, 53, 2)));
        assert_eq!(base, other, "{algo:?}: 1-thread vs 4-thread traces diverged");
    }
}

#[test]
fn same_seed_same_trace_regardless_of_thread_count_faulty() {
    silence_injected_panics();
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    for algo in ALL_SIX {
        let base = at_threads(1, || fingerprint(&run_faulty(algo, 47, 2)));
        for threads in [4] {
            let other = at_threads(threads, || fingerprint(&run_faulty(algo, 47, 2)));
            assert_eq!(
                base, other,
                "{algo:?}: faulty 1-thread vs {threads}-thread traces diverged"
            );
        }
        assert!(base.3.iter().take(6).any(|&c| c > 0), "{algo:?}: no faults injected");
    }
}

// ---------------------------------------------------------------------
// Incremental-update and blocked-factorization determinism: the
// `incremental_updates` fast path extends the cached Cholesky factor
// instead of refactoring, and factorizations past `BIT_EXACT_MAX_N`
// take the cache-blocked parallel path. Both must preserve the same
// contract as everything above — bit-identical traces for any worker
// or compute-thread count, and (below the bit-exact cap) bit-identical
// factors vs the from-scratch row kernel.
// ---------------------------------------------------------------------

/// Test config with the incremental-update fast path on: full fits on
/// even cycles, factor extensions on odd ones, so a 4-cycle run
/// exercises both.
fn cfg_incremental(workers: usize) -> AlgoConfig {
    AlgoConfig {
        full_fit_every: 2,
        incremental_updates: true,
        ft: FtPolicy { eval_workers: Some(workers), ..FtPolicy::default() },
        ..AlgoConfig::test_profile()
    }
}

fn run_incremental(algo: AlgorithmKind, seed: u64, workers: usize) -> RunRecord {
    let p = SyntheticFn::ackley(4);
    let budget = Budget::cycles(4, 2).with_initial_samples(10);
    run_algorithm_with(algo, &p, &budget, cfg_incremental(workers), seed)
}

#[test]
fn incremental_update_runs_are_bit_identical_across_worker_counts() {
    for algo in [AlgorithmKind::KbQEgo, AlgorithmKind::McQEgo] {
        let base = fingerprint(&run_incremental(algo, 21, 1));
        for workers in [3, 6] {
            let other = fingerprint(&run_incremental(algo, 21, workers));
            assert_eq!(
                base, other,
                "{algo:?}: incremental 1-worker vs {workers}-worker traces diverged"
            );
        }
    }
}

#[test]
fn incremental_update_runs_are_bit_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    for algo in [AlgorithmKind::MicQEgo, AlgorithmKind::Turbo] {
        let base = at_threads(1, || fingerprint(&run_incremental(algo, 63, 2)));
        for threads in [2, 6] {
            let other = at_threads(threads, || fingerprint(&run_incremental(algo, 63, 2)));
            assert_eq!(
                base, other,
                "{algo:?}: incremental 1-thread vs {threads}-thread traces diverged"
            );
        }
    }
}

/// RBF-style Gram matrix over a deterministic 1-D point cloud: uniform
/// unit diagonal, strictly positive definite for distinct points.
fn gram(n: usize) -> pbo::linalg::Matrix {
    let pts: Vec<f64> =
        (0..n).map(|i| (i as f64 * 0.37).sin() * 2.0 + i as f64 * 0.01).collect();
    pbo::linalg::Matrix::from_fn(n, n, |i, j| {
        let d = pts[i] - pts[j];
        (-0.5 * d * d).exp() + if i == j { 1e-8 } else { 0.0 }
    })
}

#[test]
fn blocked_factorization_is_bit_identical_for_any_thread_count() {
    use pbo::linalg::Cholesky;
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    // Well past BIT_EXACT_MAX_N = 128, so the cache-blocked parallel
    // path is engaged; its row bands must partition scheduling only,
    // never values.
    let a = gram(300);
    let base = at_threads(1, || Cholesky::factor(&a).unwrap());
    for threads in [2, 3, 6] {
        let other = at_threads(threads, || Cholesky::factor(&a).unwrap());
        assert_eq!(base.jitter().to_bits(), other.jitter().to_bits());
        for (x, y) in base.l().as_slice().iter().zip(other.l().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{threads}-thread factor diverged");
        }
    }
}

#[test]
fn factor_extension_matches_from_scratch_below_bit_exact_max_n() {
    use pbo::linalg::{Cholesky, Matrix};
    // n + q = 96 ≤ BIT_EXACT_MAX_N: the extension appends rows with the
    // same serial row kernel, so the factor must match from-scratch
    // bit for bit.
    let (n, q) = (90usize, 6usize);
    let full = gram(n + q);
    let head = Matrix::from_fn(n, n, |i, j| full[(i, j)]);
    let b = Matrix::from_fn(n, q, |i, j| full[(i, n + j)]);
    let c = Matrix::from_fn(q, q, |i, j| full[(n + i, n + j)]);
    let base = Cholesky::factor(&head).unwrap();
    let ext = base.extend_exact(&b, &c).unwrap();
    let direct = Cholesky::factor(&full).unwrap();
    assert_eq!(ext.jitter().to_bits(), direct.jitter().to_bits());
    for (x, y) in ext.l().as_slice().iter().zip(direct.l().as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

// ---------------------------------------------------------------------
// Sparse-surrogate determinism: the inducing-point backend assembles
// its n×m cross-kernel blocks through `pbo_linalg::parallel`
// (per-row-pure chunking) and selects inducing points with a serial
// greedy pivoted Cholesky. Both must be bitwise independent of the
// compute-thread count, at the model level and through a full
// engine-driven run with the `Sparse` backend switched on.
// ---------------------------------------------------------------------

/// Deterministic d-dimensional point cloud in the unit cube.
fn cloud(n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..d)
                .map(|j| {
                    let t = (i * d + j) as f64;
                    ((t * 0.613).sin() * 0.5 + 0.5).clamp(0.0, 1.0)
                })
                .collect()
        })
        .collect()
}

#[test]
fn sparse_fit_is_bit_identical_for_any_thread_count() {
    use pbo::gp::kernel::{Kernel, KernelType};
    use pbo::gp::SparseGaussianProcess;
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let (n, d, m) = (600usize, 4usize, 64usize);
    let rows = cloud(n, d);
    let x = pbo::linalg::Matrix::from_rows(&rows).unwrap();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().map(|v| (v - 0.3) * (v - 0.7)).sum::<f64>())
        .collect();
    let mut kernel = Kernel::new(KernelType::Matern52, d);
    kernel.lengthscales = vec![0.4; d];
    let probes = cloud(17, d);
    let build = || {
        let g = SparseGaussianProcess::new(x.clone(), &y, kernel.clone(), 1e-6, m).unwrap();
        let w: Vec<u64> = g.weights().iter().map(|v| v.to_bits()).collect();
        let z: Vec<u64> = g.inducing_x().as_slice().iter().map(|v| v.to_bits()).collect();
        let preds: Vec<(u64, u64)> = probes
            .iter()
            .map(|p| {
                let (mu, var) = g.predict(p);
                (mu.to_bits(), var.to_bits())
            })
            .collect();
        (w, z, preds)
    };
    let base = at_threads(1, build);
    for threads in [2, 6] {
        let other = at_threads(threads, build);
        assert_eq!(base, other, "sparse fit diverged at {threads} threads");
    }
}

/// Test config with the sparse backend switched on from the start
/// (`switch_at` below the DoE size so every cycle runs sparse).
fn cfg_sparse(workers: usize) -> AlgoConfig {
    AlgoConfig {
        surrogate: SurrogateBackend::Sparse { m: 16, switch_at: 24 },
        ft: FtPolicy { eval_workers: Some(workers), ..FtPolicy::default() },
        ..AlgoConfig::test_profile()
    }
}

fn run_sparse(algo: AlgorithmKind, seed: u64, workers: usize) -> RunRecord {
    let p = SyntheticFn::ackley(4);
    let budget = Budget::cycles(3, 2).with_initial_samples(30);
    run_algorithm_with(algo, &p, &budget, cfg_sparse(workers), seed)
}

#[test]
fn sparse_backend_runs_are_bit_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    for algo in [AlgorithmKind::KbQEgo, AlgorithmKind::McQEgo, AlgorithmKind::Turbo] {
        let base = at_threads(1, || fingerprint(&run_sparse(algo, 29, 2)));
        for threads in [2, 6] {
            let other = at_threads(threads, || fingerprint(&run_sparse(algo, 29, 2)));
            assert_eq!(
                base, other,
                "{algo:?}: sparse 1-thread vs {threads}-thread traces diverged"
            );
        }
    }
}

#[test]
fn sparse_backend_runs_are_bit_identical_across_worker_counts() {
    for algo in [AlgorithmKind::MicQEgo, AlgorithmKind::BspEgo] {
        let base = fingerprint(&run_sparse(algo, 83, 1));
        for workers in [3, 6] {
            let other = fingerprint(&run_sparse(algo, 83, workers));
            assert_eq!(
                base, other,
                "{algo:?}: sparse 1-worker vs {workers}-worker traces diverged"
            );
        }
    }
}

#[test]
fn faulty_run_ends_with_finite_incumbent_and_clean_dataset() {
    silence_injected_panics();
    let r = run_faulty(AlgorithmKind::MicQEgo, 13, 4);
    assert!(r.best_y().is_finite());
    for v in &r.y_min {
        assert!(v.is_finite(), "best-so-far trace contains non-finite value {v}");
    }
    // Fault handling must cost virtual time, never save it: with the
    // same seed the faulty run's final clock is ≥ the clean run's.
    let clean = run_clean(AlgorithmKind::MicQEgo, 13, 4);
    assert!(r.final_clock >= clean.final_clock);
}
