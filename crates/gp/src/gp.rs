//! The exact Gaussian-process regressor.

use crate::kernel::Kernel;
use crate::{GpError, Result};
use pbo_linalg::vec_ops::dot;
use pbo_linalg::{Cholesky, Matrix};

/// Exact GP regression with constant trend and homoskedastic noise.
///
/// Targets are standardized internally (shift by their mean, scale by
/// their standard deviation); hyperparameters live on the standardized
/// scale and the constant trend is profiled in closed form:
/// `m̂ = (1ᵀ K_y⁻¹ y) / (1ᵀ K_y⁻¹ 1)` with `K_y = K + σ_n² I`.
///
/// The struct owns the Cholesky factor of `K_y` and the weight vector
/// `α = K_y⁻¹ (y − m̂)`, so predictions are `O(n)` per point (mean) and
/// `O(n²)` (variance).
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise: f64,
    x: Matrix,
    /// Standardized targets.
    y_std: Vec<f64>,
    /// Standardization shift (mean of the raw targets at fit time).
    shift: f64,
    /// Standardization scale (std of the raw targets at fit time).
    scale: f64,
    /// Profiled constant trend (standardized scale).
    trend: f64,
    chol: Cholesky,
    /// Row-major transpose of the Cholesky factor. The single-point
    /// posterior path runs its backward substitution over rows of this
    /// matrix (contiguous; unrolled-`dot` reduction for long rows)
    /// instead of columns of `L` (stride-n) — roughly an eighth of the
    /// memory traffic, and several times the instruction-level
    /// parallelism once rows exceed
    /// [`pbo_linalg::cholesky::BIT_EXACT_MAX_N`].
    lt: Matrix,
    alpha: Vec<f64>,
}

/// Reusable scratch for the allocation-free single-point posterior
/// paths ([`GaussianProcess::predict_with`] and
/// [`GaussianProcess::posterior_parts_with`]). Buffers grow to the
/// training-set size on first use and are reused verbatim afterwards,
/// so steady-state calls perform zero heap allocations. Keep one per
/// thread (e.g. in a `thread_local!`) — the workspace itself is plain
/// data and `Send`.
#[derive(Debug, Default, Clone)]
pub struct PredictWorkspace {
    /// Cross-covariance row `k(support, p)` (the training set for the
    /// dense backend, the inducing set for the sparse one).
    pub(crate) k: Vec<f64>,
    /// Triangular-solve buffer; after `posterior_parts_with` it holds
    /// the posterior operator applied to `k` (`K_y⁻¹ k` dense).
    pub(crate) c: Vec<f64>,
    /// Radial gradient factors `s²·g(r_i)` per support point.
    pub(crate) gf: Vec<f64>,
    /// Reciprocal lengthscales `1/ℓ_j`, refreshed per call on the
    /// large-system path (the same workspace serves different GPs,
    /// e.g. across fantasy refits).
    pub(crate) inv_ls: Vec<f64>,
    /// Second solve buffer for the sparse backend's `B⁻¹u` term
    /// (unused by the dense paths).
    pub(crate) w: Vec<f64>,
}

impl PredictWorkspace {
    /// Empty workspace; buffers are sized lazily by the GP calls.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn ensure(&mut self, n: usize) {
        if self.k.len() != n {
            self.k.resize(n, 0.0);
            self.c.resize(n, 0.0);
            self.gf.resize(n, 0.0);
            self.w.resize(n, 0.0);
        }
    }

    /// Cross-covariance row from the last `posterior_parts_with` call.
    /// (Clobbered by `predict_with`, which reuses it as the solve buffer.)
    pub fn cross(&self) -> &[f64] {
        &self.k
    }

    /// `K_y⁻¹ k` from the last `posterior_parts_with` call.
    pub fn solved(&self) -> &[f64] {
        &self.c
    }

    /// Per-training-point radial gradient factors `s²·g(r_i)` from the
    /// last `posterior_parts_with` call; feed them to
    /// [`crate::kernel::Kernel::grad_wrt_query_from_factor`].
    pub fn grad_factors(&self) -> &[f64] {
        &self.gf
    }
}

/// Floor on the standardization scale so constant targets don't divide
/// by zero. Shared with the sparse backend so both standardize
/// identically.
pub(crate) const MIN_SCALE: f64 = 1e-8;

impl GaussianProcess {
    /// Build a GP on raw data with the given kernel and noise variance
    /// (standardized scale). Fails on empty/ragged data or a kernel of
    /// the wrong dimension.
    pub fn new(x: Matrix, y: &[f64], kernel: Kernel, noise: f64) -> Result<Self> {
        if x.rows() == 0 {
            return Err(GpError::BadTrainingData("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(GpError::BadTrainingData(format!(
                "{} inputs vs {} targets",
                x.rows(),
                y.len()
            )));
        }
        if kernel.dim() != x.cols() {
            return Err(GpError::BadHyperparameters(format!(
                "kernel dim {} vs input dim {}",
                kernel.dim(),
                x.cols()
            )));
        }
        if !y.iter().all(|v| v.is_finite()) {
            return Err(GpError::BadTrainingData("non-finite target".into()));
        }
        let shift = pbo_linalg::vec_ops::mean(y);
        let scale = pbo_linalg::vec_ops::variance(y).sqrt().max(MIN_SCALE);
        let y_std: Vec<f64> = y.iter().map(|v| (v - shift) / scale).collect();
        Self::from_standardized(x, y_std, shift, scale, kernel, noise)
    }

    /// Rebuild from already-standardized targets (internal; used by
    /// refits that must keep the standardization frozen).
    pub(crate) fn from_standardized(
        x: Matrix,
        y_std: Vec<f64>,
        shift: f64,
        scale: f64,
        kernel: Kernel,
        noise: f64,
    ) -> Result<Self> {
        let mut ky = kernel.matrix(&x);
        ky.add_diag(noise);
        let chol = Cholesky::factor(&ky)?;
        let (trend, alpha) = profiled_trend_and_alpha(&chol, &y_std)?;
        let lt = chol.transposed_factor();
        Ok(GaussianProcess { kernel, noise, x, y_std, shift, scale, trend, chol, lt, alpha })
    }

    /// Number of training points.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Homoskedastic noise variance (standardized scale).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Training inputs.
    pub fn train_x(&self) -> &Matrix {
        &self.x
    }

    /// Training targets on the raw scale.
    pub fn train_y_raw(&self) -> Vec<f64> {
        self.y_std.iter().map(|v| v * self.scale + self.shift).collect()
    }

    /// Standardization `(shift, scale)`.
    pub fn standardization(&self) -> (f64, f64) {
        (self.shift, self.scale)
    }

    /// Posterior mean and **latent** variance at one point, on the raw
    /// target scale. The latent (noise-free) variance is what acquisition
    /// functions want.
    pub fn predict(&self, p: &[f64]) -> (f64, f64) {
        debug_assert_eq!(p.len(), self.dim());
        let k = self.kernel.cross_vec(&self.x, p);
        let mean_std = self.trend + dot(&k, &self.alpha);
        // var = k(x,x) − kᵀ K_y⁻¹ k, via the forward solve L v = k.
        let mut v = k;
        self.chol.solve_lower_in_place(&mut v);
        let var_std = (self.kernel.prior_var() - dot(&v, &v)).max(1e-14);
        (mean_std * self.scale + self.shift, var_std * self.scale * self.scale)
    }

    /// [`predict`](Self::predict) with a reusable workspace: bit-identical
    /// results, zero heap allocations per call once the workspace has
    /// warmed up to the training-set size.
    pub fn predict_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        debug_assert_eq!(p.len(), self.dim());
        ws.ensure(self.n());
        self.kernel.cross_vec_into(&self.x, p, &mut ws.k);
        let mean_std = self.trend + dot(&ws.k, &self.alpha);
        // Same forward solve as `predict`, reusing k as the buffer.
        self.chol.solve_lower_in_place(&mut ws.k);
        let var_std = (self.kernel.prior_var() - dot(&ws.k, &ws.k)).max(1e-14);
        (mean_std * self.scale + self.shift, var_std * self.scale * self.scale)
    }

    /// Standardized posterior mean and variance at `p`, leaving in `ws`
    /// the intermediates the acquisition gradient needs: `ws.cross()` =
    /// `k(x, p)`, `ws.solved()` = `K_y⁻¹ k`, `ws.grad_factors()` = the
    /// radial factors for `∂k/∂p`. Zero heap allocations per call.
    ///
    /// This follows the allocating acquisition reference recipe —
    /// variance from the full solve `kᵀ K_y⁻¹ k` (not the forward-only
    /// form `predict` uses) — with the same arithmetic in the same
    /// order for training sets up to
    /// [`pbo_linalg::cholesky::BIT_EXACT_MAX_N`] points, so results
    /// there are bit-identical to the `cross_vec` + `chol().solve(k)`
    /// reference (covered by a test) and seeded BO trajectories are
    /// unchanged. Beyond that threshold the hot path reassociates for
    /// speed — reciprocal-lengthscale distances and the unrolled-`dot`
    /// backward substitution — which reorders roundings only (agreement
    /// to summation-order ulps). Either way the result is bitwise
    /// deterministic for any thread count — the same code runs
    /// everywhere. The caller applies the target standardization.
    pub fn posterior_parts_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        debug_assert_eq!(p.len(), self.dim());
        ws.ensure(self.n());
        if self.n() > pbo_linalg::cholesky::BIT_EXACT_MAX_N {
            self.kernel.inv_lengthscales_into(&mut ws.inv_ls);
            self.kernel.cross_vec_grad_into_scaled(&self.x, p, &ws.inv_ls, &mut ws.k, &mut ws.gf);
        } else {
            self.kernel.cross_vec_grad_into(&self.x, p, &mut ws.k, &mut ws.gf);
        }
        let mean_std = self.trend + dot(&ws.k, &self.alpha);
        ws.c.copy_from_slice(&ws.k);
        self.chol.solve_lower_in_place(&mut ws.c);
        pbo_linalg::cholesky::solve_transposed_in_place(&self.lt, &mut ws.c);
        let var_std = (self.kernel.prior_var() - dot(&ws.k, &ws.c)).max(1e-14);
        (mean_std, var_std)
    }

    /// Posterior mean only (cheaper: one dot product).
    pub fn predict_mean(&self, p: &[f64]) -> f64 {
        let k = self.kernel.cross_vec(&self.x, p);
        (self.trend + dot(&k, &self.alpha)) * self.scale + self.shift
    }

    /// Batched prediction: means and latent variances for each row of
    /// `pts`.
    ///
    /// One cross-covariance assembly (parallel over row blocks) plus one
    /// multi-RHS forward solve replace `q` independent `predict` calls.
    /// The same kernel entries and triangular system are evaluated, so
    /// results match [`GaussianProcess::predict`] to summation-order
    /// rounding (a few ulps).
    ///
    /// Past [`pbo_linalg::cholesky::BIT_EXACT_MAX_N`] training points
    /// the `‖V_:,j‖²` accumulation — the last serial hot loop in the
    /// candidate-prescreen path — fans out over fixed row bands (see
    /// [`banded_sq_colsums`]); at or below the cap the serial arithmetic
    /// is byte-identical to the pre-band code, so engine-scale seeded
    /// trajectories are unchanged.
    pub fn predict_many(&self, pts: &Matrix) -> (Vec<f64>, Vec<f64>) {
        let q = pts.rows();
        if q == 0 {
            return (Vec::new(), Vec::new());
        }
        debug_assert_eq!(pts.cols(), self.dim());
        let mut kxs = self.kernel.cross_matrix(&self.x, pts); // n x q
        let kta = kxs.matvec_t(&self.alpha).expect("alpha length n");
        let means: Vec<f64> =
            kta.iter().map(|v| (self.trend + v) * self.scale + self.shift).collect();
        // V = L^{-1} K(x, pts), then latent var_j = k(x,x) − ‖V_:,j‖².
        self.chol.solve_lower_multi_in_place(&mut kxs);
        let vtv = banded_sq_colsums(&kxs);
        let pv = self.kernel.prior_var();
        let s2 = self.scale * self.scale;
        let vars: Vec<f64> = vtv.iter().map(|s| (pv - s).max(1e-14) * s2).collect();
        (means, vars)
    }

    /// Joint posterior over the rows of `pts`: mean vector and full
    /// latent covariance matrix, raw scale. This is what Monte-Carlo
    /// q-EI samples from.
    pub fn posterior_joint(&self, pts: &Matrix) -> Result<(Vec<f64>, Matrix)> {
        if pts.cols() != self.dim() {
            return Err(GpError::BadTrainingData(format!(
                "query dim {} vs model dim {}",
                pts.cols(),
                self.dim()
            )));
        }
        let q = pts.rows();
        let mut kxs = self.kernel.cross_matrix(&self.x, pts); // n x q
        let kta = kxs.matvec_t(&self.alpha).expect("alpha length n");
        let means: Vec<f64> =
            kta.iter().map(|v| (self.trend + v) * self.scale + self.shift).collect();
        // Cov = K** − VᵀV with V = L^{-1} K(x, pts): one in-place
        // multi-RHS forward solve, then VᵀV accumulated row-major (one
        // contiguous pass over V instead of q² strided column dots).
        self.chol.solve_lower_multi_in_place(&mut kxs);
        let v = kxs;
        let mut vtv = Matrix::zeros(q, q); // lower triangle
        for i in 0..v.rows() {
            let row = v.row(i);
            for a in 0..q {
                let ra = row[a];
                let out = vtv.row_mut(a);
                for b in 0..=a {
                    out[b] += ra * row[b];
                }
            }
        }
        let s2 = self.scale * self.scale;
        let mut cov = Matrix::zeros(q, q);
        for a in 0..q {
            for b in 0..=a {
                let kab = self.kernel.eval(pts.row(a), pts.row(b));
                let c = (kab - vtv[(a, b)]) * s2;
                cov[(a, b)] = c;
                cov[(b, a)] = c;
            }
        }
        // Guarantee a usable (sampleable) covariance.
        for a in 0..q {
            if cov[(a, a)] < 1e-14 * s2 {
                cov[(a, a)] = 1e-14 * s2;
            }
        }
        Ok((means, cov))
    }

    /// Condition on additional observations without refitting the
    /// hyperparameters, in `O(n² q)` via Cholesky extension. `ys` are on
    /// the **raw** target scale; the frozen standardization is reused,
    /// and the profiled trend is recomputed (cheap: two solves).
    ///
    /// This implements both the Kriging-Believer fantasy update (with
    /// `ys` = posterior means) and the cheap real-data append between
    /// full refits.
    pub fn condition_on(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<GaussianProcess> {
        if xs.len() != ys.len() {
            return Err(GpError::BadTrainingData("xs/ys length mismatch".into()));
        }
        if xs.is_empty() {
            return Ok(self.clone());
        }
        for p in xs {
            if p.len() != self.dim() {
                return Err(GpError::BadTrainingData("new point dimension".into()));
            }
        }
        let q = xs.len();
        let mut new_x = Matrix::zeros(q, self.dim());
        for (i, p) in xs.iter().enumerate() {
            new_x.row_mut(i).copy_from_slice(p);
        }
        // Blocks of the extended K_y.
        let b = self.kernel.cross_matrix(&self.x, &new_x); // n x q
        let mut c = self.kernel.matrix(&new_x); // q x q
        c.add_diag(self.noise);
        let chol = self.chol.extend(&b, &c)?;

        let mut x = self.x.clone();
        for p in xs {
            x.push_row(p).expect("dimension checked above");
        }
        let mut y_std = self.y_std.clone();
        y_std.extend(ys.iter().map(|v| (v - self.shift) / self.scale));
        let (trend, alpha) = profiled_trend_and_alpha(&chol, &y_std)?;
        let lt = chol.transposed_factor();
        Ok(GaussianProcess {
            kernel: self.kernel.clone(),
            noise: self.noise,
            x,
            y_std,
            shift: self.shift,
            scale: self.scale,
            trend,
            chol,
            lt,
            alpha,
        })
    }

    /// Append real observations under **frozen hyperparameters and
    /// frozen standardization**, in `O(n² q)` — the cycle-amortized fast
    /// path the engine uses between full refits when incremental updates
    /// are enabled.
    ///
    /// Unlike [`condition_on`](Self::condition_on) (which serves the
    /// Kriging-Believer fantasy loop through the tolerance-level
    /// [`Cholesky::extend`]), this path extends the factor through
    /// [`Cholesky::extend_exact`]: the cached `n x n` Gram block inside
    /// the factor is reused untouched, only the `n x q` cross block and
    /// the `q x q` corner are evaluated, and the appended factor rows
    /// reproduce the serial factorization kernel exactly. The result is
    /// **bit-identical** to rebuilding the GP from scratch on the stacked
    /// data with the same frozen standardization whenever `n + q ≤`
    /// [`pbo_linalg::cholesky::BIT_EXACT_MAX_N`] (pinned by a test);
    /// above that the from-scratch factor switches to the blocked
    /// reassociated sweep and agreement is to summation-order ulps.
    /// If the appended rows are not positive-definite at the frozen
    /// jitter, the method falls back to that full rebuild internally
    /// (which may escalate jitter), so it never fails on valid data and
    /// never silently degrades the factor.
    pub fn update(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<GaussianProcess> {
        if xs.len() != ys.len() {
            return Err(GpError::BadTrainingData("xs/ys length mismatch".into()));
        }
        if xs.is_empty() {
            return Ok(self.clone());
        }
        for p in xs {
            if p.len() != self.dim() {
                return Err(GpError::BadTrainingData("new point dimension".into()));
            }
        }
        if !ys.iter().all(|v| v.is_finite()) {
            return Err(GpError::BadTrainingData("non-finite target".into()));
        }
        let q = xs.len();
        let mut new_x = Matrix::zeros(q, self.dim());
        for (i, p) in xs.iter().enumerate() {
            new_x.row_mut(i).copy_from_slice(p);
        }
        // Only the new blocks of the extended K_y are evaluated; `eval`
        // is symmetric bit-for-bit, so these entries match what a
        // from-scratch `kernel.matrix` assembly would place in the
        // appended rows.
        let b = self.kernel.cross_matrix(&self.x, &new_x); // n x q
        let mut c = self.kernel.matrix(&new_x); // q x q
        c.add_diag(self.noise);

        let mut x = self.x.clone();
        for p in xs {
            x.push_row(p).expect("dimension checked above");
        }
        let mut y_std = self.y_std.clone();
        y_std.extend(ys.iter().map(|v| (v - self.shift) / self.scale));

        match self.chol.extend_exact(&b, &c) {
            Ok(chol) => {
                let (trend, alpha) = profiled_trend_and_alpha(&chol, &y_std)?;
                let lt = chol.transposed_factor();
                Ok(GaussianProcess {
                    kernel: self.kernel.clone(),
                    noise: self.noise,
                    x,
                    y_std,
                    shift: self.shift,
                    scale: self.scale,
                    trend,
                    chol,
                    lt,
                    alpha,
                })
            }
            // The appended rows failed at the frozen jitter: only a
            // global refactorization (with its own jitter escalation)
            // can represent the stacked system.
            Err(_) => Self::from_standardized(
                x,
                y_std,
                self.shift,
                self.scale,
                self.kernel.clone(),
                self.noise,
            ),
        }
    }

    /// The Cholesky factor of `K + σ_n² I` (standardized scale). The
    /// acquisition layer needs it for posterior gradients.
    pub fn chol(&self) -> &Cholesky {
        &self.chol
    }

    /// The weight vector `α = K_y⁻¹ (y_std − m̂)`.
    pub fn weights(&self) -> &[f64] {
        &self.alpha
    }

    /// Profiled constant trend on the standardized scale.
    pub fn trend_std(&self) -> f64 {
        self.trend
    }

    /// Best (lowest/highest) observed raw target.
    pub fn best_observed(&self, maximize: bool) -> f64 {
        let ys = self.train_y_raw();
        ys.iter()
            .copied()
            .fold(if maximize { f64::NEG_INFINITY } else { f64::INFINITY }, |acc, v| {
                if maximize {
                    acc.max(v)
                } else {
                    acc.min(v)
                }
            })
    }
}

/// Column sums of squares `Σᵢ v[i,j]²` of a `rows × q` matrix.
///
/// At or below [`pbo_linalg::cholesky::BIT_EXACT_MAX_N`] rows this is
/// the plain serial accumulation (byte-identical to the historical
/// `predict_many` loop). Above the cap, rows are cut into **fixed**
/// 128-row bands — independent of the thread count — whose partial sums
/// are computed by a worker pool and folded serially in band order, so
/// the reassociation is decided by the band grid alone and the result
/// is bitwise identical for any thread count (the PR-6 blocked-
/// factorization policy). Shared by the dense and sparse batched
/// prediction paths.
pub(crate) fn banded_sq_colsums(v: &Matrix) -> Vec<f64> {
    let n = v.rows();
    let q = v.cols();
    let mut vtv = vec![0.0; q];
    if n <= pbo_linalg::cholesky::BIT_EXACT_MAX_N {
        for i in 0..n {
            for (s, vij) in vtv.iter_mut().zip(v.row(i)) {
                *s += vij * vij;
            }
        }
        return vtv;
    }
    const PREDICT_BAND: usize = 128;
    let bands = n.div_ceil(PREDICT_BAND);
    // Worker count only decides scheduling; band partials are folded in
    // band order below either way.
    let workers = if n * q < (1 << 21) { 1 } else { pbo_linalg::parallel::num_threads() };
    let partials = pbo_linalg::parallel::par_map_workers(bands, workers.min(bands), |b| {
        let lo = b * PREDICT_BAND;
        let hi = (lo + PREDICT_BAND).min(n);
        let mut acc = vec![0.0; q];
        for i in lo..hi {
            for (s, vij) in acc.iter_mut().zip(v.row(i)) {
                *s += vij * vij;
            }
        }
        acc
    });
    for part in &partials {
        for (s, p) in vtv.iter_mut().zip(part) {
            *s += p;
        }
    }
    vtv
}

/// Closed-form profiled constant trend and the resulting weights.
fn profiled_trend_and_alpha(chol: &Cholesky, y_std: &[f64]) -> Result<(f64, Vec<f64>)> {
    let n = y_std.len();
    let ones = vec![1.0; n];
    let kinv_ones = chol.solve(&ones)?;
    let kinv_y = chol.solve(y_std)?;
    let denom = dot(&ones, &kinv_ones);
    let trend = if denom.abs() > 1e-300 { dot(&ones, &kinv_y) / denom } else { 0.0 };
    let alpha: Vec<f64> = kinv_y.iter().zip(&kinv_ones).map(|(a, b)| a - trend * b).collect();
    Ok((trend, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelType;

    fn toy_gp(noise: f64) -> GaussianProcess {
        // 1-D data from y = sin(4x) + 10 (shifted to exercise the trend).
        let xs: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = xs.iter().map(|&v| (4.0 * v).sin() + 10.0).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 1);
        kernel.lengthscales = vec![0.25];
        GaussianProcess::new(x, &y, kernel, noise).unwrap()
    }

    #[test]
    fn interpolates_with_small_noise() {
        let gp = toy_gp(1e-8);
        for i in 0..9 {
            let xv = i as f64 / 8.0;
            let (m, v) = gp.predict(&[xv]);
            let truth = (4.0 * xv).sin() + 10.0;
            assert!((m - truth).abs() < 1e-3, "mean at {xv}: {m} vs {truth}");
            assert!(v < 1e-3, "variance at training point: {v}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let gp = toy_gp(1e-6);
        let (_, v_near) = gp.predict(&[0.5]);
        let (_, v_far) = gp.predict(&[3.0]);
        assert!(v_far > 10.0 * v_near);
    }

    #[test]
    fn far_field_reverts_to_trend() {
        let gp = toy_gp(1e-6);
        let m_far = gp.predict_mean(&[50.0]);
        // Trend should be close to the data mean (≈ 10 + mean of sin).
        let data_mean =
            pbo_linalg::vec_ops::mean(&gp.train_y_raw());
        assert!((m_far - data_mean).abs() < 0.5, "{m_far} vs {data_mean}");
    }

    #[test]
    fn condition_on_matches_full_rebuild() {
        let gp = toy_gp(1e-6);
        let new_x = vec![vec![0.3], vec![0.77]];
        let new_y = vec![11.2, 9.4];
        let fant = gp.condition_on(&new_x, &new_y).unwrap();

        // Rebuild from scratch with the same standardization by stacking
        // raw data (standardization differs slightly, so compare
        // predictions which are invariant when shift/scale are frozen):
        let mut x = gp.train_x().clone();
        x.push_row(&[0.3]).unwrap();
        x.push_row(&[0.77]).unwrap();
        let mut y_std = gp.y_std.clone();
        let (shift, scale) = gp.standardization();
        y_std.push((11.2 - shift) / scale);
        y_std.push((9.4 - shift) / scale);
        let rebuilt = GaussianProcess::from_standardized(
            x,
            y_std,
            shift,
            scale,
            gp.kernel().clone(),
            gp.noise(),
        )
        .unwrap();

        for &p in &[0.05, 0.33, 0.6, 0.95] {
            let (m1, v1) = fant.predict(&[p]);
            let (m2, v2) = rebuilt.predict(&[p]);
            assert!((m1 - m2).abs() < 1e-7, "mean {m1} vs {m2}");
            assert!((v1 - v2).abs() < 1e-7, "var {v1} vs {v2}");
        }
    }

    #[test]
    fn update_is_bit_identical_to_frozen_std_rebuild() {
        // The incremental append path promises *bit* identity with a
        // from-scratch rebuild (frozen standardization) below
        // BIT_EXACT_MAX_N — the contract that lets the engine enable it
        // without shifting seeded trajectories on hyperparameter-stable
        // cycles.
        let gp = toy_gp(1e-6);
        let new_x = vec![vec![0.31], vec![0.74], vec![1.12]];
        let new_y = vec![11.2, 9.4, 10.7];
        let upd = gp.update(&new_x, &new_y).unwrap();

        let mut x = gp.train_x().clone();
        for p in &new_x {
            x.push_row(p).unwrap();
        }
        let (shift, scale) = gp.standardization();
        let mut y_std = gp.y_std.clone();
        y_std.extend(new_y.iter().map(|v| (v - shift) / scale));
        let rebuilt = GaussianProcess::from_standardized(
            x,
            y_std,
            shift,
            scale,
            gp.kernel().clone(),
            gp.noise(),
        )
        .unwrap();

        assert_eq!(upd.n(), rebuilt.n());
        assert_eq!(upd.chol().jitter(), rebuilt.chol().jitter());
        assert_eq!(upd.chol().l(), rebuilt.chol().l());
        assert_eq!(upd.trend_std().to_bits(), rebuilt.trend_std().to_bits());
        for (i, (a, b)) in upd.weights().iter().zip(rebuilt.weights()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "alpha[{i}]");
        }
        for &p in &[0.05, 0.33, 0.6, 0.95, 1.4] {
            let (m1, v1) = upd.predict(&[p]);
            let (m2, v2) = rebuilt.predict(&[p]);
            assert_eq!(m1.to_bits(), m2.to_bits(), "mean at {p}");
            assert_eq!(v1.to_bits(), v2.to_bits(), "var at {p}");
        }
    }

    #[test]
    fn update_empty_is_noop_and_bad_input_rejected() {
        let gp = toy_gp(1e-6);
        let same = gp.update(&[], &[]).unwrap();
        assert_eq!(same.n(), gp.n());
        assert!(gp.update(&[vec![0.1]], &[]).is_err());
        assert!(gp.update(&[vec![0.1, 0.2]], &[1.0]).is_err());
        assert!(gp.update(&[vec![0.1]], &[f64::NAN]).is_err());
    }

    #[test]
    fn update_on_duplicated_point_falls_back_gracefully() {
        // Appending an exact duplicate of a training point makes the
        // extended system singular at the frozen jitter (tiny noise);
        // the update must still produce a usable GP via the internal
        // full-rebuild fallback, bit-identical to that rebuild.
        let gp = toy_gp(1e-12);
        let dup = gp.train_x().row(4).to_vec();
        let yv = gp.train_y_raw()[4];
        let upd = gp.update(&[dup.clone()], &[yv]).unwrap();
        assert_eq!(upd.n(), gp.n() + 1);
        let (m, v) = upd.predict(&[0.4]);
        assert!(m.is_finite() && v.is_finite());

        let mut x = gp.train_x().clone();
        x.push_row(&dup).unwrap();
        let (shift, scale) = gp.standardization();
        let mut y_std = gp.y_std.clone();
        y_std.push((yv - shift) / scale);
        let rebuilt = GaussianProcess::from_standardized(
            x,
            y_std,
            shift,
            scale,
            gp.kernel().clone(),
            gp.noise(),
        )
        .unwrap();
        assert_eq!(upd.chol().l(), rebuilt.chol().l());
    }

    #[test]
    fn condition_on_empty_is_noop() {
        let gp = toy_gp(1e-6);
        let same = gp.condition_on(&[], &[]).unwrap();
        assert_eq!(same.n(), gp.n());
    }

    #[test]
    fn posterior_joint_diag_matches_predict() {
        let gp = toy_gp(1e-5);
        let pts = Matrix::from_rows(&[vec![0.2], vec![0.9], vec![1.5]]).unwrap();
        let (means, cov) = gp.posterior_joint(&pts).unwrap();
        for (i, &p) in [0.2, 0.9, 1.5].iter().enumerate() {
            let (m, v) = gp.predict(&[p]);
            assert!((means[i] - m).abs() < 1e-9);
            assert!((cov[(i, i)] - v).abs() < 1e-9 * (1.0 + v));
        }
        // Covariance symmetric and PSD-ish.
        assert!((cov[(0, 1)] - cov[(1, 0)]).abs() < 1e-12);
        let corr = cov[(0, 1)] / (cov[(0, 0)] * cov[(1, 1)]).sqrt();
        assert!(corr.abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn predict_many_matches_predict_exactly() {
        // The batched path evaluates the same kernel entries and the same
        // triangular system as the scalar path; the only divergence is
        // summation order (unrolled dot vs per-column axpy), so the match
        // must hold to a few ulps — far tighter than any model tolerance.
        let gp = toy_gp(1e-6);
        let qs: Vec<Vec<f64>> =
            (0..23).map(|i| vec![i as f64 * 0.13 - 0.4]).collect();
        let pts = Matrix::from_rows(&qs).unwrap();
        let (means, vars) = gp.predict_many(&pts);
        for (i, p) in qs.iter().enumerate() {
            let (m, v) = gp.predict(p);
            assert!(
                (means[i] - m).abs() <= 1e-13 * (1.0 + m.abs()),
                "mean at {p:?}: {} vs {m}",
                means[i]
            );
            assert!(
                (vars[i] - v).abs() <= 1e-13 * (1.0 + v.abs()),
                "var at {p:?}: {} vs {v}",
                vars[i]
            );
        }
        let (em, ev) = gp.predict_many(&Matrix::zeros(0, 1));
        assert!(em.is_empty() && ev.is_empty());
    }

    #[test]
    fn predict_with_is_bit_identical_to_predict() {
        let gp = toy_gp(1e-6);
        let mut ws = PredictWorkspace::new();
        for i in 0..23 {
            let p = [i as f64 * 0.13 - 0.4];
            let (m0, v0) = gp.predict(&p);
            let (m1, v1) = gp.predict_with(&p, &mut ws);
            assert_eq!(m0.to_bits(), m1.to_bits(), "mean at {p:?}");
            assert_eq!(v0.to_bits(), v1.to_bits(), "var at {p:?}");
        }
    }

    #[test]
    fn posterior_parts_match_allocating_reference() {
        // The workspace posterior follows the allocating reference recipe
        // the acquisition layer historically used — k = cross_vec,
        // c = chol.solve(k), var = prior − kᵀc — with the same arithmetic
        // in the same order, so at this size (below the backward-solve
        // `BIT_EXACT_MAX_N` threshold) every value must be bit-identical:
        // seeded BO trajectories depend on it.
        let gp = toy_gp(1e-6);
        let mut ws = PredictWorkspace::new();
        for i in 0..17 {
            let p = [i as f64 * 0.17 - 0.3];
            let (mean_std, var_std) = gp.posterior_parts_with(&p, &mut ws);

            let k = gp.kernel().cross_vec(gp.train_x(), &p);
            let c = gp.chol().solve(&k).unwrap();
            let mean_ref = gp.trend_std() + dot(&k, gp.weights());
            let var_ref = (gp.kernel().prior_var() - dot(&k, &c)).max(1e-14);
            assert!(mean_std.to_bits() == mean_ref.to_bits(), "mean at {p:?}: {mean_std} vs {mean_ref}");
            assert!(var_std.to_bits() == var_ref.to_bits(), "var at {p:?}: {var_std} vs {var_ref}");
            for (j, (&kw, &kr)) in ws.cross().iter().zip(&k).enumerate() {
                assert!(kw.to_bits() == kr.to_bits(), "k[{j}] at {p:?}: {kw} vs {kr}");
            }
            for (j, (&cw, &cr)) in ws.solved().iter().zip(&c).enumerate() {
                assert!(cw.to_bits() == cr.to_bits(), "c[{j}] at {p:?}: {cw} vs {cr}");
            }
            // Gradient factors match the scalar kernel path bit-for-bit.
            for (i, &gf) in ws.grad_factors().iter().enumerate() {
                let r = gp.kernel().scaled_dist(gp.train_x().row(i), &p);
                let expect = gp.kernel().outputscale * gp.kernel().family.grad_factor(r);
                assert!(gf.to_bits() == expect.to_bits(), "gf[{i}] at {p:?}: {gf} vs {expect}");
            }
        }
    }

    #[test]
    fn constant_targets_do_not_blow_up() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.5], vec![0.9]]).unwrap();
        let y = vec![5.0; 3];
        let gp = GaussianProcess::new(x, &y, Kernel::new(KernelType::Rbf, 1), 1e-6).unwrap();
        let (m, v) = gp.predict(&[0.3]);
        assert!((m - 5.0).abs() < 1e-6);
        assert!(v.is_finite());
    }

    #[test]
    fn rejects_bad_input() {
        let x = Matrix::from_rows(&[vec![0.1]]).unwrap();
        assert!(GaussianProcess::new(
            x.clone(),
            &[1.0, 2.0],
            Kernel::new(KernelType::Rbf, 1),
            1e-6
        )
        .is_err());
        assert!(GaussianProcess::new(
            x.clone(),
            &[f64::NAN],
            Kernel::new(KernelType::Rbf, 1),
            1e-6
        )
        .is_err());
        assert!(GaussianProcess::new(x, &[1.0], Kernel::new(KernelType::Rbf, 2), 1e-6).is_err());
        assert!(GaussianProcess::new(
            Matrix::zeros(0, 1),
            &[],
            Kernel::new(KernelType::Rbf, 1),
            1e-6
        )
        .is_err());
    }

    #[test]
    fn best_observed_both_directions() {
        let gp = toy_gp(1e-6);
        let ys = gp.train_y_raw();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((gp.best_observed(false) - lo).abs() < 1e-12);
        assert!((gp.best_observed(true) - hi).abs() < 1e-12);
    }
}
