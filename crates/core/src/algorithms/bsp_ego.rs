//! BSP-EGO (Gobert et al. 2020): parallel local acquisition over a
//! binary space partition.
//!
//! Per cycle: fit one **global** model, then run `2q` independent EI
//! maximizations, one per partition cell, *in parallel* (the paper maps
//! two cells per core). The `2q` candidates are sorted by EI and the
//! best `q` are evaluated. The partition then evolves: the cell holding
//! the best candidate is split, the least valuable sibling pair merged.
//!
//! The acquisition clock is charged `serial-time / q` via
//! [`crate::clock::VirtualClock::charge_parallel`] — the parallel
//! acquisition is the method's scalability advantage (Fig. 2, Fig. 9a).

use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_problems::Problem;

/// Drive a prepared engine with BSP-EGO to budget exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::BspEgo, e)
}

/// Run BSP-EGO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("bsp-ego")
        .build()
        .expect("invalid BSP-EGO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn runs_and_commits_q_per_cycle() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(3, 2).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.n_simulations(), 8 + 6);
        assert_eq!(r.n_cycles(), 3);
    }

    #[test]
    fn parallel_acquisition_is_cheaper_than_kb_in_fixed_cost() {
        // With the Fixed{per_call: 1} model, BSP charges 1/q per cycle
        // for its whole acquisition (one charge_parallel call) while KB
        // charges 1 (one charge call). The recorded acquisition time
        // must reflect the modeled parallelism.
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(2, 4).with_initial_samples(8);
        let bsp = run(&p, budget, AlgoConfig::test_profile(), 5);
        let kb = super::super::kb_qego::run(&p, budget, AlgoConfig::test_profile(), 5);
        let (_, bsp_acq, _) = bsp.time_split();
        let (_, kb_acq, _) = kb.time_split();
        assert!(bsp_acq < kb_acq, "bsp {bsp_acq} vs kb {kb_acq}");
    }

    #[test]
    fn improves_over_initial_design() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 7);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }
}
