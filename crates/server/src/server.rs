//! The TCP daemon: thread per connection, newline-delimited JSON.
//!
//! Failure containment is the design rule: a malformed line answers a
//! typed error and the connection lives on; a session-layer error
//! answers a typed error and the *session* lives on; a dropped
//! connection kills only its own thread. The only ways the accept loop
//! ends are a `shutdown` request and the process being killed — the
//! latter is exactly what the crash/restart conformance suite does.

use crate::proto::{parse_request, ErrorBody, Request, RequestErrorKind};
use crate::registry::Registry;
use pbo_core::json::{push_f64_lossless, push_str_literal};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A bound (but not yet serving) daemon.
pub struct Server {
    registry: Arc<Registry>,
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    /// The bound address.
    pub addr: SocketAddr,
    handle: JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Wait for the daemon to exit (after a `shutdown` request).
    pub fn join(self) -> std::io::Result<()> {
        self.handle.join().expect("server thread panicked")
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port; read the real
    /// one back from [`Server::local_addr`]).
    pub fn bind(registry: Arc<Registry>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server { registry, listener, addr, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a `shutdown` request arrives. Blocking.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let registry = self.registry.clone();
            let shutdown = self.shutdown.clone();
            let addr = self.addr;
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &registry, &shutdown, addr);
            });
        }
        Ok(())
    }

    /// Serve on a background thread; returns once the socket accepts.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let handle = std::thread::spawn(move || self.run());
        ServerHandle { addr, handle }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = dispatch(registry, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
    Ok(())
}

/// Serve one request line; returns the response line and whether the
/// daemon should stop. Never panics on client input.
pub fn dispatch(registry: &Registry, line: &str) -> (String, bool) {
    let (proto, request) = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            registry.metrics().counter("server.errors.protocol").inc();
            return (e.to_line(), false);
        }
    };
    let result: Result<String, ErrorBody> = match request {
        Request::Create { id, config } => {
            // A v1 client could create a variable-q session but never
            // learn each cycle's batch size; refuse up front.
            if proto < 2 && config.algorithm.is_variable_q() {
                Err(needs_proto_2(config.algorithm.name()))
            } else {
                registry.create(&id, config).map(|r| {
                    let mut out = ok_head();
                    out.push_str(",\"id\":");
                    push_str_literal(&mut out, &id);
                    out.push_str(",\"key\":");
                    push_str_literal(&mut out, &r.key);
                    let _ = write!(out, ",\"created\":{},\"turn\":{}}}", r.created, r.turn);
                    out
                })
            }
        }
        Request::Ask { id } => {
            // The session may predate this connection (created by a v2
            // client, asked by a v1 one), so the gate re-checks here.
            let gate = if proto < 2 {
                registry.variable_q(&id).and_then(|variable| {
                    if variable {
                        Err(needs_proto_2(&format!("session '{id}'")))
                    } else {
                        Ok(())
                    }
                })
            } else {
                Ok(())
            };
            gate.and_then(|()| registry.ask(&id)).map(|r| {
                let mut out = ok_head();
                let _ = write!(out, ",\"turn\":{},", r.turn);
                if proto >= 2 {
                    let _ = write!(out, "\"q\":{},", r.q);
                }
                out.push_str("\"points\":[");
                for (i, p) in r.points.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (j, v) in p.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        push_f64_lossless(&mut out, *v);
                    }
                    out.push(']');
                }
                out.push_str("]}");
                out
            })
        }
        Request::Tell { id, turn, values } => registry.tell(&id, turn, &values).map(|r| {
            let mut out = ok_head();
            let _ = write!(out, ",\"turn\":{},\"done\":{}}}", r.turn, r.done);
            out
        }),
        Request::Status { id } => registry.status(&id).map(|(s, key)| {
            let mut out = ok_head();
            out.push_str(",\"id\":");
            push_str_literal(&mut out, &id);
            out.push_str(",\"phase\":");
            push_str_literal(&mut out, s.phase);
            let _ = write!(
                out,
                ",\"turn\":{},\"cycles\":{},\"n_data\":{},\"best_y\":",
                s.turn, s.cycles, s.n_data
            );
            match s.best_y {
                Some(v) => push_f64_lossless(&mut out, v),
                None => out.push_str("null"),
            }
            out.push_str(",\"clock\":");
            push_f64_lossless(&mut out, s.clock);
            out.push_str(",\"key\":");
            push_str_literal(&mut out, &key);
            out.push('}');
            out
        }),
        Request::Record { id } => registry.record_line(&id).map(|line| {
            let mut out = ok_head();
            out.push_str(",\"record\":");
            push_str_literal(&mut out, &line);
            out.push('}');
            out
        }),
        Request::List => Ok({
            let mut out = ok_head();
            out.push_str(",\"sessions\":[");
            for (i, (id, phase, turn)) in registry.list().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"id\":");
                push_str_literal(&mut out, id);
                out.push_str(",\"phase\":");
                push_str_literal(&mut out, phase);
                let _ = write!(out, ",\"turn\":{turn}}}");
            }
            out.push_str("]}");
            out
        }),
        Request::ServerStatus => Ok({
            let snap = registry.metrics().snapshot();
            let mut out = ok_head();
            let _ = write!(out, ",\"proto\":{}", crate::proto::PROTO_VERSION);
            out.push_str(",\"protos\":[");
            for (i, p) in crate::proto::SUPPORTED_PROTOS.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{p}");
            }
            out.push(']');
            let _ = write!(out, ",\"sessions\":{}", registry.len());
            out.push_str(",\"counters\":{");
            for (i, (name, value)) in snap.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_literal(&mut out, name);
                let _ = write!(out, ":{value}");
            }
            out.push_str("}}");
            out
        }),
        Request::Close { id } => registry.close(&id).map(|()| {
            let mut out = ok_head();
            out.push('}');
            out
        }),
        Request::Shutdown => {
            let mut out = ok_head();
            out.push_str(",\"stopping\":true}");
            return (out, true);
        }
    };
    match result {
        Ok(line) => (line, false),
        Err(e) => {
            registry
                .metrics()
                .counter(&format!("server.errors.{}", e.code))
                .inc();
            (e.to_line(), false)
        }
    }
}

fn ok_head() -> String {
    String::from("{\"ok\":true")
}

/// The typed refusal for variable-q work requested over protocol 1.
fn needs_proto_2(what: &str) -> ErrorBody {
    ErrorBody::request(
        RequestErrorKind::UnsupportedVersion,
        format!("{what} chooses its batch size per cycle; proto 2 is required to carry q"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::json::{parse, Json};

    #[test]
    fn dispatch_survives_garbage_without_touching_sessions() {
        let reg = Registry::in_memory();
        for garbage in ["", "{", "null", "{\"proto\":1,\"op\":\"nope\"}", "\u{7f}\u{1}"] {
            let (resp, stop) = dispatch(&reg, garbage);
            assert!(!stop);
            let v = parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        }
        assert!(reg.is_empty());
    }

    #[test]
    fn unknown_session_is_a_typed_error() {
        let reg = Registry::in_memory();
        let (resp, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"ask\",\"id\":\"ghost\"}");
        let v = parse(&resp).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some("unknown_session")
        );
    }

    #[test]
    fn shutdown_sets_stop_flag() {
        let reg = Registry::in_memory();
        let (resp, stop) = dispatch(&reg, "{\"proto\":1,\"op\":\"shutdown\"}");
        assert!(stop);
        assert!(resp.contains("\"stopping\":true"));
    }

    fn variable_q_create_body(id: &str) -> String {
        use pbo_core::algorithms::AlgorithmKind;
        use pbo_core::budget::Budget;
        use pbo_core::session::{ProblemSpec, SessionConfig, SessionProfile};
        use pbo_problems::SyntheticFn;
        let cfg = SessionConfig {
            algorithm: AlgorithmKind::HybridQ,
            problem: ProblemSpec::of(&SyntheticFn::ackley(2)),
            budget: Budget::cycles(2, 2).with_initial_samples(4),
            profile: SessionProfile::Test,
            seed: 7,
        };
        let mut out = String::new();
        cfg.encode_json(&mut out);
        format!("\"id\":\"{id}\",\"config\":{out}}}")
    }

    fn error_code(resp: &str) -> Option<String> {
        parse(resp)
            .ok()?
            .get("error")?
            .get("code")
            .and_then(Json::as_str)
            .map(str::to_string)
    }

    #[test]
    fn proto_1_cannot_create_or_ask_a_variable_q_session() {
        let reg = Registry::in_memory();
        let body = variable_q_create_body("vq");
        // v1 create is refused with the pinned code…
        let (resp, _) = dispatch(&reg, &format!("{{\"proto\":1,\"op\":\"create\",{body}"));
        assert_eq!(error_code(&resp).as_deref(), Some("unsupported_version"));
        assert!(reg.is_empty(), "refused create must not register a session");
        // …a v2 create succeeds…
        let (resp, _) = dispatch(&reg, &format!("{{\"proto\":2,\"op\":\"create\",{body}"));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // …and a later v1 ask against that session is refused too.
        let (resp, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"ask\",\"id\":\"vq\"}");
        assert_eq!(error_code(&resp).as_deref(), Some("unsupported_version"));
        let (resp, _) = dispatch(&reg, "{\"proto\":2,\"op\":\"ask\",\"id\":\"vq\"}");
        assert!(resp.contains("\"q\":"), "v2 ask carries the batch size: {resp}");
    }

    #[test]
    fn ask_reply_carries_q_only_on_proto_2() {
        use pbo_core::algorithms::AlgorithmKind;
        use pbo_core::budget::Budget;
        use pbo_core::session::{ProblemSpec, SessionConfig, SessionProfile};
        use pbo_problems::SyntheticFn;
        let reg = Registry::in_memory();
        let cfg = SessionConfig {
            algorithm: AlgorithmKind::RandomSearch,
            problem: ProblemSpec::of(&SyntheticFn::ackley(2)),
            budget: Budget::cycles(2, 3).with_initial_samples(4),
            profile: SessionProfile::Test,
            seed: 1,
        };
        reg.create("s", cfg).unwrap();
        let (v1, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"ask\",\"id\":\"s\"}");
        assert!(v1.contains("\"ok\":true") && !v1.contains("\"q\":"), "{v1}");
        let (v2, _) = dispatch(&reg, "{\"proto\":2,\"op\":\"ask\",\"id\":\"s\"}");
        let v = parse(&v2).unwrap();
        assert_eq!(v.get("q").and_then(Json::as_usize), Some(4), "design batch: {v2}");
    }

    #[test]
    fn server_status_advertises_both_protos() {
        let reg = Registry::in_memory();
        let (resp, _) = dispatch(&reg, "{\"proto\":1,\"op\":\"server-status\"}");
        assert!(resp.contains("\"protos\":[1,2]"), "{resp}");
    }
}
