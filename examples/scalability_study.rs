//! The breaking-point experiment in miniature (Figs. 2 and 9): sweep
//! the batch size and watch cycles, simulations and final quality.
//!
//! ```text
//! cargo run --release --example scalability_study [algorithm]
//! ```
//! `algorithm` ∈ {kb-q-ego, mic-q-ego, mc-q-ego, bsp-ego, turbo};
//! default kb-q-ego.

use pbo::core::algorithms::{run_algorithm, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::problems::SyntheticFn;

fn main() {
    let kind = std::env::args()
        .nth(1)
        .and_then(|s| AlgorithmKind::from_name(&s))
        .unwrap_or(AlgorithmKind::KbQEgo);
    let problem = SyntheticFn::ackley(12);

    println!("{} on Ackley-12d, 20 virtual minutes per run", kind.name());
    println!(
        "{:>4} {:>8} {:>8} {:>10} | {:>10} {:>10}",
        "q", "cycles", "sims", "best", "fit+acq[s]", "per-cycle"
    );
    let mut prev_sims = 0usize;
    for q in [1usize, 2, 4, 8, 16] {
        let budget = Budget::paper(q);
        let r = run_algorithm(kind, &problem, &budget, 777);
        let (fit, acq, _) = r.time_split();
        let overhead = fit + acq;
        println!(
            "{:>4} {:>8} {:>8} {:>10.3} | {:>10.0} {:>10.1}",
            q,
            r.n_cycles(),
            r.n_simulations(),
            r.best_y(),
            overhead,
            overhead / r.n_cycles().max(1) as f64
        );
        // The breaking point: beyond it, doubling the workers stops
        // buying simulations.
        if q > 1 && r.n_simulations() < prev_sims {
            println!("     ^ breaking point: more workers, fewer simulations");
        }
        prev_sims = r.n_simulations();
    }
}
