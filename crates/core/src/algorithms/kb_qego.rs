//! KB-q-EGO: q-EGO with the Kriging-Believer heuristic
//! (Ginsbourger, Le Riche & Carraro 2008).
//!
//! Per cycle: fit the model, then build the batch *sequentially* —
//! maximize single-point EI, "believe" the model's posterior mean at
//! the winner (the fantasy value), condition the model on it without
//! hyperparameter re-estimation, and repeat q times. The q sequential
//! model conditionings are the method's scalability bottleneck that the
//! paper highlights; they are charged to the acquisition clock.

use super::acq_multistart;
use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine, FantasyKind};
use crate::record::RunRecord;
use pbo_acq::single::{optimize_single, ExpectedImprovement};
use pbo_gp::FantasySurrogate;
use pbo_opt::Bounds;
use pbo_problems::Problem;

/// Build one Kriging-Believer batch of `q` candidates. Returns the
/// batch plus the summed multistart restart shortfall. Generic over the
/// surrogate backend: the believer's sequential conditioning costs
/// O(n²) per fantasy on the dense GP and O(m²) on the sparse one.
pub fn kb_batch<S: FantasySurrogate>(
    gp: &S,
    bounds: &Bounds,
    q: usize,
    cfg: &AlgoConfig,
    seed: u64,
) -> (Vec<Vec<f64>>, usize) {
    let mut model = gp.clone();
    let mut batch = Vec::with_capacity(q);
    let mut shortfall = 0usize;
    for i in 0..q {
        let f_best = model.best_observed(false);
        let ei = ExpectedImprovement { f_best };
        let ms = acq_multistart(cfg, seed.wrapping_add(i as u64));
        let r = optimize_single(&model as &dyn pbo_gp::Surrogate, &ei, bounds, &[], &ms);
        shortfall += r.restart_shortfall;
        if i + 1 < q {
            // Fantasy conditioning (the believer by default; constant
            // liars for the ablation study).
            let y_fantasy = match cfg.acq.kb_fantasy {
                FantasyKind::PosteriorMean => model.predict_mean(&r.x),
                FantasyKind::ConstantLiarMin => model.best_observed(false),
                FantasyKind::ConstantLiarMax => model.best_observed(true),
            };
            if let Ok(updated) = model.condition_on(std::slice::from_ref(&r.x), &[y_fantasy]) {
                model = updated;
            }
        }
        batch.push(r.x);
    }
    (batch, shortfall)
}

/// Drive a prepared engine with KB-q-EGO to budget exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::KbQEgo, e)
}

/// Run KB-q-EGO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("kb-q-ego")
        .build()
        .expect("invalid KB-q-EGO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use pbo_problems::SyntheticFn;

    #[test]
    fn improves_over_initial_design() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.n_cycles(), 4);
        assert_eq!(r.n_simulations(), 10 + 8);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best, "{} vs DoE best {doe_best}", r.best_y());
    }

    #[test]
    fn batch_points_are_distinct() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(1, 4).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 5);
        // 4 committed points after the DoE must be pairwise distinct.
        assert_eq!(r.n_simulations(), 14);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(2, 2).with_initial_samples(8);
        let a = run(&p, budget, AlgoConfig::test_profile(), 11);
        let b = run(&p, budget, AlgoConfig::test_profile(), 11);
        assert_eq!(a.y_min, b.y_min);
    }
}
