//! Backend-agnostic surrogate abstraction.
//!
//! The BO engine and the acquisition layer historically hard-wired the
//! dense [`GaussianProcess`]. This module introduces:
//!
//! - [`Surrogate`] — the object-safe read-side contract every posterior
//!   consumer needs (pointwise/batched prediction, the zero-allocation
//!   workspace path, joint posteriors, and the covariance-solve
//!   operator the gradient recipes build on),
//! - [`FantasySurrogate`] — the clone-and-condition contract of the
//!   sequential fantasy loops (Kriging Believer, multi-infill),
//! - [`SurrogateModel`] — the enum the engine stores, dispatching to
//!   the exact dense backend or the sparse inducing-point backend in
//!   [`crate::sparse`].
//!
//! Contract notes:
//!
//! - [`Surrogate::support_x`] is the matrix cross-covariances are
//!   evaluated against — the full training set for the dense backend,
//!   the inducing set for the sparse one. [`Surrogate::weights`] and
//!   [`Surrogate::trend_std`] are defined so the standardized posterior
//!   mean is always `trend + k(support, x)·weights`, which keeps the
//!   acquisition gradient recipes backend-generic.
//! - The `cov_solve_*` methods apply the backend's posterior operator
//!   `A`, defined by `var(x) = prior − k(support,x)ᵀ A k(support,x)`:
//!   `K_y⁻¹` for the dense backend, `L⁻ᵀ(I − B⁻¹)L⁻¹` for the sparse
//!   one (see [`crate::sparse`] for the algebra). Both are symmetric
//!   positive semidefinite, which is all the q-EI covariance assembly
//!   and the posterior-gradient chain rule rely on.

use crate::gp::{GaussianProcess, PredictWorkspace};
use crate::kernel::Kernel;
use crate::sparse::SparseGaussianProcess;
use crate::Result;
use pbo_linalg::Matrix;

/// Read-side posterior contract shared by the dense and sparse GP
/// backends. Object safe: the acquisition layer takes `&dyn Surrogate`.
pub trait Surrogate: Send + Sync {
    /// Number of observations the model has absorbed.
    fn n(&self) -> usize;
    /// Input dimension.
    fn dim(&self) -> usize;
    /// The kernel in use.
    fn kernel(&self) -> &Kernel;
    /// Homoskedastic noise variance (standardized scale).
    fn noise(&self) -> f64;
    /// The support set: the rows cross-covariances (and the
    /// acquisition gradient's `∂k/∂x` terms) are evaluated against.
    fn support_x(&self) -> &Matrix;
    /// Posterior-mean weights over the support set.
    fn weights(&self) -> &[f64];
    /// Profiled constant trend (standardized scale).
    fn trend_std(&self) -> f64;
    /// Target standardization `(shift, scale)`.
    fn standardization(&self) -> (f64, f64);
    /// Posterior mean and latent variance at one point, raw scale.
    fn predict(&self, p: &[f64]) -> (f64, f64);
    /// [`predict`](Self::predict) with a reusable workspace
    /// (bit-identical, allocation-free at steady state).
    fn predict_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64);
    /// Standardized posterior mean/variance leaving gradient
    /// intermediates in `ws` (cross row, solved vector, radial grad
    /// factors — all over the support set).
    fn posterior_parts_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64);
    /// Posterior mean only, raw scale.
    fn predict_mean(&self, p: &[f64]) -> f64;
    /// Batched prediction: means and latent variances per row of `pts`.
    fn predict_many(&self, pts: &Matrix) -> (Vec<f64>, Vec<f64>);
    /// Joint posterior over the rows of `pts`: mean vector and full
    /// latent covariance, raw scale.
    fn posterior_joint(&self, pts: &Matrix) -> Result<(Vec<f64>, Matrix)>;
    /// Apply the posterior operator `A` to each column of a
    /// `support × q` cross block, in place.
    fn cov_solve_matrix_in_place(&self, b: &mut Matrix) -> Result<()>;
    /// Apply the posterior operator `A` to one cross vector.
    fn cov_solve_vec(&self, b: &[f64]) -> Result<Vec<f64>>;
    /// Best (lowest/highest) observed raw target.
    fn best_observed(&self, maximize: bool) -> f64;
}

/// Surrogates that support the sequential fantasy-conditioning loops:
/// clone the model, condition on hypothesized observations (raw scale,
/// frozen hyperparameters and standardization), repeat.
pub trait FantasySurrogate: Surrogate + Clone {
    /// Return a new model conditioned on `(xs, ys)` without refitting.
    fn condition_on(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<Self>
    where
        Self: Sized;
}

impl Surrogate for GaussianProcess {
    fn n(&self) -> usize {
        GaussianProcess::n(self)
    }
    fn dim(&self) -> usize {
        GaussianProcess::dim(self)
    }
    fn kernel(&self) -> &Kernel {
        GaussianProcess::kernel(self)
    }
    fn noise(&self) -> f64 {
        GaussianProcess::noise(self)
    }
    fn support_x(&self) -> &Matrix {
        self.train_x()
    }
    fn weights(&self) -> &[f64] {
        GaussianProcess::weights(self)
    }
    fn trend_std(&self) -> f64 {
        GaussianProcess::trend_std(self)
    }
    fn standardization(&self) -> (f64, f64) {
        GaussianProcess::standardization(self)
    }
    fn predict(&self, p: &[f64]) -> (f64, f64) {
        GaussianProcess::predict(self, p)
    }
    fn predict_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        GaussianProcess::predict_with(self, p, ws)
    }
    fn posterior_parts_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        GaussianProcess::posterior_parts_with(self, p, ws)
    }
    fn predict_mean(&self, p: &[f64]) -> f64 {
        GaussianProcess::predict_mean(self, p)
    }
    fn predict_many(&self, pts: &Matrix) -> (Vec<f64>, Vec<f64>) {
        GaussianProcess::predict_many(self, pts)
    }
    fn posterior_joint(&self, pts: &Matrix) -> Result<(Vec<f64>, Matrix)> {
        GaussianProcess::posterior_joint(self, pts)
    }
    fn cov_solve_matrix_in_place(&self, b: &mut Matrix) -> Result<()> {
        self.chol().solve_matrix_in_place(b)?;
        Ok(())
    }
    fn cov_solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        Ok(self.chol().solve(b)?)
    }
    fn best_observed(&self, maximize: bool) -> f64 {
        GaussianProcess::best_observed(self, maximize)
    }
}

impl FantasySurrogate for GaussianProcess {
    fn condition_on(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        GaussianProcess::condition_on(self, xs, ys)
    }
}

impl Surrogate for SparseGaussianProcess {
    fn n(&self) -> usize {
        SparseGaussianProcess::n(self)
    }
    fn dim(&self) -> usize {
        SparseGaussianProcess::dim(self)
    }
    fn kernel(&self) -> &Kernel {
        SparseGaussianProcess::kernel(self)
    }
    fn noise(&self) -> f64 {
        SparseGaussianProcess::noise(self)
    }
    fn support_x(&self) -> &Matrix {
        self.inducing_x()
    }
    fn weights(&self) -> &[f64] {
        SparseGaussianProcess::weights(self)
    }
    fn trend_std(&self) -> f64 {
        SparseGaussianProcess::trend_std(self)
    }
    fn standardization(&self) -> (f64, f64) {
        SparseGaussianProcess::standardization(self)
    }
    fn predict(&self, p: &[f64]) -> (f64, f64) {
        SparseGaussianProcess::predict(self, p)
    }
    fn predict_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        SparseGaussianProcess::predict_with(self, p, ws)
    }
    fn posterior_parts_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        SparseGaussianProcess::posterior_parts_with(self, p, ws)
    }
    fn predict_mean(&self, p: &[f64]) -> f64 {
        SparseGaussianProcess::predict_mean(self, p)
    }
    fn predict_many(&self, pts: &Matrix) -> (Vec<f64>, Vec<f64>) {
        SparseGaussianProcess::predict_many(self, pts)
    }
    fn posterior_joint(&self, pts: &Matrix) -> Result<(Vec<f64>, Matrix)> {
        SparseGaussianProcess::posterior_joint(self, pts)
    }
    fn cov_solve_matrix_in_place(&self, b: &mut Matrix) -> Result<()> {
        SparseGaussianProcess::cov_solve_matrix_in_place(self, b)
    }
    fn cov_solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        SparseGaussianProcess::cov_solve_vec(self, b)
    }
    fn best_observed(&self, maximize: bool) -> f64 {
        SparseGaussianProcess::best_observed(self, maximize)
    }
}

impl FantasySurrogate for SparseGaussianProcess {
    fn condition_on(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        SparseGaussianProcess::condition_on(self, xs, ys)
    }
}

/// The surrogate a BO engine owns: either the exact dense GP or the
/// sparse inducing-point GP, chosen by the engine's configured backend
/// and auto-switch threshold. All [`Surrogate`]/[`FantasySurrogate`]
/// calls dispatch to the wrapped model.
#[derive(Debug, Clone)]
pub enum SurrogateModel {
    /// Exact dense GP (`O(n³)` build, `O(n²)` variance).
    Dense(GaussianProcess),
    /// Sparse inducing-point GP (`O(n m²)` build, `O(m²)` variance).
    Sparse(SparseGaussianProcess),
}

impl SurrogateModel {
    /// The wrapped dense model, if this is the dense backend.
    pub fn as_dense(&self) -> Option<&GaussianProcess> {
        match self {
            SurrogateModel::Dense(g) => Some(g),
            SurrogateModel::Sparse(_) => None,
        }
    }

    /// The wrapped sparse model, if this is the sparse backend.
    pub fn as_sparse(&self) -> Option<&SparseGaussianProcess> {
        match self {
            SurrogateModel::Dense(_) => None,
            SurrogateModel::Sparse(s) => Some(s),
        }
    }

    /// Stable backend name for diagnostics and events.
    pub fn backend_name(&self) -> &'static str {
        match self {
            SurrogateModel::Dense(_) => "dense",
            SurrogateModel::Sparse(_) => "sparse",
        }
    }

    fn inner(&self) -> &dyn Surrogate {
        match self {
            SurrogateModel::Dense(g) => g,
            SurrogateModel::Sparse(s) => s,
        }
    }
}

impl Surrogate for SurrogateModel {
    fn n(&self) -> usize {
        self.inner().n()
    }
    fn dim(&self) -> usize {
        self.inner().dim()
    }
    fn kernel(&self) -> &Kernel {
        self.inner().kernel()
    }
    fn noise(&self) -> f64 {
        self.inner().noise()
    }
    fn support_x(&self) -> &Matrix {
        self.inner().support_x()
    }
    fn weights(&self) -> &[f64] {
        self.inner().weights()
    }
    fn trend_std(&self) -> f64 {
        self.inner().trend_std()
    }
    fn standardization(&self) -> (f64, f64) {
        self.inner().standardization()
    }
    fn predict(&self, p: &[f64]) -> (f64, f64) {
        self.inner().predict(p)
    }
    fn predict_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        self.inner().predict_with(p, ws)
    }
    fn posterior_parts_with(&self, p: &[f64], ws: &mut PredictWorkspace) -> (f64, f64) {
        self.inner().posterior_parts_with(p, ws)
    }
    fn predict_mean(&self, p: &[f64]) -> f64 {
        self.inner().predict_mean(p)
    }
    fn predict_many(&self, pts: &Matrix) -> (Vec<f64>, Vec<f64>) {
        self.inner().predict_many(pts)
    }
    fn posterior_joint(&self, pts: &Matrix) -> Result<(Vec<f64>, Matrix)> {
        self.inner().posterior_joint(pts)
    }
    fn cov_solve_matrix_in_place(&self, b: &mut Matrix) -> Result<()> {
        self.inner().cov_solve_matrix_in_place(b)
    }
    fn cov_solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.inner().cov_solve_vec(b)
    }
    fn best_observed(&self, maximize: bool) -> f64 {
        self.inner().best_observed(maximize)
    }
}

impl FantasySurrogate for SurrogateModel {
    fn condition_on(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        match self {
            SurrogateModel::Dense(g) => {
                GaussianProcess::condition_on(g, xs, ys).map(SurrogateModel::Dense)
            }
            SurrogateModel::Sparse(s) => {
                SparseGaussianProcess::condition_on(s, xs, ys).map(SurrogateModel::Sparse)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelType;

    fn toy_dense() -> GaussianProcess {
        let xs: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = xs.iter().map(|&v| (4.0 * v).sin() + 10.0).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 1);
        kernel.lengthscales = vec![0.25];
        GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
    }

    #[test]
    fn dense_trait_calls_are_bit_identical_to_inherent() {
        // The trait layer must be a pure dispatch shim: every dense
        // result reaches callers unchanged, so routing the acquisition
        // layer through `&dyn Surrogate` cannot move seeded trajectories.
        let gp = toy_dense();
        let model = SurrogateModel::Dense(gp.clone());
        let dynref: &dyn Surrogate = &model;
        for i in 0..12 {
            let p = [i as f64 * 0.11 - 0.1];
            let (m0, v0) = gp.predict(&p);
            let (m1, v1) = dynref.predict(&p);
            assert_eq!(m0.to_bits(), m1.to_bits());
            assert_eq!(v0.to_bits(), v1.to_bits());
            assert_eq!(gp.predict_mean(&p).to_bits(), dynref.predict_mean(&p).to_bits());
        }
        let k = gp.kernel().cross_vec(gp.train_x(), &[0.37]);
        let c0 = gp.chol().solve(&k).unwrap();
        let c1 = dynref.cov_solve_vec(&k).unwrap();
        for (a, b) in c0.iter().zip(&c1) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(dynref.n(), gp.n());
        assert_eq!(dynref.support_x().rows(), gp.n());
        assert_eq!(model.backend_name(), "dense");
        assert!(model.as_dense().is_some() && model.as_sparse().is_none());
    }

    #[test]
    fn fantasy_conditioning_dispatches_per_backend() {
        let gp = toy_dense();
        let model = SurrogateModel::Dense(gp.clone());
        let fant = model.condition_on(&[vec![0.3]], &[11.2]).unwrap();
        let direct = gp.condition_on(&[vec![0.3]], &[11.2]).unwrap();
        assert_eq!(fant.n(), direct.n());
        let (m0, v0) = direct.predict(&[0.5]);
        let (m1, v1) = Surrogate::predict(&fant, &[0.5]);
        assert_eq!(m0.to_bits(), m1.to_bits());
        assert_eq!(v0.to_bits(), v1.to_bits());
        assert_eq!(fant.backend_name(), "dense");
    }

    #[test]
    fn sparse_model_reports_inducing_support() {
        let mut x = Matrix::zeros(40, 1);
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 / 39.0;
            x[(i, 0)] = v;
            y.push((3.0 * v).cos() + 2.0);
        }
        let mut kernel = Kernel::new(KernelType::Matern52, 1);
        kernel.lengthscales = vec![0.3];
        let sp = SparseGaussianProcess::new(x, &y, kernel, 1e-4, 8).unwrap();
        let model = SurrogateModel::Sparse(sp);
        assert_eq!(model.backend_name(), "sparse");
        assert_eq!(Surrogate::n(&model), 40);
        assert_eq!(model.support_x().rows(), 8);
        assert_eq!(model.weights().len(), 8);
        let (m, v) = Surrogate::predict(&model, &[0.5]);
        assert!(m.is_finite() && v > 0.0);
    }
}
