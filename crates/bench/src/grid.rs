//! Experiment grids: (problem × algorithm × batch size × repetition).

use crate::profiles::Profile;
use pbo_core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo_core::record::RunRecord;
use pbo_problems::{Problem, SyntheticFn, UphesProblem};

/// Which problem instance a grid cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemSpec {
    /// 12-d Rosenbrock (Table 4).
    Rosenbrock,
    /// 12-d Ackley (Table 5).
    Ackley,
    /// 12-d Schwefel (Table 6).
    Schwefel,
    /// UPHES scheduling (Table 7, Figs. 3–9).
    Uphes,
}

/// The fixed "market day" seed of the UPHES instance: the paper runs
/// every algorithm against the same plant and day, varying only the
/// initial designs.
pub const UPHES_DAY_SEED: u64 = 20_220_530;

impl ProblemSpec {
    /// Instantiate the problem.
    pub fn build(self) -> Box<dyn Problem> {
        match self {
            ProblemSpec::Rosenbrock => Box::new(SyntheticFn::rosenbrock(12)),
            ProblemSpec::Ackley => Box::new(SyntheticFn::ackley(12)),
            ProblemSpec::Schwefel => Box::new(SyntheticFn::schwefel(12)),
            ProblemSpec::Uphes => Box::new(UphesProblem::maizeret(UPHES_DAY_SEED)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProblemSpec::Rosenbrock => "rosenbrock",
            ProblemSpec::Ackley => "ackley",
            ProblemSpec::Schwefel => "schwefel",
            ProblemSpec::Uphes => "uphes",
        }
    }

    /// Parse from CLI string.
    pub fn from_name(s: &str) -> Option<ProblemSpec> {
        Some(match s {
            "rosenbrock" => ProblemSpec::Rosenbrock,
            "ackley" => ProblemSpec::Ackley,
            "schwefel" => ProblemSpec::Schwefel,
            "uphes" => ProblemSpec::Uphes,
            _ => return None,
        })
    }
}

/// Run one grid cell: `runs` repetitions of (algorithm, q) on the
/// problem. Run seeds are shared across algorithms (same initial sets,
/// as in the paper); they differ across repetitions and batch sizes.
pub fn run_cell(
    spec: ProblemSpec,
    algo: AlgorithmKind,
    q: usize,
    runs: usize,
    profile: Profile,
) -> Vec<RunRecord> {
    let problem = spec.build();
    let budget = profile.budget(q);
    let cfg = profile.algo_config();
    (0..runs)
        .map(|r| {
            let seed = run_seed(spec, q, r);
            run_algorithm_with(algo, problem.as_ref(), &budget, cfg.clone(), seed)
        })
        .collect()
}

/// Deterministic per-repetition seed, independent of the algorithm.
pub fn run_seed(spec: ProblemSpec, q: usize, repetition: usize) -> u64 {
    let base = match spec {
        ProblemSpec::Rosenbrock => 1_000,
        ProblemSpec::Ackley => 2_000,
        ProblemSpec::Schwefel => 3_000,
        ProblemSpec::Uphes => 4_000,
    };
    base + (q as u64) * 100 + repetition as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_shared_across_algorithms_distinct_across_reps() {
        let a = run_seed(ProblemSpec::Uphes, 4, 0);
        let b = run_seed(ProblemSpec::Uphes, 4, 1);
        assert_ne!(a, b);
        assert_ne!(run_seed(ProblemSpec::Uphes, 2, 0), a);
        assert_ne!(run_seed(ProblemSpec::Ackley, 4, 0), a);
    }

    #[test]
    fn cell_produces_runs_records() {
        let recs = run_cell(
            ProblemSpec::Ackley,
            AlgorithmKind::RandomSearch,
            2,
            2,
            Profile::Smoke,
        );
        assert_eq!(recs.len(), 2);
        for r in &recs {
            assert_eq!(r.batch_size, 2);
            assert_eq!(r.problem, "ackley-12d");
        }
    }
}
