//! Uniform random search — the paper's sanity baseline.
//!
//! §4 of the paper: "Even considering a large random sample of almost
//! 12,000 objective function evaluations, the best-observed profit is
//! around EUR −1200." This module reproduces that experiment and doubles
//! as the weakest comparison algorithm.

use crate::{eval_min, Problem};
use pbo_sampling::SeedStream;
use rand::Rng;

/// Result of a random-search run.
#[derive(Debug, Clone)]
pub struct RandomSearchResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Best value, in the problem's native orientation.
    pub value: f64,
    /// Evaluations performed.
    pub evals: usize,
    /// Best-so-far trace (native orientation), one entry per evaluation.
    pub trace: Vec<f64>,
}

/// Uniform random search with `n` samples.
pub fn random_search(problem: &dyn Problem, n: usize, seed: u64) -> RandomSearchResult {
    let mut rng = SeedStream::new(seed).fork_named("random-search").rng();
    let d = problem.dim();
    let (lo, hi) = (problem.lower(), problem.upper());
    let mut best_min = f64::INFINITY;
    let mut best_x = vec![0.0; d];
    let mut trace = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..d).map(|j| rng.gen_range(lo[j]..=hi[j])).collect();
        let v = eval_min(problem, &x);
        if v < best_min {
            best_min = v;
            best_x = x;
        }
        trace.push(if problem.maximize() { -best_min } else { best_min });
    }
    RandomSearchResult {
        x: best_x,
        value: if problem.maximize() { -best_min } else { best_min },
        evals: n,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticFn;

    #[test]
    fn trace_is_monotone_best_so_far() {
        let p = SyntheticFn::ackley(4);
        let r = random_search(&p, 200, 11);
        for w in r.trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(r.trace.len(), 200);
        assert!((r.trace.last().unwrap() - r.value).abs() < 1e-12);
    }

    #[test]
    fn more_samples_never_worse() {
        let p = SyntheticFn::schwefel(3);
        let small = random_search(&p, 50, 9).value;
        let big = random_search(&p, 2000, 9).value;
        assert!(big <= small);
    }

    #[test]
    fn maximization_orientation_respected() {
        let p = crate::UphesProblem::maizeret(4);
        let r = random_search(&p, 30, 2);
        // Trace of a maximizer must be non-decreasing.
        for w in r.trace.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((0.0..=1.0).contains(&r.x[0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SyntheticFn::rosenbrock(5);
        let a = random_search(&p, 100, 77);
        let b = random_search(&p, 100, 77);
        assert_eq!(a.value, b.value);
        assert_eq!(a.x, b.x);
    }
}
