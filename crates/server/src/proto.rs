//! The wire protocol: one JSON object per line, in both directions.
//!
//! Every request carries `"proto": 1` or `"proto": 2`; a server that
//! does not speak the requested version answers `unsupported_proto`
//! instead of guessing. Protocol 2 (this crate's native version) adds
//! the per-cycle batch size `q` to `ask` responses; v1 clients keep
//! working against fixed-q sessions, but creating or asking a
//! *variable-q* session over v1 is the typed `unsupported_version`
//! error — a v1 client has no way to learn how many points to
//! evaluate, so the server refuses rather than letting it desync. The
//! `server-status` reply advertises `"protos":[1,2]` for negotiation.
//!
//! Responses are `{"ok":true,…}` or
//! `{"ok":false,"error":{"code":…,"message":…}}`. Error codes are
//! stable API (tests pin them) and come from exactly two typed enums:
//! [`RequestErrorKind`] for envelope/transport-level failures and
//! [`SessionError`](pbo_core::session::SessionError) for
//! session-state-machine failures — one table in DESIGN.md documents
//! both, and a conformance test asserts the table is exhaustive.
//! Malformed input of any kind — bad JSON, wrong types, unknown ops —
//! produces an error *response* and leaves the connection and every
//! session untouched.

use pbo_core::json::{push_f64_lossless, push_str_literal, Json};
use pbo_core::session::{SessionConfig, SessionError};
use std::fmt;
use std::fmt::Write as _;

/// Native protocol version spoken by this crate's client.
pub const PROTO_VERSION: u64 = 2;

/// Every protocol version the server accepts, oldest first.
pub const SUPPORTED_PROTOS: [u64; 2] = [1, 2];

/// Request-level failures: everything that can go wrong with the
/// *envelope* of a request (or the server's handling of it) before any
/// session state machine is consulted. The session-level counterpart
/// is [`SessionError`]; between them they cover every wire code the
/// server can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestErrorKind {
    /// The line is not valid JSON, or a required field is missing or
    /// mistyped.
    MalformedJson,
    /// The request's `proto` is not a version this server speaks.
    UnsupportedProto,
    /// The request's `proto` is spoken, but too old for the operation
    /// (a variable-q session needs protocol >= 2).
    UnsupportedVersion,
    /// The `op` field names no known operation.
    UnknownOp,
    /// The session id is not filesystem-safe.
    InvalidId,
    /// No session with the given id is registered.
    UnknownSession,
    /// Idempotent re-create with a different config key.
    ConfigMismatch,
    /// `record` asked of a session that has not finished.
    NotDone,
    /// Persisting a checkpoint failed.
    Io,
    /// The live-connection cap is reached; the connection is refused
    /// and closed. Retry shortly.
    ServerBusy,
    /// The request line exceeds the server's `max-line-bytes` cap; the
    /// oversized line is discarded but the connection stays usable.
    LineTooLong,
    /// No complete request arrived within the server's idle timeout;
    /// the connection is closed after this error.
    IdleTimeout,
}

impl RequestErrorKind {
    /// Every request-level wire code, in declaration order (the DESIGN
    /// table's exhaustiveness test walks this).
    pub const ALL: [RequestErrorKind; 12] = [
        RequestErrorKind::MalformedJson,
        RequestErrorKind::UnsupportedProto,
        RequestErrorKind::UnsupportedVersion,
        RequestErrorKind::UnknownOp,
        RequestErrorKind::InvalidId,
        RequestErrorKind::UnknownSession,
        RequestErrorKind::ConfigMismatch,
        RequestErrorKind::NotDone,
        RequestErrorKind::Io,
        RequestErrorKind::ServerBusy,
        RequestErrorKind::LineTooLong,
        RequestErrorKind::IdleTimeout,
    ];

    /// Stable machine-readable code (protocol error field).
    pub fn code(self) -> &'static str {
        match self {
            RequestErrorKind::MalformedJson => "malformed_json",
            RequestErrorKind::UnsupportedProto => "unsupported_proto",
            RequestErrorKind::UnsupportedVersion => "unsupported_version",
            RequestErrorKind::UnknownOp => "unknown_op",
            RequestErrorKind::InvalidId => "invalid_id",
            RequestErrorKind::UnknownSession => "unknown_session",
            RequestErrorKind::ConfigMismatch => "config_mismatch",
            RequestErrorKind::NotDone => "not_done",
            RequestErrorKind::Io => "io",
            RequestErrorKind::ServerBusy => "server_busy",
            RequestErrorKind::LineTooLong => "line_too_long",
            RequestErrorKind::IdleTimeout => "idle_timeout",
        }
    }
}

/// A typed protocol-level failure: stable `code` plus human detail.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// Stable machine-readable code (e.g. `malformed_json`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorBody {
    /// Build from a raw code and message. Prefer the typed
    /// constructors ([`ErrorBody::request`], [`ErrorBody::from_session`])
    /// — this escape hatch exists for tests and for codes that arrive
    /// as data (e.g. re-serializing a stored error).
    pub fn new(code: &str, message: impl Into<String>) -> ErrorBody {
        ErrorBody { code: code.into(), message: message.into() }
    }

    /// Build a request-level error from its typed kind.
    pub fn request(kind: RequestErrorKind, message: impl Into<String>) -> ErrorBody {
        ErrorBody { code: kind.code().into(), message: message.into() }
    }

    /// Map a session-layer error onto the wire.
    pub fn from_session(e: &SessionError) -> ErrorBody {
        ErrorBody { code: e.code().into(), message: e.to_string() }
    }

    /// Serialize as a response line (without trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"ok\":false,\"error\":{\"code\":");
        push_str_literal(&mut out, &self.code);
        out.push_str(",\"message\":");
        push_str_literal(&mut out, &self.message);
        out.push_str("}}");
        out
    }
}

impl fmt::Display for ErrorBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open (or idempotently re-open) a session.
    Create {
        /// Client-chosen session id.
        id: String,
        /// Full run configuration.
        config: SessionConfig,
    },
    /// Fetch the points to evaluate next.
    Ask {
        /// Session id.
        id: String,
    },
    /// Report evaluated values for a turn.
    Tell {
        /// Session id.
        id: String,
        /// Journal turn the values answer.
        turn: usize,
        /// Native objective values, aligned with the asked points.
        values: Vec<f64>,
    },
    /// Per-session status snapshot.
    Status {
        /// Session id.
        id: String,
    },
    /// The finished run record (only valid once done).
    Record {
        /// Session id.
        id: String,
    },
    /// Enumerate sessions.
    List,
    /// Server-wide status + metrics snapshot.
    ServerStatus,
    /// Drop a session from the live table (its checkpoint remains).
    Close {
        /// Session id.
        id: String,
    },
    /// Stop the daemon gracefully.
    Shutdown,
}

/// Validate a session id: filesystem-safe, bounded, unambiguous.
pub fn validate_id(id: &str) -> Result<(), ErrorBody> {
    let ok_char = |c: char| c.is_ascii_alphanumeric() || c == '-' || c == '_';
    if id.is_empty() || id.len() > 64 || !id.chars().all(ok_char) {
        return Err(ErrorBody::request(
            RequestErrorKind::InvalidId,
            format!("session ids are 1-64 chars of [A-Za-z0-9_-], got '{id}'"),
        ));
    }
    Ok(())
}

/// Parse one request line into the negotiated protocol version and the
/// request. Every failure is a typed [`ErrorBody`] — the caller
/// answers it and keeps the connection alive. The returned version is
/// one of [`SUPPORTED_PROTOS`]; dispatch uses it to gate variable-q
/// operations and to shape the `ask` reply.
pub fn parse_request(line: &str) -> Result<(u64, Request), ErrorBody> {
    let v = pbo_core::json::parse(line.trim())
        .map_err(|e| ErrorBody::request(RequestErrorKind::MalformedJson, e))?;
    let proto = match v.get("proto").and_then(Json::as_u64) {
        Some(p) if SUPPORTED_PROTOS.contains(&p) => p,
        other => {
            return Err(ErrorBody::request(
                RequestErrorKind::UnsupportedProto,
                format!("this server speaks protos {SUPPORTED_PROTOS:?}, request says {other:?}"),
            ))
        }
    };
    let malformed = |msg: &str| ErrorBody::request(RequestErrorKind::MalformedJson, msg);
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing string field 'op'"))?;
    let id = |v: &Json| -> Result<String, ErrorBody> {
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("missing string field 'id'"))?;
        validate_id(id)?;
        Ok(id.to_string())
    };
    let req = match op {
        "create" => {
            let config = v
                .require("config")
                .and_then(SessionConfig::from_json)
                .map_err(|e| ErrorBody::new("invalid_config", e))?;
            Request::Create { id: id(&v)?, config }
        }
        "ask" => Request::Ask { id: id(&v)? },
        "tell" => {
            let turn = v
                .get("turn")
                .and_then(Json::as_usize)
                .ok_or_else(|| malformed("missing count field 'turn'"))?;
            let values = v
                .get("values")
                .and_then(Json::as_array)
                .ok_or_else(|| malformed("missing array field 'values'"))?
                .iter()
                .map(Json::as_f64)
                .collect::<Option<Vec<f64>>>()
                .ok_or_else(|| malformed("'values' must be numbers"))?;
            Request::Tell { id: id(&v)?, turn, values }
        }
        "status" => Request::Status { id: id(&v)? },
        "record" => Request::Record { id: id(&v)? },
        "list" => Request::List,
        "server-status" => Request::ServerStatus,
        "close" => Request::Close { id: id(&v)? },
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ErrorBody::request(
                RequestErrorKind::UnknownOp,
                format!("unknown op '{other}'"),
            ))
        }
    };
    Ok((proto, req))
}

// ---------------------------------------------------------------------
// Request encoding (client side; tests share these so both ends agree).
// ---------------------------------------------------------------------

fn head(op: &str) -> String {
    format!("{{\"proto\":{PROTO_VERSION},\"op\":\"{op}\"")
}

fn push_id(out: &mut String, id: &str) {
    out.push_str(",\"id\":");
    push_str_literal(out, id);
}

/// Encode a `create` request line.
pub fn encode_create(id: &str, config: &SessionConfig) -> String {
    let mut out = head("create");
    push_id(&mut out, id);
    out.push_str(",\"config\":");
    config.encode_json(&mut out);
    out.push('}');
    out
}

/// Encode an `ask` request line.
pub fn encode_ask(id: &str) -> String {
    let mut out = head("ask");
    push_id(&mut out, id);
    out.push('}');
    out
}

/// Encode a `tell` request line.
pub fn encode_tell(id: &str, turn: usize, values: &[f64]) -> String {
    let mut out = head("tell");
    push_id(&mut out, id);
    let _ = write!(out, ",\"turn\":{turn},\"values\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64_lossless(&mut out, *v);
    }
    out.push_str("]}");
    out
}

/// Encode a single-`id` request line (`status`, `record`, `close`).
pub fn encode_id_op(op: &str, id: &str) -> String {
    let mut out = head(op);
    push_id(&mut out, id);
    out.push('}');
    out
}

/// Encode a no-argument request line (`list`, `server-status`,
/// `shutdown`).
pub fn encode_bare_op(op: &str) -> String {
    let mut out = head(op);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::algorithms::AlgorithmKind;
    use pbo_core::budget::Budget;
    use pbo_core::session::{ProblemSpec, SessionProfile};

    fn cfg() -> SessionConfig {
        SessionConfig {
            algorithm: AlgorithmKind::KbQEgo,
            problem: ProblemSpec {
                name: "toy".into(),
                lower: vec![0.0, -1.0],
                upper: vec![1.0, 1.0],
                maximize: false,
            },
            budget: Budget::cycles(2, 2),
            profile: SessionProfile::Test,
            seed: 7,
        }
    }

    #[test]
    fn encode_parse_roundtrip_for_every_op() {
        let c = cfg();
        let cases: Vec<(String, Request)> = vec![
            (encode_create("s1", &c), Request::Create { id: "s1".into(), config: c.clone() }),
            (encode_ask("s1"), Request::Ask { id: "s1".into() }),
            (
                encode_tell("s1", 3, &[1.0, f64::NAN, f64::NEG_INFINITY]),
                Request::Tell { id: "s1".into(), turn: 3, values: vec![1.0, f64::NAN, f64::NEG_INFINITY] },
            ),
            (encode_id_op("status", "s1"), Request::Status { id: "s1".into() }),
            (encode_id_op("record", "s1"), Request::Record { id: "s1".into() }),
            (encode_id_op("close", "s1"), Request::Close { id: "s1".into() }),
            (encode_bare_op("list"), Request::List),
            (encode_bare_op("server-status"), Request::ServerStatus),
            (encode_bare_op("shutdown"), Request::Shutdown),
        ];
        for (line, want) in cases {
            let (proto, got) = parse_request(&line).unwrap();
            assert_eq!(proto, PROTO_VERSION, "encoders speak the native proto");
            // NaN != NaN defeats PartialEq for the tell case; compare
            // via debug strings, which print NaN stably.
            assert_eq!(format!("{got:?}"), format!("{want:?}"), "line: {line}");
        }
    }

    #[test]
    fn proto_1_requests_still_parse_and_report_their_version() {
        let (proto, req) = parse_request("{\"proto\":1,\"op\":\"ask\",\"id\":\"x\"}").unwrap();
        assert_eq!(proto, 1);
        assert_eq!(req, Request::Ask { id: "x".into() });
        let (proto, req) = parse_request("{\"proto\":2,\"op\":\"list\"}").unwrap();
        assert_eq!(proto, 2);
        assert_eq!(req, Request::List);
    }

    #[test]
    fn every_request_error_kind_has_a_distinct_code() {
        let codes: Vec<&str> = RequestErrorKind::ALL.iter().map(|k| k.code()).collect();
        for (i, c) in codes.iter().enumerate() {
            assert!(!codes[..i].contains(c), "duplicate code {c}");
        }
        assert_eq!(
            ErrorBody::request(RequestErrorKind::UnsupportedVersion, "x").code,
            "unsupported_version"
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for (line, code) in [
            ("{", "malformed_json"),
            ("[1,2,3]", "unsupported_proto"),
            ("{\"proto\":99,\"op\":\"ask\",\"id\":\"x\"}", "unsupported_proto"),
            ("{\"op\":\"ask\",\"id\":\"x\"}", "unsupported_proto"),
            ("{\"proto\":1}", "malformed_json"),
            ("{\"proto\":1,\"op\":\"frobnicate\"}", "unknown_op"),
            ("{\"proto\":1,\"op\":\"ask\"}", "malformed_json"),
            ("{\"proto\":1,\"op\":\"ask\",\"id\":\"../etc\"}", "invalid_id"),
            ("{\"proto\":1,\"op\":\"tell\",\"id\":\"x\",\"turn\":0}", "malformed_json"),
            ("{\"proto\":1,\"op\":\"tell\",\"id\":\"x\",\"turn\":0,\"values\":[\"no\"]}", "malformed_json"),
            ("{\"proto\":1,\"op\":\"create\",\"id\":\"x\",\"config\":{}}", "invalid_config"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, code, "line: {line} -> {err}");
        }
    }

    #[test]
    fn error_body_line_shape() {
        let line = ErrorBody::new("wrong_turn", "expected 2, got \"1\"").to_line();
        let v = pbo_core::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").and_then(Json::as_str), Some("wrong_turn"));
        assert!(e.get("message").and_then(Json::as_str).unwrap().contains("\"1\""));
    }
}
