//! Acquisition-process cost vs batch size — the mechanism behind
//! Figs. 2 and 9: KB's q sequential conditionings, mic's q/2, MC-q-EI's
//! joint q·d optimization, and BSP's 2q local problems.
//!
//! Each benchmark builds one batch from a frozen, fitted model — i.e.
//! measures exactly what the virtual clock charges as "acquisition".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbo_core::algorithms::{kb_qego, mic_qego, qei_multistart};
use pbo_core::engine::AlgoConfig;
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::Matrix;
use pbo_opt::Bounds;
use pbo_sampling::{lhs, SeedStream};

const Q_GRID: [usize; 3] = [2, 4, 8];

fn fitted_gp(n: usize) -> GaussianProcess {
    let seeds = SeedStream::new(17);
    let pts = lhs::latin_hypercube(&mut seeds.fork_named("d").rng(), n, 12);
    let mut x = Matrix::zeros(0, 12);
    let mut y = Vec::with_capacity(n);
    for p in &pts {
        y.push(p.iter().enumerate().map(|(i, v)| ((i + 1) as f64 * v).sin()).sum::<f64>());
        x.push_row(p).unwrap();
    }
    let mut kernel = Kernel::new(KernelType::Matern52, 12);
    kernel.lengthscales = vec![0.4; 12];
    GaussianProcess::new(x, &y, kernel, 1e-4).unwrap()
}

fn cfg() -> AlgoConfig {
    AlgoConfig {
        acq_restarts: 2,
        acq_raw_samples: 24,
        qei_samples: 64,
        qei_restarts: 2,
        qei_raw_samples: 8,
        ..AlgoConfig::default()
    }
}

fn bench_kb(c: &mut Criterion) {
    let gp = fitted_gp(128);
    let bounds = Bounds::unit(12);
    let cfg = cfg();
    let mut g = c.benchmark_group("acq_kb_q_ego");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for &q in &Q_GRID {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| kb_qego::kb_batch(&gp, &bounds, q, &cfg, 1).len())
        });
    }
    g.finish();
}

fn bench_mic(c: &mut Criterion) {
    let gp = fitted_gp(128);
    let bounds = Bounds::unit(12);
    let cfg = cfg();
    let mut g = c.benchmark_group("acq_mic_q_ego");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for &q in &Q_GRID {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| mic_qego::mic_batch(&gp, &bounds, q, &cfg, 1).len())
        });
    }
    g.finish();
}

fn bench_mc_qei(c: &mut Criterion) {
    let gp = fitted_gp(128);
    let bounds = Bounds::unit(12);
    let cfg = cfg();
    let f_best = gp.best_observed(false);
    let mut g = c.benchmark_group("acq_mc_qei_joint");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for &q in &Q_GRID {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            let qei = pbo_acq::mc::QExpectedImprovement::new(f_best, q, cfg.qei_samples, 3);
            let ms = qei_multistart(&cfg, 3);
            b.iter(|| pbo_acq::mc::optimize_qei(&gp, &qei, &bounds, &[], &ms).1)
        });
    }
    g.finish();
}

/// BSP's 2q local EI problems, measured as total serial work (the
/// engine divides by q workers when charging the virtual clock).
fn bench_bsp_cells(c: &mut Criterion) {
    let gp = fitted_gp(128);
    let cfg = cfg();
    let f_best = gp.best_observed(false);
    let mut g = c.benchmark_group("acq_bsp_cells_serial");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for &q in &Q_GRID {
        let tree = pbo_core::partition::BspTree::new(Bounds::unit(12), 2 * q);
        let cells: Vec<Bounds> =
            tree.leaves().iter().map(|&l| tree.bounds_of(l).clone()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            b.iter(|| {
                let mut total = 0.0;
                for (k, cell) in cells.iter().enumerate() {
                    let ei = pbo_acq::single::ExpectedImprovement { f_best };
                    let ms = pbo_core::algorithms::acq_multistart(&cfg, k as u64);
                    total += pbo_acq::single::optimize_single(&gp, &ei, cell, &[], &ms).value;
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kb, bench_mic, bench_mc_qei, bench_bsp_cells);
criterion_main!(benches);
