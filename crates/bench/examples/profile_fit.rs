//! Phase-level timing of the MLL evaluation paths (dev tool, not a
//! recorded benchmark). Run with `cargo run --release -p pbo-bench
//! --example profile_fit`.

use pbo_gp::fit::mll_and_grad;
use pbo_gp::kernel::KernelType;
use pbo_gp::workspace::{mll_and_grad_ws, mll_value_ws, FitWorkspace};
use pbo_linalg::vec_ops::dot;
use pbo_linalg::{Cholesky, Matrix};
use pbo_sampling::{lhs, SeedStream};
use std::time::Instant;

const DIM: usize = 12;

fn dataset(n: usize) -> (Matrix, Vec<f64>) {
    let seeds = SeedStream::new(2);
    let mut rng = seeds.fork_named("profile-data").rng();
    let pts = lhs::latin_hypercube(&mut rng, n, DIM);
    let mut x = Matrix::zeros(0, DIM);
    let mut y = Vec::with_capacity(n);
    for p in &pts {
        y.push(p.iter().map(|v| (3.0 * v).sin() + v * v).sum::<f64>());
        x.push_row(p).unwrap();
    }
    (x, y)
}

fn time<F: FnMut() -> f64>(label: &str, reps: usize, mut f: F) -> f64 {
    let mut sink = 0.0;
    // warmup
    sink += f();
    let t0 = Instant::now();
    for _ in 0..reps {
        sink += f();
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("{label:32} {us:10.1} us   (sink {sink:.3e})");
    us
}

fn main() {
    let n = 256;
    let (x, y) = dataset(n);
    let m = pbo_linalg::vec_ops::mean(&y);
    let s = pbo_linalg::vec_ops::variance(&y).sqrt().max(1e-8);
    let y_std: Vec<f64> = y.iter().map(|v| (v - m) / s).collect();
    let mut params = vec![(0.5f64).ln(); DIM];
    params.push(0.0);
    params.push((1e-4f64).ln());
    let family = KernelType::Matern52;

    let mut ws = FitWorkspace::new();
    ws.prepare(&x);

    time("mll_value_ws", 20, || {
        mll_value_ws(family, &mut ws, &y_std, &params).unwrap()
    });
    time("mll_and_grad_ws", 20, || {
        mll_and_grad_ws(family, &mut ws, &y_std, &params).unwrap().0
    });
    time("mll_and_grad naive", 20, || {
        mll_and_grad(family, &x, &y_std, &params).unwrap().0
    });

    // Individual phases on a fixed K_y.
    let (kernel, noise) = pbo_gp::fit::unpack(family, &params);
    let mut ky = kernel.matrix(&x);
    ky.add_diag(noise);
    time("kernel.matrix", 20, || kernel.matrix(&x)[(1, 0)]);
    let chol = Cholesky::factor(&ky).unwrap();
    time("cholesky factor", 20, || {
        Cholesky::factor(&ky).unwrap().l()[(0, 0)]
    });
    let mut minv = Matrix::zeros(n, n);
    time("inv_lower_t_into", 20, || {
        chol.inv_lower_t_into(&mut minv);
        minv[(0, 0)]
    });
    time("pre-PR inverse (per-col)", 5, || {
        let mut inv = Matrix::identity(n);
        let mut col = vec![0.0; n];
        for j in 0..n {
            for i in 0..n {
                col[i] = inv[(i, j)];
            }
            chol.solve_lower_in_place(&mut col);
            chol.solve_lower_t_in_place(&mut col);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv[(0, 0)]
    });
    time("multi-solve inverse", 5, || chol.inverse()[(0, 0)]);
    // Raw suffix-dot syrk over M (the kinv pair pass alone).
    time("suffix-dot syrk", 20, || {
        let mut acc = 0.0;
        for a in 0..n {
            let ma = minv.row(a);
            for b in 0..a {
                acc += dot(&ma[a..], &minv.row(b)[a..]);
            }
        }
        acc
    });
}
