//! TuRBO (Eriksson et al. 2019) with a single trust region, as used in
//! the paper.
//!
//! Per cycle: fit the model, shape the trust region around the
//! incumbent using the ARD lengthscales, maximize MC q-EI (plain EI at
//! q = 1) **inside the region**, evaluate, and update the region —
//! expand on improvement streaks, shrink on failure streaks, restart on
//! collapse. The restricted inner search space is why TuRBO's
//! acquisition is the fastest of the five (paper §3.1).

use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_problems::Problem;

/// Drive a prepared engine with TuRBO to budget exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::Turbo, e)
}

/// Run TuRBO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("turbo")
        .build()
        .expect("invalid TuRBO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn runs_to_cycle_budget() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 2);
        assert_eq!(r.n_cycles(), 4);
        assert_eq!(r.n_simulations(), 8 + 8);
    }

    #[test]
    fn improves_over_initial_design() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(5, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 4);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }

    #[test]
    fn q1_path_works() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(3, 1).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 6);
        assert_eq!(r.n_simulations(), 11);
    }
}
