//! Resolve benchmark problems from their canonical names
//! (`<function>-<dim>d`, e.g. `ackley-12d`) so the client side of a
//! drive can evaluate what the server asks for.

use pbo_problems::synthetic::{SyntheticFn, SyntheticKind};

/// Parse a `<function>-<dim>d` name into the benchmark it denotes.
/// Returns `None` for unknown functions, malformed names or `dim < 2`.
pub fn resolve_problem(name: &str) -> Option<SyntheticFn> {
    let (func, dim) = name.rsplit_once('-')?;
    let digits = dim.strip_suffix('d')?;
    // `usize::parse` also accepts "+3" and leading zeros, which would
    // resolve to a problem whose canonical `name()` differs from the
    // requested one — only canonical spellings may round-trip.
    if digits.is_empty()
        || !digits.bytes().all(|b| b.is_ascii_digit())
        || (digits.len() > 1 && digits.starts_with('0'))
    {
        return None;
    }
    let dim: usize = digits.parse().ok()?;
    if dim < 2 {
        return None;
    }
    let kind = match func {
        "rosenbrock" => SyntheticKind::Rosenbrock,
        "ackley" => SyntheticKind::Ackley,
        "schwefel" => SyntheticKind::Schwefel,
        "rastrigin" => SyntheticKind::Rastrigin,
        "griewank" => SyntheticKind::Griewank,
        "levy" => SyntheticKind::Levy,
        _ => return None,
    };
    Some(SyntheticFn::new(kind, dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::Problem;

    #[test]
    fn resolves_canonical_names_back_to_themselves() {
        for name in ["ackley-3d", "rosenbrock-12d", "schwefel-2d", "levy-5d"] {
            let p = resolve_problem(name).unwrap();
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn rejects_malformed_names() {
        // The last four resolve under a bare `usize::parse` (it accepts
        // a leading `+` and leading zeros) but break the name
        // round-trip invariant: resolve("ackley-+3d").name() would be
        // "ackley-3d", not the requested spelling.
        for bad in [
            "", "ackley", "ackley-3", "ackley-xd", "ackley-1d", "warp-3d", "3d",
            "ackley-+3d", "ackley-03d", "ackley-0d", "ackley- 3d",
        ] {
            assert!(resolve_problem(bad).is_none(), "{bad} should not resolve");
        }
    }
}
