//! Shared checkpoint primitives: content addressing and atomic file
//! commits.
//!
//! Both persistence layers in the workspace — the orchestrator's
//! per-run checkpoints (`pbo_bench::orchestrate`) and the session
//! server's per-session journals (`pbo_core::session`) — follow the
//! same discipline: the file name carries an FNV-1a-64 digest of every
//! run-determining input, and writes go through a temp file + rename so
//! a crash mid-write can never leave a torn file under the final name.
//! This module is the single home of those two primitives.

use std::path::Path;

/// FNV-1a 64-bit hash (content addressing only; not cryptographic).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Write `body` to `path` atomically: the bytes land in a sibling
/// `.tmp` file first and are renamed over `path` only once fully
/// written. Readers therefore see either the previous complete file or
/// the new complete file, never a prefix.
pub fn atomic_write(path: &Path, body: &str) -> Result<(), String> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let context = |what: &str, e: std::io::Error| format!("{what} {}: {e}", path.display());
    std::fs::write(&tmp, body).map_err(|e| context("cannot write", e))?;
    std::fs::rename(&tmp, path).map_err(|e| context("cannot commit", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("pbo_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        atomic_write(&path, "one").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one");
        atomic_write(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        assert!(!dir.join("x.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
