//! The `pbo-server` binary: serve, inspect, drive and validate
//! ask/tell optimization sessions. See `pbo-server help`.

use pbo_core::json::Json;
use pbo_core::session::SessionState;
use pbo_server::cli::{self, Cmd, DriveOpts, GcOpts, ServeOpts, StatusOpts};
use pbo_server::client::{drive, Client};
use pbo_server::registry::{GcPolicy, Registry};
use pbo_server::server::Server;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("pbo-server: {e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    let result = match cmd {
        Cmd::Help => {
            println!("{}", cli::USAGE);
            Ok(())
        }
        Cmd::Serve(opts) => serve(opts),
        Cmd::Status(opts) => status(opts),
        Cmd::Drive(opts) => run_drive(opts),
        Cmd::Validate { dir } => validate(&dir),
        Cmd::Gc(opts) => gc(opts),
    };
    if let Err(e) = result {
        eprintln!("pbo-server: {e}");
        std::process::exit(1);
    }
}

fn serve(opts: ServeOpts) -> Result<(), String> {
    let registry = Arc::new(Registry::open(&opts.dir)?);
    let restored = registry.len();
    let config = opts.server_config();
    let workers = config.workers;
    let server = Server::bind_with(registry, &opts.addr, config)
        .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let addr = server.local_addr();
    if let Some(path) = &opts.addr_file {
        pbo_core::checkpoint::atomic_write(path, &format!("{addr}\n"))?;
    }
    println!(
        "pbo-server listening on {addr} ({workers} workers, sessions: {restored} restored, dir: {})",
        opts.dir.display()
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

fn status(opts: StatusOpts) -> Result<(), String> {
    let mut client = Client::connect(&opts.addr).map_err(|e| e.to_string())?;
    let v = match &opts.id {
        Some(id) => client.status(id).map_err(|e| e.to_string())?,
        None => client.server_status().map_err(|e| e.to_string())?,
    };
    print_flat(&v);
    Ok(())
}

/// Print an `ok` response one `key: value` per line (skipping the
/// envelope field), so shell scripts can grep it.
fn print_flat(v: &Json) {
    if let Json::Obj(fields) = v {
        for (k, val) in fields {
            if k == "ok" {
                continue;
            }
            println!("{k}: {}", render(val));
        }
    }
}

fn render(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => format!("{n:?}"),
        Json::Str(s) => s.clone(),
        Json::Arr(items) => {
            format!("[{}]", items.iter().map(render).collect::<Vec<_>>().join(", "))
        }
        Json::Obj(fields) => fields
            .iter()
            .map(|(k, v)| format!("{k}={}", render(v)))
            .collect::<Vec<_>>()
            .join(" "),
    }
}

fn run_drive(opts: DriveOpts) -> Result<(), String> {
    let record = if opts.local {
        Some(cli::run_local_reference(&opts)?)
    } else {
        let cfg = opts.session_config()?;
        let problem = opts.resolve_problem()?;
        let mut client = Client::connect(&opts.addr).map_err(|e| e.to_string())?;
        let outcome = drive(&mut client, &opts.id, &cfg, &problem, opts.stop_after)
            .map_err(|e| e.to_string())?;
        println!(
            "session {}: {} tells this run, {}",
            opts.id,
            outcome.tells,
            if outcome.done { "finished" } else { "suspended" }
        );
        outcome.record
    };
    match (record, &opts.record_out) {
        (Some(line), Some(path)) => {
            pbo_core::checkpoint::atomic_write(path, &format!("{line}\n"))?;
            println!("record written to {}", path.display());
        }
        (Some(line), None) => println!("{line}"),
        (None, Some(_)) => {
            return Err("session did not finish; no record to write".into());
        }
        (None, None) => {}
    }
    Ok(())
}

fn gc(opts: GcOpts) -> Result<(), String> {
    let registry = Registry::open(&opts.dir)?;
    let policy =
        GcPolicy { max_age_secs: opts.max_age_secs, keep_newest: opts.keep.unwrap_or(0) };
    let report = registry.gc(&policy);
    for id in &report.evicted {
        println!("evicted {id}");
    }
    println!(
        "{} evicted, {} kept, {} quarantined-corrupt kept (dir: {})",
        report.evicted.len(),
        report.kept,
        report.quarantined_kept,
        opts.dir.display()
    );
    Ok(())
}

fn validate(dir: &std::path::Path) -> Result<(), String> {
    let mut ok = 0usize;
    let mut corrupt = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".session.json"))
        })
        .collect();
    entries.sort();
    for path in entries {
        let verdict = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|body| {
                SessionState::from_checkpoint_line(&body).map_err(|e| e.to_string())
            });
        match verdict {
            Ok((id, state)) => {
                ok += 1;
                println!(
                    "ok      {} (id {id}, phase {}, turn {})",
                    path.display(),
                    state.status().phase,
                    state.turn()
                );
            }
            Err(e) => {
                corrupt += 1;
                println!("CORRUPT {}: {e}", path.display());
            }
        }
    }
    println!("{ok} ok, {corrupt} corrupt");
    if corrupt > 0 {
        return Err(format!("{corrupt} corrupt session checkpoint(s)"));
    }
    Ok(())
}
