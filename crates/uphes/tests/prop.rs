//! Property-based tests of the UPHES simulator's physical invariants.

use pbo_uphes::geometry::{default_lower, default_upper, Reservoir};
use pbo_uphes::machine::{Dispatch, Machine};
use pbo_uphes::{PlantConfig, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reservoir_volume_level_monotone(frac_a in 0.0f64..1.0, frac_b in 0.0f64..1.0) {
        for r in [default_upper(), default_lower()] {
            let (va, vb) = (frac_a * r.capacity(), frac_b * r.capacity());
            let (za, zb) = (r.level_at_volume(va), r.level_at_volume(vb));
            if va < vb {
                prop_assert!(za <= zb + 1e-9);
            }
        }
    }

    #[test]
    fn custom_reservoir_roundtrip(area_b in 1_000.0f64..20_000.0,
                                  area_t in 20_000.0f64..80_000.0,
                                  depth in 5.0f64..60.0,
                                  shape in 0.0f64..3.0,
                                  frac in 0.01f64..0.99) {
        let r = Reservoir { area_bottom: area_b, area_top: area_t, depth,
                            shape, floor_elevation: -100.0 };
        let v = frac * r.capacity();
        let z = r.level_at_volume(v);
        let back = r.volume_at_level(z);
        prop_assert!((back - v).abs() < area_t * 2e-3 + 1.0,
                     "roundtrip {v} -> {z} -> {back}");
    }

    #[test]
    fn dispatch_never_accepts_cavitation_or_out_of_range(p in -10.0f64..10.0,
                                                         head in 40.0f64..110.0) {
        let m = Machine::default();
        match m.dispatch(p, head) {
            Dispatch::Ok { mode, flow, efficiency } => {
                use pbo_uphes::machine::Mode;
                match mode {
                    Mode::Idle => prop_assert!(flow == 0.0),
                    Mode::Turbine => {
                        let (lo, hi) = m.turbine_limits(head);
                        prop_assert!(p >= lo - 1e-6 && p <= hi + 1e-6);
                        let (clo, chi) = m.turbine_cavitation(head);
                        prop_assert!(p <= clo + 1e-9 || p >= chi - 1e-9,
                                     "accepted inside cavitation band");
                        prop_assert!(flow > 0.0);
                        prop_assert!((0.5..=1.0).contains(&efficiency));
                        prop_assert!(head >= m.h_safe.0 && head <= m.h_safe.1);
                    }
                    Mode::Pump => {
                        let (lo, hi) = m.pump_limits(head);
                        prop_assert!(-p >= lo - 1e-6 && -p <= hi + 1e-6);
                        prop_assert!(flow < 0.0);
                        prop_assert!(head >= m.h_safe.0 && head <= m.h_safe.1);
                    }
                }
            }
            Dispatch::Rejected(_) => {}
        }
    }

    #[test]
    fn efficiency_surfaces_bounded(p in 3.0f64..10.0, head in 40.0f64..110.0) {
        let m = Machine::default();
        let et = m.turbine_efficiency(p, head);
        let ep = m.pump_efficiency(p, head);
        prop_assert!((0.55..=0.95).contains(&et));
        prop_assert!((0.55..=0.95).contains(&ep));
    }

    #[test]
    fn profit_invariant_to_scenario_count_ordering(x in prop::collection::vec(0.0f64..1.0, 12)) {
        // Same seed, same scenario count → identical profit (pure
        // function of the decision).
        let a = Simulator::new(PlantConfig { n_scenarios: 6, scenario_seed: 77, ..Default::default() });
        let b = Simulator::new(PlantConfig { n_scenarios: 6, scenario_seed: 77, ..Default::default() });
        prop_assert_eq!(a.expected_profit(&x), b.expected_profit(&x));
    }

    #[test]
    fn reversal_penalty_charged_exactly(u0 in 0.0f64..0.39, u1 in 0.56f64..1.0) {
        // Block pattern pump→turbine has exactly one reversal; inserting
        // an idle block removes it. Profit difference must include the
        // configured reversal penalty (other terms differ too, so only
        // check the penalty component).
        let sim = Simulator::maizeret(3);
        let with_rev = [u0, u1, 0.45, 0.45, 0.45, 0.45, 0.45, 0.45, 0.0, 0.0, 0.0, 0.0];
        let without = [u0, 0.45, u1, 0.45, 0.45, 0.45, 0.45, 0.45, 0.0, 0.0, 0.0, 0.0];
        let b_rev = sim.evaluate_detailed(&with_rev);
        let b_no = sim.evaluate_detailed(&without);
        let cfg = sim.config();
        prop_assert!(b_rev.penalties >= cfg.reversal_penalty - 1e-9,
                     "reversal not penalized: {}", b_rev.penalties);
        // The no-reversal schedule carries no reversal penalty term, so
        // unless it has many infeasible quarters its penalties are lower.
        prop_assert!(b_no.penalties <= b_rev.penalties + 4000.0);
    }
}
