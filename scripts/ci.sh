#!/bin/bash
# Tier-1 verification gate: release build + full test suite, with
# warnings promoted to errors. Run from anywhere inside the repo.
#
#   scripts/ci.sh            # build + test
#   scripts/ci.sh --quick    # skip the release build (debug tests only)
#
# This is the same gate run_experiments.sh assumes has passed before a
# reproduction sweep is launched.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

if [[ "${1:-}" != "--quick" ]]; then
  echo "== cargo build --release (warnings are errors) =="
  cargo build --release
fi

echo "== cargo test -q (workspace, warnings are errors) =="
cargo test -q

echo "== cargo clippy (workspace, -D warnings -W clippy::perf) =="
cargo clippy --workspace -- -D warnings -W clippy::perf

# The acquisition multistart is parallel but must be bit-identical for
# any compute-thread count; replay the determinism suite under two
# global thread settings (PBO_NUM_THREADS is the env-level override of
# pbo_linalg::parallel::set_num_threads).
echo "== determinism suite at 1 and 4 compute threads =="
PBO_NUM_THREADS=1 cargo test -q --test determinism
PBO_NUM_THREADS=4 cargo test -q --test determinism

if [[ "${1:-}" != "--quick" ]]; then
  # Seconds-scale smoke pass over the perf benches: catches bench-code
  # rot and the in-bench pre-PR equivalence guards without paying for a
  # full measurement run.
  echo "== bench smoke (PBO_BENCH_SMOKE=1) =="
  PBO_BENCH_SMOKE=1 cargo bench -q -p pbo-bench --bench acquisition_scaling
  PBO_BENCH_SMOKE=1 cargo bench -q -p pbo-bench --bench sparse_scaling

  # fit_scaling runs inside the regression gate's smoke mode, which
  # also validates the baseline-capture/compare plumbing.
  echo "== bench_gate smoke =="
  scripts/bench_gate.sh smoke

  # Trace smoke: run a seeded traced optimization, validate that every
  # JSONL line parses and that the event stream reconciles with the run
  # record (the example exits non-zero on any mismatch).
  echo "== observability trace smoke =="
  cargo run --release -q --example observability >/dev/null

  # Orchestrator smoke: a tiny real grid must produce byte-identical
  # artifacts (a) sequentially vs. with a 2-worker pool, and (b) after
  # deleting a checkpoint mid-campaign and resuming — the crash-safety
  # contract of pbo_bench::orchestrate.
  echo "== orchestrator smoke: --jobs / --resume reproduce sequential =="
  orch=target/ci-orch
  rm -rf "$orch"
  grid=(table5 --profile smoke --runs 1 --batches 2 --minutes 0.5)
  cargo run --release -q -p pbo-bench --bin repro -- \
    "${grid[@]}" --jobs 1 --out "$orch/seq" >/dev/null
  cargo run --release -q -p pbo-bench --bin repro -- \
    "${grid[@]}" --jobs 2 --out "$orch/par" >/dev/null
  cmp "$orch/seq/ackley_final.csv" "$orch/par/ackley_final.csv"
  cmp "$orch/seq/ackley_evals_by_batch.csv" "$orch/par/ackley_evals_by_batch.csv"
  # Simulate a crash: drop one checkpoint, resume, re-diff.
  rm "$(ls "$orch/par/checkpoints/ackley/"*.json | head -1)"
  cargo run --release -q -p pbo-bench --bin repro -- \
    "${grid[@]}" --jobs 2 --resume --out "$orch/par" >/dev/null
  cmp "$orch/seq/ackley_final.csv" "$orch/par/ackley_final.csv"
  cmp "$orch/seq/ackley_evals_by_batch.csv" "$orch/par/ackley_evals_by_batch.csv"
  rm -rf "$orch"

  # Session-server smoke: start the daemon, drive a 3-cycle session
  # partway, kill -9 the daemon, restart it over the same directory,
  # resume the session to completion — and require the final record to
  # be byte-identical to the in-process reference (`drive --local`).
  echo "== pbo-server smoke: kill -9 / restart / resume is byte-identical =="
  srv=target/ci-server
  rm -rf "$srv"; mkdir -p "$srv"
  cargo build --release -q -p pbo-server
  # All smokes run against the bounded 2-worker connection pool — the
  # crash/restart contract must hold under pooled scheduling too.
  start_daemon() {
    target/release/pbo-server serve --addr 127.0.0.1:0 --workers 2 \
      --dir "$srv/sessions" --addr-file "$srv/addr" >"$srv/daemon.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 1 100); do [[ -s "$srv/addr" ]] && break; sleep 0.1; done
    [[ -s "$srv/addr" ]] || { cat "$srv/daemon.log"; exit 1; }
  }
  session=(--id ci-smoke --problem ackley-3d --algo kb-q-ego \
           --cycles 3 --q 2 --init 6 --seed 7)
  start_daemon
  target/release/pbo-server drive --addr "$(cat "$srv/addr")" \
    "${session[@]}" --stop-after 2 >/dev/null
  kill -9 "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
  rm -f "$srv/addr"
  start_daemon
  target/release/pbo-server drive --addr "$(cat "$srv/addr")" \
    "${session[@]}" --record-out "$srv/served.json" >/dev/null
  target/release/pbo-server drive --local \
    "${session[@]}" --record-out "$srv/local.json" >/dev/null
  kill -9 "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
  cmp "$srv/served.json" "$srv/local.json"
  rm -rf "$srv"

  # Variable-q leg: the same kill -9 / restart / resume contract for a
  # hybrid-q session, whose per-cycle batch size the proto-2 ask reply
  # carries and the schema-2 checkpoint records (`"qs"`).
  echo "== pbo-server smoke: variable-q (hybrid-q) kill/restart over TCP =="
  rm -rf "$srv"; mkdir -p "$srv"
  session=(--id ci-vq --problem ackley-3d --algo hybrid-q \
           --cycles 4 --q 4 --init 8 --seed 7)
  start_daemon
  target/release/pbo-server drive --addr "$(cat "$srv/addr")" \
    "${session[@]}" --stop-after 2 >/dev/null
  kill -9 "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
  rm -f "$srv/addr"
  start_daemon
  target/release/pbo-server drive --addr "$(cat "$srv/addr")" \
    "${session[@]}" --record-out "$srv/served.json" >/dev/null
  target/release/pbo-server drive --local \
    "${session[@]}" --record-out "$srv/local.json" >/dev/null
  kill -9 "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
  cmp "$srv/served.json" "$srv/local.json"
  grep -q '"qs":' "$srv/sessions/ci-vq.session.json"
  rm -rf "$srv"

  # Bounded-pool leg: hammer the 2-worker daemon with parallel client
  # processes mid-session, kill -9, restart, resume every session in
  # parallel again — each record must still be byte-identical to its
  # in-process reference. Pool scheduling must never perturb a
  # trajectory, even across a crash.
  echo "== pbo-server smoke: 2-worker pool, parallel clients, kill -9 / restart =="
  rm -rf "$srv"; mkdir -p "$srv"
  pool_session() { # i extra...
    local i=$1; shift
    target/release/pbo-server drive --addr "$(cat "$srv/addr")" \
      --id "pool-$i" --problem ackley-2d --algo random --cycles 2 --q 2 \
      --init 4 --seed "$i" "$@" >/dev/null
  }
  start_daemon
  pool_pids=()
  for i in 1 2 3 4 5 6 7 8; do
    pool_session "$i" --stop-after 1 &
    pool_pids+=($!)
  done
  wait "${pool_pids[@]}"
  kill -9 "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
  rm -f "$srv/addr"
  start_daemon
  pool_pids=()
  for i in 1 2 3 4 5 6 7 8; do
    pool_session "$i" --record-out "$srv/pool-$i.json" &
    pool_pids+=($!)
  done
  wait "${pool_pids[@]}"
  kill -9 "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true
  for i in 1 2 3 4 5 6 7 8; do
    target/release/pbo-server drive --local \
      --id "pool-$i" --problem ackley-2d --algo random --cycles 2 --q 2 \
      --init 4 --seed "$i" --record-out "$srv/local-$i.json" >/dev/null
    cmp "$srv/pool-$i.json" "$srv/local-$i.json"
  done
  rm -rf "$srv"

  # The public API surface is documented; rustdoc warnings (broken
  # intra-doc links, missing docs) are errors.
  echo "== cargo doc --no-deps (warnings are errors) =="
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
fi

echo "CI gate passed."
