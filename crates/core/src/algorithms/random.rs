//! Uniform random search under the same budget protocol — the paper's
//! §4 baseline ("a large random sample of almost 12,000 evaluations"),
//! run through the engine so its records are directly comparable.

use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_problems::Problem;

/// Drive a prepared engine with random search to budget exhaustion
/// (q uniform points per cycle; no surrogate, no acquisition cost).
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::RandomSearch, e)
}

/// Run random search to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("random")
        .build()
        .expect("invalid random-search configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn zero_surrogate_overhead() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(3, 2).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 1);
        let (fit, acq, sim) = r.time_split();
        assert_eq!(fit, 0.0);
        assert_eq!(acq, 0.0);
        assert!(sim > 0.0);
    }

    #[test]
    fn draws_fresh_points_each_cycle() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 2);
        // All 8 post-DoE values distinct with probability 1.
        let tail = &r.y_min[8..];
        for i in 0..tail.len() {
            for j in 0..i {
                assert_ne!(tail[i], tail[j]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(3, 2).with_initial_samples(8);
        let a = run(&p, budget, AlgoConfig::test_profile(), 5);
        let b = run(&p, budget, AlgoConfig::test_profile(), 5);
        assert_eq!(a.y_min, b.y_min);
    }
}
