//! Component micro-benchmarks: the costs whose growth produces the
//! paper's breaking point (GP fitting, posterior algebra, the UPHES
//! simulator itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbo_gp::fit::{fit, mll_and_grad, FitConfig};
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::{Cholesky, Matrix};
use pbo_sampling::{lhs, SeedStream};
use pbo_uphes::Simulator;
use rand::Rng;

fn dataset(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let seeds = SeedStream::new(seed);
    let mut rng = seeds.fork_named("bench-data").rng();
    let pts = lhs::latin_hypercube(&mut rng, n, d);
    let mut x = Matrix::zeros(0, d);
    let mut y = Vec::with_capacity(n);
    for p in &pts {
        y.push(p.iter().map(|v| (3.0 * v).sin() + v * v).sum::<f64>());
        x.push_row(p).unwrap();
    }
    (x, y)
}

/// Cholesky factorization vs n: the O(n³) core of every fit.
fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky_factor");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[64usize, 128, 256, 512] {
        let (x, _) = dataset(n, 12, 1);
        let kernel = Kernel::new(KernelType::Matern52, 12);
        let mut k = kernel.matrix(&x);
        k.add_diag(1e-4);
        g.bench_with_input(BenchmarkId::from_parameter(n), &k, |b, k| {
            b.iter(|| Cholesky::factor(k).unwrap().log_det())
        });
    }
    g.finish();
}

/// One marginal-likelihood value+gradient evaluation vs n — the unit of
/// work inside every hyperparameter-fitting iteration.
fn bench_mll_grad(c: &mut Criterion) {
    let mut g = c.benchmark_group("mll_and_grad");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let (x, y) = dataset(n, 12, 2);
        let mean = pbo_linalg::vec_ops::mean(&y);
        let sd = pbo_linalg::vec_ops::variance(&y).sqrt();
        let y_std: Vec<f64> = y.iter().map(|v| (v - mean) / sd).collect();
        let mut params = vec![(0.5f64).ln(); 12];
        params.push(0.0);
        params.push((1e-4f64).ln());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mll_and_grad(KernelType::Matern52, &x, &y_std, &params).unwrap().0)
        });
    }
    g.finish();
}

/// Full hyperparameter fit vs n (the per-cycle "model learning" cost of
/// Fig. 2's discussion).
fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("gp_fit");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let (x, y) = dataset(n, 12, 3);
        let cfg = FitConfig { restarts: 1, max_iters: 20, ..FitConfig::default() };
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut seeds = SeedStream::new(9);
                fit(&x, &y, &cfg, None, &mut seeds).unwrap().1.mll
            })
        });
    }
    g.finish();
}

/// Fantasy conditioning (rank-q extension) vs plain O(n³) rebuild.
fn bench_fantasy_update(c: &mut Criterion) {
    let (x, y) = dataset(256, 12, 4);
    let kernel = Kernel::new(KernelType::Matern52, 12);
    let gp = GaussianProcess::new(x, &y, kernel, 1e-4).unwrap();
    let mut rng = SeedStream::new(5).fork_named("f").rng();
    let new_x: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..12).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let new_y: Vec<f64> = (0..4).map(|_| rng.gen::<f64>()).collect();
    c.bench_function("fantasy_condition_on_q4_n256", |b| {
        b.iter(|| gp.condition_on(&new_x, &new_y).unwrap().n())
    });
}

/// UPHES simulator throughput: one expected-profit evaluation
/// (96 steps × 8 scenarios).
fn bench_uphes_eval(c: &mut Criterion) {
    let sim = Simulator::maizeret(7);
    let x = [0.36, 0.36, 0.45, 1.0, 0.45, 0.45, 0.92, 0.45, 0.2, 0.0, 0.0, 0.0];
    c.bench_function("uphes_expected_profit", |b| b.iter(|| sim.expected_profit(&x)));
}

/// Posterior prediction cost (mean+variance) on a fitted model.
fn bench_predict(c: &mut Criterion) {
    let (x, y) = dataset(256, 12, 6);
    let kernel = Kernel::new(KernelType::Matern52, 12);
    let gp = GaussianProcess::new(x, &y, kernel, 1e-4).unwrap();
    let p = vec![0.37; 12];
    c.bench_function("gp_predict_n256", |b| b.iter(|| gp.predict(&p)));
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_mll_grad,
    bench_fit,
    bench_fantasy_update,
    bench_uphes_eval,
    bench_predict
);
criterion_main!(benches);
