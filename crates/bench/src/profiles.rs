//! Experiment profiles: the paper's exact protocol vs a reduced one
//! that fits a single-core CI machine.
//!
//! Both run the same 20-virtual-minute, 10 s/simulation protocol; the
//! profiles differ only in repetition count and the surrogate-fitting
//! budget. EXPERIMENTS.md records which profile produced each reported
//! number.

use pbo_core::budget::Budget;
use pbo_core::clock::CostModel;
use pbo_core::engine::{AcqConfig, AlgoConfig, QeiConfig};
use pbo_gp::FitConfig;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Paper protocol: 10 repetitions, unrestricted fitting.
    Paper,
    /// Reduced: 3 repetitions, subsampled hyperparameter fitting,
    /// lighter inner-optimization budgets.
    Fast,
    /// Smoke-test scale for integration tests: 2 repetitions, short
    /// virtual budget.
    Smoke,
}

impl Profile {
    /// Parse from a CLI string.
    pub fn from_name(s: &str) -> Option<Profile> {
        Some(match s {
            "paper" => Profile::Paper,
            "fast" => Profile::Fast,
            "smoke" => Profile::Smoke,
            _ => return None,
        })
    }

    /// Stable display name (inverse of [`Profile::from_name`]; also
    /// part of checkpoint run keys, so renaming invalidates resumes).
    pub fn name(self) -> &'static str {
        match self {
            Profile::Paper => "paper",
            Profile::Fast => "fast",
            Profile::Smoke => "smoke",
        }
    }

    /// Default repetition count.
    pub fn runs(self) -> usize {
        match self {
            Profile::Paper => 10,
            Profile::Fast => 3,
            Profile::Smoke => 2,
        }
    }

    /// The paper's batch sizes.
    pub fn batch_sizes(self) -> Vec<usize> {
        match self {
            Profile::Smoke => vec![1, 2],
            _ => vec![1, 2, 4, 8, 16],
        }
    }

    /// Budget for batch size `q`.
    pub fn budget(self, q: usize) -> Budget {
        match self {
            Profile::Smoke => {
                let mut b = Budget::paper(q).with_initial_samples(8 * q);
                b.stopping = pbo_core::budget::Stopping::VirtualTime(120.0);
                b
            }
            _ => Budget::paper(q),
        }
    }

    /// Algorithm configuration.
    pub fn algo_config(self) -> AlgoConfig {
        match self {
            Profile::Paper => AlgoConfig {
                cost_model: CostModel::Measured { overhead_scale: OVERHEAD_SCALE },
                ..AlgoConfig::default()
            },
            Profile::Fast => AlgoConfig {
                fit: FitConfig {
                    restarts: 1,
                    max_iters: 20,
                    warm_iters: 6,
                    // No cap: the O(n³) fitting growth is the paper's
                    // breaking-point mechanism and must stay live.
                    max_fit_points: None,
                    ..FitConfig::default()
                },
                full_fit_every: 8,
                acq: AcqConfig { restarts: 4, raw_samples: 48, ..AcqConfig::default() },
                qei: QeiConfig { samples: 96, restarts: 3, raw_samples: 16 },
                cost_model: CostModel::Measured { overhead_scale: OVERHEAD_SCALE },
                ..AlgoConfig::default()
            },
            Profile::Smoke => AlgoConfig {
                fit: FitConfig {
                    restarts: 0,
                    max_iters: 12,
                    warm_iters: 5,
                    max_fit_points: Some(96),
                    ..FitConfig::default()
                },
                full_fit_every: 6,
                acq: AcqConfig { restarts: 2, raw_samples: 16, ..AcqConfig::default() },
                qei: QeiConfig { samples: 48, restarts: 2, raw_samples: 8 },
                cost_model: CostModel::Measured { overhead_scale: OVERHEAD_SCALE },
                ..AlgoConfig::default()
            },
        }
    }
}

/// Rust-stack → paper-stack (Python/BoTorch on a 2014 Xeon) slowdown
/// constant, applied identically to all algorithms. Calibrated so a
/// q = 1 benchmark-function run completes on the order of 100 cycles in
/// 20 virtual minutes (Fig. 9b); see EXPERIMENTS.md.
pub const OVERHEAD_SCALE: f64 = 25.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        assert_eq!(Profile::from_name("paper"), Some(Profile::Paper));
        assert_eq!(Profile::from_name("fast"), Some(Profile::Fast));
        assert_eq!(Profile::from_name("smoke"), Some(Profile::Smoke));
        assert_eq!(Profile::from_name("x"), None);
        for p in [Profile::Paper, Profile::Fast, Profile::Smoke] {
            assert_eq!(Profile::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn paper_profile_matches_protocol() {
        let p = Profile::Paper;
        assert_eq!(p.runs(), 10);
        assert_eq!(p.batch_sizes(), vec![1, 2, 4, 8, 16]);
        let b = p.budget(4);
        assert_eq!(b.initial_samples, 64);
    }

    #[test]
    fn fast_profile_keeps_fit_growth_live() {
        // The O(n³) fitting cost is the breaking-point mechanism; only
        // the smoke profile may cap it.
        assert_eq!(Profile::Fast.algo_config().fit.max_fit_points, None);
        assert_eq!(Profile::Paper.algo_config().fit.max_fit_points, None);
        assert!(Profile::Smoke.algo_config().fit.max_fit_points.is_some());
    }
}
