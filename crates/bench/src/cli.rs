//! `repro` command-line parsing, factored out of the binary so the
//! trailing-flag and malformed-value cases are unit-testable.
//!
//! The seed harness panicked on `repro table4 --runs` (index out of
//! bounds) and on `--runs x` / `--batches 2,,4` (`.expect` on parse);
//! every malformed input now surfaces as `Err` and the binary prints
//! the usage message and exits with status 2.

use crate::profiles::Profile;
use std::path::{Path, PathBuf};

/// Usage text printed on any argument error (and for `repro help`).
pub const USAGE: &str = "usage: repro <artifact> [options]

artifacts: table1 table2 table3 table4 table5 table6 table7
           fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
           uphes baseline calibrate ablation extensions all

options:
  --profile fast|paper|smoke  experiment profile (default fast)
  --runs N                    repetitions per grid cell
  --batches 1,2,4             batch sizes to run
  --minutes M                 virtual-time budget override
  --out DIR                   output directory (default results/;
                              created if missing)
  --jobs N                    parallel orchestrator workers (default 1)
  --resume                    skip runs already checkpointed under
                              <out>/checkpoints
  --trace                     write a JSONL engine-event trace per run";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Opts {
    /// Requested artifact (`help` when absent).
    pub artifact: String,
    /// Experiment profile.
    pub profile: Profile,
    /// Repetitions override.
    pub runs: Option<usize>,
    /// Batch-size override.
    pub batches: Option<Vec<usize>>,
    /// Virtual-budget override \[minutes\].
    pub minutes: Option<f64>,
    /// Output directory.
    pub out: PathBuf,
    /// Orchestrator worker count.
    pub jobs: usize,
    /// Resume from existing checkpoints.
    pub resume: bool,
    /// Write per-run JSONL event traces.
    pub trace: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            artifact: "help".into(),
            profile: Profile::Fast,
            runs: None,
            batches: None,
            minutes: None,
            out: PathBuf::from("results"),
            jobs: 1,
            resume: false,
            trace: false,
        }
    }
}

/// Parse `args` (without the program name). Every malformed input —
/// a flag missing its value, an unparsable value, an unknown option —
/// is an `Err` with a one-line description.
pub fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    if let Some(first) = args.first() {
        opts.artifact = first.clone();
    }
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--resume" => opts.resume = true,
            "--trace" => opts.trace = true,
            "--profile" | "--runs" | "--batches" | "--minutes" | "--out" | "--jobs" => {
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| format!("{flag} needs a value"))?
                    .as_str();
                match flag {
                    "--profile" => {
                        opts.profile = Profile::from_name(value)
                            .ok_or_else(|| format!("unknown profile '{value}'"))?;
                    }
                    "--runs" => {
                        opts.runs = Some(parse_count(flag, value)?);
                    }
                    "--batches" => {
                        opts.batches = Some(parse_batches(value)?);
                    }
                    "--minutes" => {
                        let m: f64 = value
                            .parse()
                            .map_err(|_| format!("--minutes: invalid number '{value}'"))?;
                        if m.is_nan() || m <= 0.0 {
                            return Err(format!("--minutes: must be positive, got '{value}'"));
                        }
                        opts.minutes = Some(m);
                    }
                    "--out" => {
                        opts.out = PathBuf::from(value);
                    }
                    "--jobs" => {
                        opts.jobs = parse_count(flag, value)?;
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

fn parse_count(flag: &str, value: &str) -> Result<usize, String> {
    let n: usize =
        value.parse().map_err(|_| format!("{flag}: invalid count '{value}'"))?;
    if n == 0 {
        return Err(format!("{flag}: must be at least 1"));
    }
    Ok(n)
}

fn parse_batches(value: &str) -> Result<Vec<usize>, String> {
    let batches: Vec<usize> = value
        .split(',')
        .map(|s| {
            let s = s.trim();
            if s.is_empty() {
                return Err(format!("--batches: empty element in '{value}'"));
            }
            let q: usize =
                s.parse().map_err(|_| format!("--batches: invalid batch size '{s}'"))?;
            if q == 0 {
                return Err("--batches: batch sizes must be at least 1".to_string());
            }
            Ok(q)
        })
        .collect::<Result<_, _>>()?;
    if batches.is_empty() {
        return Err("--batches: needs at least one batch size".to_string());
    }
    Ok(batches)
}

/// Ensure the output directory exists and is writable: create missing
/// components, then probe with a temporary file so a read-only target
/// fails here with a clean message instead of at the first CSV write.
pub fn prepare_out_dir(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("cannot create output directory {}: {e}", dir.display()))?;
    let probe = dir.join(format!(".repro-write-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("output directory {} is not writable: {e}", dir.display()))?;
    std::fs::remove_file(&probe)
        .map_err(|e| format!("cannot clean probe file in {}: {e}", dir.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_full_flag_set() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.artifact, "help");
        assert_eq!(o.jobs, 1);
        let o = parse_args(&args(&[
            "table7", "--profile", "smoke", "--runs", "5", "--batches", "1,2,4", "--minutes",
            "2.5", "--out", "tmp/x", "--jobs", "4", "--resume", "--trace",
        ]))
        .unwrap();
        assert_eq!(o.artifact, "table7");
        assert_eq!(o.profile, Profile::Smoke);
        assert_eq!(o.runs, Some(5));
        assert_eq!(o.batches, Some(vec![1, 2, 4]));
        assert_eq!(o.minutes, Some(2.5));
        assert_eq!(o.out, PathBuf::from("tmp/x"));
        assert_eq!(o.jobs, 4);
        assert!(o.resume);
        assert!(o.trace);
    }

    /// Regression: `repro table4 --runs` used to index out of bounds.
    #[test]
    fn trailing_flag_is_an_error_not_a_panic() {
        for flag in ["--runs", "--batches", "--minutes", "--out", "--profile", "--jobs"] {
            let e = parse_args(&args(&["table4", flag])).unwrap_err();
            assert!(e.contains("needs a value"), "{flag}: {e}");
        }
    }

    /// Regression: malformed values used to panic via `.expect`.
    #[test]
    fn malformed_values_are_errors_not_panics() {
        assert!(parse_args(&args(&["t", "--runs", "x"])).unwrap_err().contains("invalid count"));
        assert!(parse_args(&args(&["t", "--runs", "0"])).unwrap_err().contains("at least 1"));
        assert!(parse_args(&args(&["t", "--batches", "2,,4"]))
            .unwrap_err()
            .contains("empty element"));
        assert!(parse_args(&args(&["t", "--batches", "a"]))
            .unwrap_err()
            .contains("invalid batch size"));
        assert!(parse_args(&args(&["t", "--minutes", "fast"]))
            .unwrap_err()
            .contains("invalid number"));
        assert!(parse_args(&args(&["t", "--minutes", "-3"])).unwrap_err().contains("positive"));
        assert!(parse_args(&args(&["t", "--profile", "warp"]))
            .unwrap_err()
            .contains("unknown profile"));
        assert!(parse_args(&args(&["t", "--frobnicate"]))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse_args(&args(&["t", "--jobs", "0"])).unwrap_err().contains("at least 1"));
    }

    #[test]
    fn out_dir_is_created_recursively() {
        let dir = std::env::temp_dir()
            .join(format!("pbo-cli-{}", std::process::id()))
            .join("deep/nested/out");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
        assert!(!dir.exists());
        prepare_out_dir(&dir).unwrap();
        assert!(dir.is_dir());
        // Idempotent on an existing directory.
        prepare_out_dir(&dir).unwrap();
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn unwritable_out_dir_reports_cleanly() {
        // A path routed through a regular file is unwritable for any
        // user (read-only permission bits would not stop root, which is
        // how CI containers run).
        let root = std::env::temp_dir().join(format!("pbo-cli-ro-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let file = root.join("plain-file");
        std::fs::write(&file, b"x").unwrap();
        let err = prepare_out_dir(&file.join("sub")).unwrap_err();
        assert!(err.contains("cannot create output directory"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(root);
    }
}
