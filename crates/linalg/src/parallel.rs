//! Scoped-thread helpers for the larger dense kernels.
//!
//! The workspace deliberately avoids a global thread pool: the BO engine
//! owns its own worker pool for simulator evaluations, and linear-algebra
//! parallelism is short-lived fork/join over row blocks. Scoped threads
//! give data-race-free borrowing of the output buffer without `Arc`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Work (in flop-ish units) below which spawning threads costs more than
/// it saves. Tuned conservatively; correctness does not depend on it.
/// Crate-visible so other fan-out sites (the blocked Cholesky sweeps)
/// gate on the same threshold.
pub(crate) const PAR_THRESHOLD: usize = 1 << 21;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set for the lifetime of every scoped worker thread spawned by this
    /// module. Workers report `num_threads() == 1`, so nested fan-outs
    /// (e.g. a multistart polished inside BSP-EGO's per-cell `par_map`)
    /// degrade to sequential execution instead of oversubscribing.
    /// Workers are fresh threads per scope, so the flag needs no reset.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a scoped worker thread spawned by one of
/// the fan-out helpers in this module.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

fn enter_parallel_region() {
    IN_PARALLEL_REGION.with(|c| c.set(true));
}

/// Override the number of worker threads used by the dense kernels
/// (0 = use `PBO_NUM_THREADS` or available parallelism). Mostly for
/// tests and benchmarks.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// `PBO_NUM_THREADS` environment override, parsed once per process.
fn env_threads() -> usize {
    static ENV_THREADS: OnceLock<usize> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("PBO_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Number of threads the kernels will fan out to.
///
/// Resolution order: nested-region guard (always 1 inside a worker),
/// then [`set_num_threads`], then the `PBO_NUM_THREADS` environment
/// variable, then `std::thread::available_parallelism()`.
pub fn num_threads() -> usize {
    if in_parallel_region() {
        return 1;
    }
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Apply `f(i, row)` to each `width`-sized row of `out`, splitting rows
/// across scoped threads when `work` exceeds the parallel threshold.
///
/// `f` must be pure per row: rows are disjoint so no synchronisation is
/// needed. This is the row-block pattern the Rayon docs describe, done
/// with `std::thread::scope` so the crate carries no pool.
pub fn for_each_row_chunk<F>(out: &mut [f64], width: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if width == 0 || out.is_empty() {
        return;
    }
    debug_assert_eq!(out.len() % width, 0);
    let rows = out.len() / width;
    let threads = num_threads().min(rows);
    if threads <= 1 || work < PAR_THRESHOLD {
        for (i, row) in out.chunks_mut(width).enumerate() {
            f(i, row);
        }
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, block) in out.chunks_mut(rows_per * width).enumerate() {
            let f = &f;
            s.spawn(move || {
                enter_parallel_region();
                let base = t * rows_per;
                for (k, row) in block.chunks_mut(width).enumerate() {
                    f(base + k, row);
                }
            });
        }
    });
}

/// Apply `f(i, row)` to each *variable-length* row of `out`, where row
/// `i` owns `out[offsets[i]..offsets[i + 1]]`, splitting rows across
/// scoped threads when `work` exceeds the parallel threshold.
///
/// This is the packed-triangular companion of
/// [`for_each_row_chunk`]: pair-major buffers (one ragged row per
/// training point, row `a` holding its `a` pairs `b < a`) stay
/// contiguous per row, so the same disjoint-chunk borrow argument
/// applies. Blocks are equal-row, so triangular layouts are imbalanced
/// by up to ~2x — acceptable for the short fork/join fan-outs used here.
pub fn for_each_ragged_row_chunk<F>(out: &mut [f64], offsets: &[usize], work: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if offsets.len() < 2 {
        return;
    }
    let rows = offsets.len() - 1;
    debug_assert_eq!(offsets[rows], out.len());
    let threads = num_threads().min(rows);
    if threads <= 1 || work < PAR_THRESHOLD {
        let mut rest = out;
        let mut consumed = offsets[0];
        for i in 0..rows {
            let (row, tail) = rest.split_at_mut(offsets[i + 1] - consumed);
            consumed = offsets[i + 1];
            f(i, row);
            rest = tail;
        }
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut consumed = offsets[0];
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + rows_per).min(rows);
            let (block, tail) = rest.split_at_mut(offsets[r1] - consumed);
            consumed = offsets[r1];
            rest = tail;
            let f = &f;
            s.spawn(move || {
                enter_parallel_region();
                let mut at = 0;
                for i in r0..r1 {
                    let len = offsets[i + 1] - offsets[i];
                    f(i, &mut block[at..at + len]);
                    at += len;
                }
            });
            r0 = r1;
        }
    });
}

/// Parallel map over indices `0..n` collecting into a `Vec`.
///
/// Used for embarrassingly parallel per-point computations (posterior
/// predictions over candidate sets, per-sub-region acquisition in
/// BSP-EGO). Falls back to sequential execution for small `n`.
pub fn par_map<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n <= min_chunk {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let per = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, block) in out.chunks_mut(per).enumerate() {
            let f = &f;
            s.spawn(move || {
                enter_parallel_region();
                let base = t * per;
                for (k, slot) in block.iter_mut().enumerate() {
                    *slot = f(base + k);
                }
            });
        }
    });
    out
}

/// Dynamically scheduled parallel map over `0..n` with an **explicit**
/// worker count: workers pull the next index from a shared atomic
/// counter, so tasks of wildly different durations (e.g. whole
/// optimization runs in the bench orchestrator) balance instead of
/// being pinned to contiguous blocks as in [`par_map`].
///
/// The output is keyed by index — slot `i` always holds `f(i)` — so the
/// result is independent of the worker count and of scheduling order.
/// Workers run inside the parallel-region guard: nested kernel fan-outs
/// (GP fits, multistarts) see `num_threads() == 1` and stay sequential,
/// so an `N`-worker orchestration neither oversubscribes the machine
/// nor perturbs the bit-exact per-run arithmetic.
///
/// A panic in `f` propagates to the caller once the scope joins.
pub fn par_map_workers<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let slots = &slots;
            let next = &next;
            let f = &f;
            s.spawn(move || {
                enter_parallel_region();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let v = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(v);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_chunks_cover_all_rows_sequential() {
        let mut out = vec![0.0; 12];
        for_each_row_chunk(&mut out, 3, 0, |i, row| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 10 + j) as f64;
            }
        });
        assert_eq!(out[0], 0.0);
        assert_eq!(out[3], 10.0);
        assert_eq!(out[11], 32.0);
    }

    #[test]
    fn row_chunks_parallel_path_matches_sequential() {
        // Force the parallel path by passing huge work.
        let mut seq = vec![0.0; 64 * 8];
        let mut par = vec![0.0; 64 * 8];
        let fill = |i: usize, row: &mut [f64]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 100 + j) as f64;
            }
        };
        for_each_row_chunk(&mut seq, 8, 0, fill);
        for_each_row_chunk(&mut par, 8, usize::MAX, fill);
        assert_eq!(seq, par);
    }

    #[test]
    fn ragged_rows_cover_all_rows_both_paths() {
        // Triangular layout: row i owns i entries (row 0 is empty).
        let rows = 9;
        let mut offsets = vec![0usize];
        for i in 0..rows {
            offsets.push(offsets[i] + i);
        }
        let total = *offsets.last().unwrap();
        let fill = |i: usize, row: &mut [f64]| {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 100 + j) as f64;
            }
        };
        let mut seq = vec![-1.0; total];
        let mut par = vec![-1.0; total];
        for_each_ragged_row_chunk(&mut seq, &offsets, 0, fill);
        for_each_ragged_row_chunk(&mut par, &offsets, usize::MAX, fill);
        assert_eq!(seq, par);
        assert_eq!(seq[offsets[5]], 500.0);
        assert_eq!(seq[offsets[6] - 1], 504.0);
        assert!(!seq.contains(&-1.0));
    }

    #[test]
    fn par_map_matches_serial() {
        let a = par_map(100, 0, |i| i * i);
        let b: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn par_map_empty() {
        let a: Vec<f64> = par_map(0, 4, |_| 1.0);
        assert!(a.is_empty());
    }

    /// The thread-count override is process-global; tests that touch it
    /// serialize here so they can't observe each other's settings.
    static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn thread_override_roundtrip() {
        let _g = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn workers_report_single_thread_inside_region() {
        let _g = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(4);
        // Force the parallel path; every worker must see itself as the
        // only thread so nested fan-outs stay sequential.
        let flags = par_map(64, 0, |_| (in_parallel_region(), num_threads()));
        set_num_threads(0);
        assert!(flags.iter().all(|&(inside, n)| inside && n == 1));
        // The caller's thread is unaffected once the scope ends.
        assert!(!in_parallel_region());
    }

    #[test]
    fn par_map_workers_matches_serial_for_any_worker_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_workers(37, workers, |i| i * i), expect, "workers={workers}");
        }
        let empty: Vec<usize> = par_map_workers(0, 4, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn par_map_workers_nested_fanouts_stay_sequential() {
        let _g = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(4);
        let flags = par_map_workers(16, 4, |_| (in_parallel_region(), num_threads()));
        set_num_threads(0);
        assert!(flags.iter().all(|&(inside, n)| inside && n == 1));
        assert!(!in_parallel_region());
    }

    #[test]
    fn nested_par_map_degrades_to_serial_and_matches() {
        let _g = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(4);
        let nested = par_map(8, 0, |i| {
            let inner = par_map(16, 0, |j| (i * 16 + j) as f64);
            inner.iter().sum::<f64>()
        });
        set_num_threads(0);
        let expect: Vec<f64> =
            (0..8).map(|i| (0..16).map(|j| (i * 16 + j) as f64).sum()).collect();
        assert_eq!(nested, expect);
    }
}
