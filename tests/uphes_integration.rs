//! Integration of the UPHES simulator with the optimization stack.

use pbo::core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::core::engine::{AcqConfig, AlgoConfig, QeiConfig};
use pbo::problems::random_search::random_search;
use pbo::problems::{Problem, UphesProblem};
use pbo::uphes::schedule::Schedule;

/// A deterministic (fixed-cost) configuration strong enough for the
/// 12-d UPHES landscape, unlike the minimal smoke profile: a larger
/// DoE fraction (28 of the 66-sim budget), full hyperparameter refits
/// every cycle with two restarts, and an 8×96 acquisition multistart.
fn uphes_test_config() -> AlgoConfig {
    use pbo::core::clock::CostModel;
    use pbo::gp::FitConfig;
    AlgoConfig {
        fit: pbo::gp::FitConfig { restarts: 2, max_iters: 40, warm_iters: 12, ..FitConfig::default() },
        full_fit_every: 1,
        acq: AcqConfig { restarts: 8, raw_samples: 96, ..AcqConfig::default() },
        qei: QeiConfig { samples: 64, restarts: 2, raw_samples: 12 },
        cost_model: CostModel::Fixed { per_call: 1.0 },
        ..AlgoConfig::default()
    }
}

/// The shared 66-simulation budget: 19 cycles × 2 + 28 DoE.
fn uphes_test_budget() -> Budget {
    Budget::cycles(19, 2).with_initial_samples(28)
}

#[test]
fn bo_beats_random_search_under_equal_simulation_budget() {
    let problem = UphesProblem::maizeret(17);
    let budget = uphes_test_budget();
    let bo = run_algorithm_with(AlgorithmKind::MicQEgo, &problem, &budget, uphes_test_config(), 2);
    let rs = random_search(&problem, 66, 2);
    assert!(
        bo.best_y() > rs.value,
        "BO profit {} should beat random-search profit {}",
        bo.best_y(),
        rs.value
    );
}

#[test]
fn optimized_schedule_is_mostly_feasible() {
    let problem = UphesProblem::maizeret(23);
    let budget = Budget::cycles(10, 2).with_initial_samples(16);
    let r = run_algorithm_with(
        AlgorithmKind::Turbo,
        &problem,
        &budget,
        AlgoConfig::test_profile(),
        4,
    );
    let breakdown = problem.simulator().evaluate_detailed(&r.best_x);
    // A good schedule tolerates a few head-drift rejections but cannot
    // live in penalty territory.
    assert!(
        breakdown.infeasible_steps < 20.0,
        "optimized schedule has {} infeasible quarters/scenario",
        breakdown.infeasible_steps
    );
    assert!((breakdown.profit - r.best_y()).abs() < 1e-6);
}

#[test]
fn best_decision_decodes_to_valid_schedule() {
    let problem = UphesProblem::maizeret(29);
    let budget = Budget::cycles(4, 2).with_initial_samples(12);
    let r = run_algorithm_with(
        AlgorithmKind::KbQEgo,
        &problem,
        &budget,
        AlgoConfig::test_profile(),
        6,
    );
    let s = Schedule::decode(&r.best_x);
    for p in s.block_power {
        assert!(p <= -6.0 || p == 0.0 || (4.0..=8.0).contains(&p), "setpoint {p}");
    }
    for res in s.reserve {
        assert!((0.0..=3.0).contains(&res));
    }
}

#[test]
fn profit_landscape_orientation_is_consistent_end_to_end() {
    // The engine minimizes −profit; the record restores profit. A
    // direct simulator call on best_x must agree with best_y.
    let problem = UphesProblem::maizeret(31);
    let budget = Budget::cycles(3, 2).with_initial_samples(10);
    let r = run_algorithm_with(
        AlgorithmKind::BspEgo,
        &problem,
        &budget,
        AlgoConfig::test_profile(),
        8,
    );
    assert!((problem.eval(&r.best_x) - r.best_y()).abs() < 1e-9);
    assert!(r.maximize);
}

#[test]
fn random_baseline_matches_paper_narrative() {
    // §4: even thousands of random samples stay far from the optimized
    // profits. With 2000 samples the best random profit must remain
    // well below what 24 optimized simulations reach above.
    let problem = UphesProblem::maizeret(17);
    let rs = random_search(&problem, 2000, 5);
    let bo = run_algorithm_with(
        AlgorithmKind::MicQEgo,
        &problem,
        &uphes_test_budget(),
        uphes_test_config(),
        2,
    );
    assert!(
        bo.best_y() > rs.value - 200.0,
        "66-sim BO ({}) should be at least competitive with 2000-sim random ({})",
        bo.best_y(),
        rs.value
    );
}
