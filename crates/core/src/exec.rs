//! Parallel batch evaluation — the MPI4Py worker pool of the paper,
//! as a crossbeam scoped-thread fan-out.
//!
//! The candidates of one cycle are evaluated concurrently, one worker
//! per candidate (the paper maps one MPI rank per batch element). The
//! virtual clock is charged by the *engine* (fixed 10 s + dispatch
//! overhead), not here: this module only runs the real Rust simulator,
//! whose actual speed is irrelevant to the protocol.

use pbo_problems::{eval_min, Problem};

/// Evaluate each point with the problem, in parallel when the batch has
/// more than one element. Returns minimization-oriented values.
pub fn evaluate_batch(problem: &dyn Problem, points: &[Vec<f64>]) -> Vec<f64> {
    match points.len() {
        0 => Vec::new(),
        1 => vec![eval_min(problem, &points[0])],
        _ => {
            let mut out = vec![0.0f64; points.len()];
            crossbeam::thread::scope(|s| {
                for (slot, p) in out.iter_mut().zip(points) {
                    s.spawn(move |_| {
                        *slot = eval_min(problem, p);
                    });
                }
            })
            .expect("evaluation worker panicked");
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn matches_sequential_evaluation() {
        let p = SyntheticFn::ackley(5);
        let pts: Vec<Vec<f64>> = (0..7)
            .map(|i| (0..5).map(|j| (i * 5 + j) as f64 * 0.1 - 1.0).collect())
            .collect();
        let par = evaluate_batch(&p, &pts);
        for (v, x) in par.iter().zip(&pts) {
            assert_eq!(*v, p.eval(x));
        }
    }

    #[test]
    fn flips_sign_for_maximizers() {
        let p = pbo_problems::UphesProblem::maizeret(2);
        let pts = vec![vec![0.45; 12], vec![0.2; 12]];
        let vals = evaluate_batch(&p, &pts);
        assert_eq!(vals[0], -p.eval(&pts[0]));
        assert_eq!(vals[1], -p.eval(&pts[1]));
    }

    #[test]
    fn empty_batch_ok() {
        let p = SyntheticFn::ackley(3);
        assert!(evaluate_batch(&p, &[]).is_empty());
    }
}
