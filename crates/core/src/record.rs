//! Run records: everything the bench harness needs to rebuild the
//! paper's tables and figures from a set of optimization runs.

use serde::{Deserialize, Serialize};

/// Per-batch fault bookkeeping from the fault-tolerant executor
/// (`pbo-core::exec::evaluate_batch_ft`) and the engine's degradation
/// policy. All counts are exact and deterministic given the run seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Worker panics caught and isolated.
    pub panics: u64,
    /// NaN results quarantined before reaching the dataset.
    pub nan_quarantined: u64,
    /// Infinite results quarantined before reaching the dataset.
    pub inf_quarantined: u64,
    /// Evaluations that straggled (returned late in virtual time).
    pub stragglers: u64,
    /// Attempts killed by the per-evaluation virtual timeout.
    pub timeouts: u64,
    /// Re-attempts performed (Σ per-point `attempts − 1`).
    pub retries: u64,
    /// Points that exhausted retries and were imputed (constant-liar
    /// dataset max) before the GP update.
    pub imputed: u64,
    /// Points that exhausted retries and were dropped outright.
    pub dropped: u64,
    /// Virtual rank-seconds consumed beyond the fault-free cost: extra
    /// simulation attempts, backoff waits, straggler delays and timeout
    /// charges, summed over all ranks (the paper's CPU-seconds-lost
    /// view; the charged *wall* time is the max over ranks and lives in
    /// `sim_time`).
    pub virtual_secs_lost: f64,
}

impl FaultCounters {
    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.panics += other.panics;
        self.nan_quarantined += other.nan_quarantined;
        self.inf_quarantined += other.inf_quarantined;
        self.stragglers += other.stragglers;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.imputed += other.imputed;
        self.dropped += other.dropped;
        self.virtual_secs_lost += other.virtual_secs_lost;
    }

    /// Total failed attempts (each one either triggered a retry or
    /// exhausted the point).
    pub fn failed_attempts(&self) -> u64 {
        self.panics + self.nan_quarantined + self.inf_quarantined + self.timeouts
    }

    /// True when any fault was observed.
    pub fn any(&self) -> bool {
        self.failed_attempts() + self.stragglers + self.imputed + self.dropped > 0
            || self.virtual_secs_lost > 0.0
    }
}

/// One optimization cycle's bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Cycle index (0-based; the initial design is cycle-less).
    pub cycle: usize,
    /// Virtual seconds spent fitting the surrogate this cycle.
    pub fit_time: f64,
    /// Virtual seconds spent in the acquisition process this cycle.
    pub acq_time: f64,
    /// Virtual seconds spent simulating this cycle's batch.
    pub sim_time: f64,
    /// Batch size actually evaluated.
    pub n_evals: usize,
    /// Best objective (minimization orientation) after this cycle.
    pub best_y_min: f64,
    /// Virtual clock reading at the end of the cycle.
    pub clock: f64,
    /// Faults absorbed while evaluating this cycle's batch.
    pub faults: FaultCounters,
}

/// A complete optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Algorithm name.
    pub algorithm: String,
    /// Problem name.
    pub problem: String,
    /// Whether the problem is natively a maximization.
    pub maximize: bool,
    /// Batch size q.
    pub batch_size: usize,
    /// Run seed.
    pub seed: u64,
    /// Size of the initial design.
    pub doe_size: usize,
    /// All observed objective values (minimization orientation), in
    /// evaluation order (DoE first).
    pub y_min: Vec<f64>,
    /// Location of the best observation, in the problem's native
    /// coordinates.
    pub best_x: Vec<f64>,
    /// Per-cycle records.
    pub cycles: Vec<CycleRecord>,
    /// Final virtual clock \[seconds\].
    pub final_clock: f64,
    /// Faults absorbed while evaluating the initial design (untimed,
    /// so not part of any cycle).
    pub doe_faults: FaultCounters,
}

impl RunRecord {
    /// Aggregate fault tally over the whole run (DoE + every cycle).
    pub fn fault_totals(&self) -> FaultCounters {
        let mut total = self.doe_faults;
        for c in &self.cycles {
            total.merge(&c.faults);
        }
        total
    }

    /// Total simulations performed (DoE included).
    pub fn n_simulations(&self) -> usize {
        self.y_min.len()
    }

    /// Simulations performed after the initial design.
    pub fn n_optimization_simulations(&self) -> usize {
        self.y_min.len().saturating_sub(self.doe_size)
    }

    /// Number of optimization cycles completed.
    pub fn n_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Best objective value in the problem's native orientation.
    pub fn best_y(&self) -> f64 {
        let best_min = self.y_min.iter().copied().fold(f64::INFINITY, f64::min);
        if self.maximize {
            -best_min
        } else {
            best_min
        }
    }

    /// Best-so-far trace per evaluation, native orientation.
    pub fn best_trace(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.y_min
            .iter()
            .map(|&v| {
                best = best.min(v);
                if self.maximize {
                    -best
                } else {
                    best
                }
            })
            .collect()
    }

    /// Aggregate time split `(fit, acq, sim)` over all cycles \[virtual s\].
    pub fn time_split(&self) -> (f64, f64, f64) {
        let mut f = 0.0;
        let mut a = 0.0;
        let mut s = 0.0;
        for c in &self.cycles {
            f += c.fit_time;
            a += c.acq_time;
            s += c.sim_time;
        }
        (f, a, s)
    }
}

// ---------------------------------------------------------------------
// Checkpoint serialization: hand-rolled JSON (the vendored serde is a
// no-op shim), lossless for every field so that a serialize → parse
// roundtrip reproduces the record bit-exactly. The bench orchestrator
// checkpoints one record per completed run and rebuilds all tables and
// figures as a pure fold over these lines.
// ---------------------------------------------------------------------

use crate::json::{self, push_f64_lossless, push_str_literal, Json};

/// Checkpoint schema version; bump on any incompatible field change so
/// resumed campaigns re-run instead of mis-parsing stale checkpoints.
pub const RECORD_SCHEMA_VERSION: u64 = 1;

fn push_fault_counters(out: &mut String, f: &FaultCounters) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"panics\":{},\"nan_quarantined\":{},\"inf_quarantined\":{},\
         \"stragglers\":{},\"timeouts\":{},\"retries\":{},\
         \"imputed\":{},\"dropped\":{},\"virtual_secs_lost\":",
        f.panics,
        f.nan_quarantined,
        f.inf_quarantined,
        f.stragglers,
        f.timeouts,
        f.retries,
        f.imputed,
        f.dropped,
    );
    push_f64_lossless(out, f.virtual_secs_lost);
    out.push('}');
}

fn push_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64_lossless(out, *v);
    }
    out.push(']');
}

fn fault_counters_from_json(v: &Json) -> Result<FaultCounters, String> {
    let count = |key: &str| -> Result<u64, String> {
        v.require(key)?.as_u64().ok_or_else(|| format!("field '{key}' is not a count"))
    };
    Ok(FaultCounters {
        panics: count("panics")?,
        nan_quarantined: count("nan_quarantined")?,
        inf_quarantined: count("inf_quarantined")?,
        stragglers: count("stragglers")?,
        timeouts: count("timeouts")?,
        retries: count("retries")?,
        imputed: count("imputed")?,
        dropped: count("dropped")?,
        virtual_secs_lost: require_f64(v, "virtual_secs_lost")?,
    })
}

fn require_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.require(key)?.as_f64().ok_or_else(|| format!("field '{key}' is not a number"))
}

fn require_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.require(key)?.as_usize().ok_or_else(|| format!("field '{key}' is not a count"))
}

fn require_f64_array(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    v.require(key)?
        .as_array()
        .ok_or_else(|| format!("field '{key}' is not an array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("field '{key}' has a non-number element")))
        .collect()
}

impl CycleRecord {
    fn push_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"cycle\":{},\"fit_time\":", self.cycle);
        push_f64_lossless(out, self.fit_time);
        out.push_str(",\"acq_time\":");
        push_f64_lossless(out, self.acq_time);
        out.push_str(",\"sim_time\":");
        push_f64_lossless(out, self.sim_time);
        let _ = write!(out, ",\"n_evals\":{},\"best_y_min\":", self.n_evals);
        push_f64_lossless(out, self.best_y_min);
        out.push_str(",\"clock\":");
        push_f64_lossless(out, self.clock);
        out.push_str(",\"faults\":");
        push_fault_counters(out, &self.faults);
        out.push('}');
    }

    fn from_json(v: &Json) -> Result<CycleRecord, String> {
        Ok(CycleRecord {
            cycle: require_usize(v, "cycle")?,
            fit_time: require_f64(v, "fit_time")?,
            acq_time: require_f64(v, "acq_time")?,
            sim_time: require_f64(v, "sim_time")?,
            n_evals: require_usize(v, "n_evals")?,
            best_y_min: require_f64(v, "best_y_min")?,
            clock: require_f64(v, "clock")?,
            faults: fault_counters_from_json(v.require("faults")?)?,
        })
    }
}

impl RunRecord {
    /// Encode as one JSON line (no trailing newline). Field order is
    /// fixed, floats are shortest-roundtrip, so the encoding is a
    /// deterministic, lossless function of the record.
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256 + 24 * self.y_min.len());
        let _ = write!(s, "{{\"schema\":{RECORD_SCHEMA_VERSION},\"algorithm\":");
        push_str_literal(&mut s, &self.algorithm);
        s.push_str(",\"problem\":");
        push_str_literal(&mut s, &self.problem);
        // The seed is a full 64-bit mix; JSON numbers travel through
        // f64 in this parser, so encode it as a string to stay exact.
        let _ = write!(
            s,
            ",\"maximize\":{},\"batch_size\":{},\"seed\":\"{}\",\"doe_size\":{}",
            self.maximize, self.batch_size, self.seed, self.doe_size
        );
        s.push_str(",\"y_min\":");
        push_f64_array(&mut s, &self.y_min);
        s.push_str(",\"best_x\":");
        push_f64_array(&mut s, &self.best_x);
        s.push_str(",\"cycles\":[");
        for (i, c) in self.cycles.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            c.push_json(&mut s);
        }
        s.push_str("],\"final_clock\":");
        push_f64_lossless(&mut s, self.final_clock);
        s.push_str(",\"doe_faults\":");
        push_fault_counters(&mut s, &self.doe_faults);
        s.push('}');
        s
    }

    /// Decode a line produced by [`RunRecord::to_json_line`]. Rejects
    /// unknown schema versions and any missing or mistyped field, so a
    /// truncated or stale checkpoint surfaces as an error (and the
    /// orchestrator re-runs it) rather than as corrupt aggregates.
    pub fn from_json_line(line: &str) -> Result<RunRecord, String> {
        let v = json::parse(line)?;
        let schema = v
            .require("schema")?
            .as_u64()
            .ok_or_else(|| "field 'schema' is not a count".to_string())?;
        if schema != RECORD_SCHEMA_VERSION {
            return Err(format!(
                "unsupported record schema {schema} (expected {RECORD_SCHEMA_VERSION})"
            ));
        }
        let cycles = v
            .require("cycles")?
            .as_array()
            .ok_or_else(|| "field 'cycles' is not an array".to_string())?
            .iter()
            .map(CycleRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunRecord {
            algorithm: v
                .require("algorithm")?
                .as_str()
                .ok_or_else(|| "field 'algorithm' is not a string".to_string())?
                .to_string(),
            problem: v
                .require("problem")?
                .as_str()
                .ok_or_else(|| "field 'problem' is not a string".to_string())?
                .to_string(),
            maximize: v
                .require("maximize")?
                .as_bool()
                .ok_or_else(|| "field 'maximize' is not a bool".to_string())?,
            batch_size: require_usize(&v, "batch_size")?,
            seed: match v.require("seed")? {
                Json::Str(s) => s
                    .parse::<u64>()
                    .map_err(|_| "field 'seed' is not a u64 string".to_string())?,
                other => other
                    .as_u64()
                    .ok_or_else(|| "field 'seed' is not a count".to_string())?,
            },
            doe_size: require_usize(&v, "doe_size")?,
            y_min: require_f64_array(&v, "y_min")?,
            best_x: require_f64_array(&v, "best_x")?,
            cycles,
            final_clock: require_f64(&v, "final_clock")?,
            doe_faults: fault_counters_from_json(v.require("doe_faults")?)?,
        })
    }
}

/// Point-wise mean/sd of best-so-far traces truncated to the shortest
/// run — exactly how the paper draws Figs. 3–7 ("curves only display
/// the results for which all data are available").
pub fn mean_sd_trace(records: &[RunRecord]) -> (Vec<f64>, Vec<f64>) {
    let traces: Vec<Vec<f64>> = records.iter().map(|r| r.best_trace()).collect();
    let n = traces.iter().map(|t| t.len()).min().unwrap_or(0);
    let mut mean = Vec::with_capacity(n);
    let mut sd = Vec::with_capacity(n);
    for i in 0..n {
        let col: Vec<f64> = traces.iter().map(|t| t[i]).collect();
        mean.push(pbo_linalg::vec_ops::mean(&col));
        sd.push(pbo_linalg::vec_ops::variance(&col).sqrt());
    }
    (mean, sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(maximize: bool, y: Vec<f64>) -> RunRecord {
        RunRecord {
            algorithm: "test".into(),
            problem: "p".into(),
            maximize,
            batch_size: 2,
            seed: 0,
            doe_size: 2,
            best_x: vec![0.0],
            y_min: y,
            cycles: vec![
                CycleRecord {
                    cycle: 0,
                    fit_time: 1.0,
                    acq_time: 2.0,
                    sim_time: 10.0,
                    n_evals: 2,
                    best_y_min: 0.0,
                    clock: 13.0,
                    faults: FaultCounters::default(),
                },
            ],
            final_clock: 13.0,
            doe_faults: FaultCounters::default(),
        }
    }

    #[test]
    fn best_and_trace_minimization() {
        let r = rec(false, vec![5.0, 3.0, 4.0, 1.0]);
        assert_eq!(r.best_y(), 1.0);
        assert_eq!(r.best_trace(), vec![5.0, 3.0, 3.0, 1.0]);
        assert_eq!(r.n_simulations(), 4);
        assert_eq!(r.n_optimization_simulations(), 2);
    }

    #[test]
    fn best_and_trace_maximization() {
        // Stored minimized: y_min = -profit.
        let r = rec(true, vec![-5.0, -3.0, -7.0]);
        assert_eq!(r.best_y(), 7.0);
        assert_eq!(r.best_trace(), vec![5.0, 5.0, 7.0]);
    }

    #[test]
    fn mean_sd_trace_truncates_to_shortest() {
        let a = rec(false, vec![4.0, 2.0, 1.0]);
        let b = rec(false, vec![6.0, 4.0]);
        let (mean, sd) = mean_sd_trace(&[a, b]);
        assert_eq!(mean.len(), 2);
        assert_eq!(mean[0], 5.0);
        assert_eq!(mean[1], 3.0);
        assert!(sd[0] > 0.0);
    }

    #[test]
    fn time_split_sums_cycles() {
        let r = rec(false, vec![1.0, 2.0]);
        assert_eq!(r.time_split(), (1.0, 2.0, 10.0));
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let mut r = rec(true, vec![0.1 + 0.2, -5.5e17, 1.0 / 3.0]);
        r.algorithm = "kb-q-ego \"x\"".into();
        r.seed = u64::MAX - 12345; // above 2^53: must survive exactly
        r.best_x = vec![1e-300, -0.0, 42.5];
        r.cycles[0].faults = FaultCounters {
            panics: 2,
            nan_quarantined: 1,
            virtual_secs_lost: 10.600000000000001,
            ..FaultCounters::default()
        };
        r.doe_faults.dropped = 3;
        let line = r.to_json_line();
        let back = RunRecord::from_json_line(&line).expect("parse");
        // Bit-exact float roundtrip makes re-encoding byte-identical,
        // which is the property checkpoint aggregation relies on.
        assert_eq!(back.to_json_line(), line);
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.algorithm, r.algorithm);
        assert_eq!(back.y_min.len(), 3);
        assert_eq!(back.y_min[0].to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.cycles[0].faults, r.cycles[0].faults);
        assert_eq!(back.doe_faults, r.doe_faults);
    }

    #[test]
    fn json_rejects_truncation_and_wrong_schema() {
        let r = rec(false, vec![1.0, 2.0]);
        let line = r.to_json_line();
        assert!(RunRecord::from_json_line(&line[..line.len() - 2]).is_err());
        let stale = line.replacen(
            &format!("\"schema\":{RECORD_SCHEMA_VERSION}"),
            "\"schema\":999",
            1,
        );
        let err = RunRecord::from_json_line(&stale).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(RunRecord::from_json_line("{}").is_err());
    }

    #[test]
    fn fault_totals_merge_doe_and_cycles() {
        let mut r = rec(false, vec![1.0, 2.0]);
        r.doe_faults = FaultCounters { panics: 1, virtual_secs_lost: 10.0, ..FaultCounters::default() };
        r.cycles[0].faults =
            FaultCounters { retries: 3, nan_quarantined: 2, imputed: 1, ..FaultCounters::default() };
        let t = r.fault_totals();
        assert_eq!(t.panics, 1);
        assert_eq!(t.retries, 3);
        assert_eq!(t.nan_quarantined, 2);
        assert_eq!(t.imputed, 1);
        assert_eq!(t.virtual_secs_lost, 10.0);
        assert_eq!(t.failed_attempts(), 3);
        assert!(t.any());
        assert!(!FaultCounters::default().any());
    }
}
