//! The multi-tenant session table.
//!
//! Concurrency model: a short-lived map lock hands out per-session
//! `Arc<Mutex<…>>` entries; all engine work happens under the entry
//! lock only, so sessions never block each other. Every
//! journal-advancing transition (create, tell) is written through
//! [`pbo_core::checkpoint::atomic_write`] before the reply goes out —
//! a daemon killed at any instant restarts into exactly the set of
//! states it acknowledged.
//!
//! A checkpoint file that fails to parse or replay is *quarantined*:
//! the session id stays visible with a typed `session_corrupt` error
//! and every other session loads normally. Nothing panics on bad disk
//! state.

use crate::proto::{validate_id, ErrorBody, RequestErrorKind};
use pbo_core::checkpoint::atomic_write;
use pbo_core::observe::metrics::{MetricsObserver, MetricsRegistry};
use pbo_core::session::{AskReply, SessionConfig, SessionState, SessionStatus};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One slot in the session table.
pub enum SessionEntry {
    /// A healthy, drivable session.
    Live(Box<SessionState>),
    /// A quarantined session whose checkpoint could not be restored.
    Corrupt {
        /// Why the restore failed.
        reason: String,
    },
}

/// Reply to a `create`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateReply {
    /// False when the id already existed with the same config.
    pub created: bool,
    /// Content-addressed config key.
    pub key: String,
    /// Next expected turn (0 for fresh sessions, later after resume).
    pub turn: usize,
}

/// Reply to a `tell`.
#[derive(Debug, Clone, PartialEq)]
pub struct TellReply {
    /// Next expected turn.
    pub turn: usize,
    /// True once the budget is exhausted and the record is closed.
    pub done: bool,
}

/// The session registry: in-memory table + on-disk journal directory.
pub struct Registry {
    dir: Option<PathBuf>,
    sessions: Mutex<HashMap<String, Arc<Mutex<SessionEntry>>>>,
    metrics: Arc<MetricsRegistry>,
}

impl Registry {
    /// A registry with no persistence (unit tests, ephemeral servers).
    pub fn in_memory() -> Registry {
        Registry {
            dir: None,
            sessions: Mutex::new(HashMap::new()),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Open (creating if needed) a persistent registry rooted at `dir`
    /// and restore every `*.session.json` checkpoint found there.
    /// Corrupt checkpoints are quarantined, never fatal.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Registry, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create session dir {}: {e}", dir.display()))?;
        let reg = Registry {
            dir: Some(dir.clone()),
            sessions: Mutex::new(HashMap::new()),
            metrics: Arc::new(MetricsRegistry::new()),
        };
        let resumed = reg.metrics.counter("server.sessions.resumed");
        let quarantined = reg.metrics.counter("server.sessions.quarantined");
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| format!("cannot read session dir {}: {e}", dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".session.json"))
            })
            .collect();
        entries.sort(); // deterministic restore order
        for path in entries {
            let fallback_id = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".session.json"))
                .unwrap_or("unknown")
                .to_string();
            let entry = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))
                .and_then(|body| {
                    SessionState::from_checkpoint_line(&body).map_err(|e| e.to_string())
                });
            let (id, entry) = match entry {
                Ok((id, state)) => {
                    // Metrics observers do not survive serialization;
                    // rebuild by replaying into a fresh one.
                    let state = reobserve(&state, &reg.metrics).unwrap_or(state);
                    resumed.inc();
                    (id, SessionEntry::Live(Box::new(state)))
                }
                Err(reason) => {
                    quarantined.inc();
                    (fallback_id, SessionEntry::Corrupt { reason })
                }
            };
            reg.sessions
                .lock()
                .expect("session table poisoned")
                .insert(id, Arc::new(Mutex::new(entry)));
        }
        Ok(reg)
    }

    /// The metrics registry (server counters + aggregated engine
    /// events from every session).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Number of sessions (live + quarantined).
    pub fn len(&self) -> usize {
        self.sessions.lock().expect("session table poisoned").len()
    }

    /// True when no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn checkpoint_path(&self, id: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{id}.session.json")))
    }

    fn persist(&self, id: &str, state: &SessionState) -> Result<(), ErrorBody> {
        let Some(path) = self.checkpoint_path(id) else { return Ok(()) };
        let mut body = state.to_checkpoint_line(id);
        body.push('\n');
        atomic_write(&path, &body)
            .map_err(|e| ErrorBody::request(RequestErrorKind::Io, format!("persist failed: {e}")))
    }

    fn entry(&self, id: &str) -> Result<Arc<Mutex<SessionEntry>>, ErrorBody> {
        self.sessions.lock().expect("session table poisoned").get(id).cloned().ok_or_else(|| {
            ErrorBody::request(RequestErrorKind::UnknownSession, format!("no session '{id}'"))
        })
    }

    /// Run `f` on a live session; quarantined entries answer
    /// `session_corrupt`.
    fn with_live<R>(
        &self,
        id: &str,
        f: impl FnOnce(&mut SessionState) -> Result<R, ErrorBody>,
    ) -> Result<R, ErrorBody> {
        let entry = self.entry(id)?;
        let mut guard = entry.lock().expect("session entry poisoned");
        match &mut *guard {
            SessionEntry::Live(state) => f(state),
            SessionEntry::Corrupt { reason } => Err(ErrorBody::new(
                "session_corrupt",
                format!("session '{id}' is quarantined: {reason}"),
            )),
        }
    }

    /// Create a session, idempotently: re-creating an existing id with
    /// the same config key succeeds with `created: false` (this is how
    /// a restarted client re-attaches); a different key is the typed
    /// `config_mismatch` error.
    pub fn create(&self, id: &str, cfg: SessionConfig) -> Result<CreateReply, ErrorBody> {
        validate_id(id)?;
        let key = cfg.key();
        // Hold the table lock across the existence check and insert so
        // two racing creates cannot both build the session.
        let mut table = self.sessions.lock().expect("session table poisoned");
        if let Some(entry) = table.get(id).cloned() {
            let guard = entry.lock().expect("session entry poisoned");
            return match &*guard {
                SessionEntry::Live(state) => {
                    let have = state.config().key();
                    if have == key {
                        Ok(CreateReply { created: false, key, turn: state.turn() })
                    } else {
                        Err(ErrorBody::request(
                            RequestErrorKind::ConfigMismatch,
                            format!(
                                "session '{id}' exists with config key {have}, request hashes to {key}"
                            ),
                        ))
                    }
                }
                SessionEntry::Corrupt { reason } => Err(ErrorBody::new(
                    "session_corrupt",
                    format!("session '{id}' is quarantined: {reason}"),
                )),
            };
        }
        let observer = MetricsObserver::new(self.metrics.clone());
        let state = SessionState::create_observed(cfg, observer)
            .map_err(|e| ErrorBody::from_session(&e))?;
        self.persist(id, &state)?;
        self.metrics.counter("server.sessions.created").inc();
        table.insert(id.to_string(), Arc::new(Mutex::new(SessionEntry::Live(Box::new(state)))));
        Ok(CreateReply { created: true, key, turn: 0 })
    }

    /// Ask a session for its next batch.
    pub fn ask(&self, id: &str) -> Result<AskReply, ErrorBody> {
        self.metrics.counter("server.requests.ask").inc();
        self.with_live(id, |s| s.ask().map_err(|e| ErrorBody::from_session(&e)))
    }

    /// Whether the session's algorithm chooses its own batch size each
    /// cycle. Dispatch uses this to refuse proto-1 `ask`s that could
    /// not carry the cycle's q back to the client.
    pub fn variable_q(&self, id: &str) -> Result<bool, ErrorBody> {
        self.with_live(id, |s| Ok(s.config().algorithm.is_variable_q()))
    }

    /// Tell a session its evaluated values; the new journal state is
    /// durable before the reply.
    pub fn tell(&self, id: &str, turn: usize, values: &[f64]) -> Result<TellReply, ErrorBody> {
        self.metrics.counter("server.requests.tell").inc();
        self.with_live(id, |s| {
            s.tell(turn, values).map_err(|e| ErrorBody::from_session(&e))?;
            self.persist(id, s)?;
            Ok(TellReply { turn: s.turn(), done: s.is_done() })
        })
    }

    /// A session's status snapshot plus its config key.
    pub fn status(&self, id: &str) -> Result<(SessionStatus, String), ErrorBody> {
        self.with_live(id, |s| Ok((s.status(), s.config().key())))
    }

    /// The finished record's canonical JSON line.
    pub fn record_line(&self, id: &str) -> Result<String, ErrorBody> {
        self.with_live(id, |s| {
            s.record().map(|r| r.to_json_line()).ok_or_else(|| {
                ErrorBody::request(RequestErrorKind::NotDone, format!("session '{id}' has not finished"))
            })
        })
    }

    /// `(id, phase, turn)` for every session, sorted by id.
    pub fn list(&self) -> Vec<(String, String, usize)> {
        let entries: Vec<(String, Arc<Mutex<SessionEntry>>)> = {
            let table = self.sessions.lock().expect("session table poisoned");
            table.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out: Vec<(String, String, usize)> = entries
            .into_iter()
            .map(|(id, entry)| {
                let guard = entry.lock().expect("session entry poisoned");
                match &*guard {
                    SessionEntry::Live(s) => (id, s.status().phase.to_string(), s.turn()),
                    SessionEntry::Corrupt { .. } => (id, "corrupt".to_string(), 0),
                }
            })
            .collect();
        out.sort();
        out
    }

    /// Drop a session from the live table. Its checkpoint file stays
    /// on disk, so the next daemon start restores it.
    pub fn close(&self, id: &str) -> Result<(), ErrorBody> {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| {
                ErrorBody::request(RequestErrorKind::UnknownSession, format!("no session '{id}'"))
            })
    }

    /// Evict finished sessions' checkpoints per `policy`: table entry
    /// and on-disk file both go. Only `Done`-phase sessions are ever
    /// candidates — in-flight sessions are untouched, and quarantined
    /// (corrupt) checkpoints are *never* deleted: they hold the only
    /// evidence of what went wrong and are reported in
    /// [`GcReport::quarantined_kept`] instead.
    pub fn gc(&self, policy: &GcPolicy) -> GcReport {
        let mut report = GcReport::default();
        let entries: Vec<(String, Arc<Mutex<SessionEntry>>)> = {
            let table = self.sessions.lock().expect("session table poisoned");
            table.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        // (age_secs, id) for every finished session; corrupt and
        // in-flight entries are counted but never considered.
        let now = std::time::SystemTime::now();
        let mut done: Vec<(u64, String)> = Vec::new();
        for (id, entry) in entries {
            let guard = entry.lock().expect("session entry poisoned");
            match &*guard {
                SessionEntry::Corrupt { .. } => report.quarantined_kept += 1,
                SessionEntry::Live(s) if s.is_done() => {
                    let age = self
                        .checkpoint_path(&id)
                        .and_then(|p| std::fs::metadata(p).ok())
                        .and_then(|m| m.modified().ok())
                        .and_then(|t| now.duration_since(t).ok())
                        .map_or(0, |d| d.as_secs());
                    done.push((age, id));
                }
                SessionEntry::Live(_) => {}
            }
        }
        // Newest first; ties broken by id so eviction order is
        // deterministic on filesystems with coarse mtimes.
        done.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (i, (age, id)) in done.into_iter().enumerate() {
            let shielded_by_count = i < policy.keep_newest;
            let shielded_by_age = policy.max_age_secs.is_some_and(|max| age <= max);
            if shielded_by_count || shielded_by_age {
                report.kept += 1;
                continue;
            }
            if let Some(path) = self.checkpoint_path(&id) {
                if let Err(e) = std::fs::remove_file(&path) {
                    if e.kind() != std::io::ErrorKind::NotFound {
                        // Leave the table entry in place: disk state and
                        // table must not diverge.
                        report.kept += 1;
                        continue;
                    }
                }
            }
            self.sessions.lock().expect("session table poisoned").remove(&id);
            self.metrics.counter("server.sessions.gc_evicted").inc();
            report.evicted.push(id);
        }
        report
    }
}

/// Eviction policy for [`Registry::gc`]. A finished session survives if
/// it is among the `keep_newest` most recent checkpoints *or* its
/// checkpoint is at most `max_age_secs` old; everything else finished
/// is evicted. `max_age_secs: None` disables the age shield.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcPolicy {
    /// Finished sessions with a checkpoint at most this old (seconds)
    /// are kept. `None`: age alone shields nothing.
    pub max_age_secs: Option<u64>,
    /// The newest N finished sessions are always kept.
    pub keep_newest: usize,
}

/// What [`Registry::gc`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Ids whose checkpoint and table entry were removed, in eviction
    /// order (oldest last by the sort above).
    pub evicted: Vec<String>,
    /// Finished sessions kept by the policy (count or age shield).
    pub kept: usize,
    /// Quarantined checkpoints encountered — never deleted.
    pub quarantined_kept: usize,
}

/// Re-attach a metrics observer to a restored session by replaying its
/// journal into a fresh observed session. Returns `None` when the
/// replay unexpectedly fails (the caller keeps the plain state).
fn reobserve(state: &SessionState, metrics: &Arc<MetricsRegistry>) -> Option<SessionState> {
    let cfg = state.config().clone();
    let observer = MetricsObserver::new(metrics.clone());
    let mut fresh = SessionState::create_observed(cfg, observer).ok()?;
    for (i, values) in state.journal().iter().enumerate() {
        fresh.tell(i, values).ok()?;
    }
    Some(fresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_core::algorithms::AlgorithmKind;
    use pbo_core::budget::Budget;
    use pbo_core::session::{ProblemSpec, SessionProfile};
    use pbo_problems::{Problem, SyntheticFn};

    fn cfg(seed: u64) -> SessionConfig {
        let p = SyntheticFn::ackley(2);
        SessionConfig {
            algorithm: AlgorithmKind::RandomSearch,
            problem: ProblemSpec::of(&p),
            budget: Budget::cycles(2, 2).with_initial_samples(4),
            profile: SessionProfile::Test,
            seed,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pbo_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn create_is_idempotent_and_guards_config_drift() {
        let reg = Registry::in_memory();
        let first = reg.create("s", cfg(1)).unwrap();
        assert!(first.created);
        let again = reg.create("s", cfg(1)).unwrap();
        assert!(!again.created);
        assert_eq!(again.key, first.key);
        let err = reg.create("s", cfg(2)).unwrap_err();
        assert_eq!(err.code, "config_mismatch");
    }

    #[test]
    fn full_drive_through_registry_and_restart_resume() {
        let dir = tmp_dir("drive");
        let p = SyntheticFn::ackley(2);
        let finish = |reg: &Registry| {
            loop {
                let ask = reg.ask("s").unwrap();
                let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
                if reg.tell("s", ask.turn, &values).unwrap().done {
                    break;
                }
            }
            reg.record_line("s").unwrap()
        };

        // Uninterrupted run.
        let reg = Registry::open(&dir).unwrap();
        reg.create("s", cfg(5)).unwrap();
        let uninterrupted = finish(&reg);

        // Same config, killed after the first tell, reopened.
        let dir2 = tmp_dir("drive2");
        let reg = Registry::open(&dir2).unwrap();
        reg.create("s", cfg(5)).unwrap();
        let ask = reg.ask("s").unwrap();
        let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
        reg.tell("s", ask.turn, &values).unwrap();
        drop(reg); // "kill"
        let reg = Registry::open(&dir2).unwrap();
        assert_eq!(reg.len(), 1);
        let resumed = finish(&reg);

        assert_eq!(uninterrupted, resumed, "resume must be bit-identical");
        let _ = std::fs::remove_dir_all(dir);
        let _ = std::fs::remove_dir_all(dir2);
    }

    /// Drive session `id` to completion through ask/tell.
    fn finish(reg: &Registry, id: &str) {
        let p = SyntheticFn::ackley(2);
        loop {
            let ask = reg.ask(id).unwrap();
            let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
            if reg.tell(id, ask.turn, &values).unwrap().done {
                break;
            }
        }
    }

    #[test]
    fn gc_evicts_only_finished_sessions_past_policy() {
        let dir = tmp_dir("gc");
        let reg = Registry::open(&dir).unwrap();
        reg.create("done-a", cfg(1)).unwrap();
        reg.create("done-b", cfg(2)).unwrap();
        reg.create("inflight", cfg(3)).unwrap();
        finish(&reg, "done-a");
        finish(&reg, "done-b");
        // `inflight` gets one tell but stays mid-run.
        let p = SyntheticFn::ackley(2);
        let ask = reg.ask("inflight").unwrap();
        let values: Vec<f64> = ask.points.iter().map(|x| p.eval(x)).collect();
        reg.tell("inflight", ask.turn, &values).unwrap();

        // Keep the newest finished session; evict the other.
        let report = reg.gc(&GcPolicy { max_age_secs: None, keep_newest: 1 });
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.kept, 1);
        assert_eq!(report.quarantined_kept, 0);
        let gone = &report.evicted[0];
        assert!(!dir.join(format!("{gone}.session.json")).exists());
        // In-flight session untouched, on disk and in the table.
        assert!(dir.join("inflight.session.json").exists());
        assert!(reg.ask("inflight").is_ok());
        assert_eq!(reg.len(), 2);

        // A generous age shield keeps the remaining finished session.
        let report = reg.gc(&GcPolicy { max_age_secs: Some(3600), keep_newest: 0 });
        assert!(report.evicted.is_empty());
        assert_eq!(report.kept, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_never_silently_deletes_quarantined_checkpoints() {
        let dir = tmp_dir("gc_corrupt");
        let reg = Registry::open(&dir).unwrap();
        reg.create("finished", cfg(4)).unwrap();
        finish(&reg, "finished");
        drop(reg);
        // A checkpoint that fails to restore — e.g. truncated by a
        // crashed disk — must survive any GC policy, however aggressive.
        let bad = dir.join("bad.session.json");
        std::fs::write(&bad, "{\"event\":\"pbo-session\",trunc").unwrap();
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.len(), 2);
        let report = reg.gc(&GcPolicy { max_age_secs: None, keep_newest: 0 });
        // The finished session goes; the quarantined one is kept AND
        // reported, never dropped silently.
        assert_eq!(report.evicted, vec!["finished".to_string()]);
        assert_eq!(report.quarantined_kept, 1);
        assert!(bad.exists(), "quarantined checkpoint was deleted");
        assert_eq!(reg.ask("bad").unwrap_err().code, "session_corrupt");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_not_fatal() {
        let dir = tmp_dir("corrupt");
        let reg = Registry::open(&dir).unwrap();
        reg.create("good", cfg(1)).unwrap();
        drop(reg);
        std::fs::write(dir.join("bad.session.json"), "{\"event\":\"pbo-session\",trunc").unwrap();
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.len(), 2);
        // The bad one answers with a typed error…
        let err = reg.ask("bad").unwrap_err();
        assert_eq!(err.code, "session_corrupt");
        // …and the good one still works.
        assert!(reg.ask("good").is_ok());
        assert_eq!(reg.metrics().snapshot().counter("server.sessions.quarantined"), 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
