//! TuRBO (Eriksson et al. 2019) with a single trust region, as used in
//! the paper.
//!
//! Per cycle: fit the model, shape the trust region around the
//! incumbent using the ARD lengthscales, maximize MC q-EI (plain EI at
//! q = 1) **inside the region**, evaluate, and update the region —
//! expand on improvement streaks, shrink on failure streaks, restart on
//! collapse. The restricted inner search space is why TuRBO's
//! acquisition is the fastest of the five (paper §3.1).

use super::{acq_multistart, qei_multistart};
use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use crate::trust_region::{TrustRegion, TrustRegionConfig};
use pbo_acq::mc::{optimize_qei, QExpectedImprovement};
use pbo_acq::single::{optimize_single, ExpectedImprovement};
use pbo_problems::Problem;

/// Drive a prepared engine with TuRBO to budget exhaustion.
pub fn drive(mut e: Engine) -> RunRecord {
    let mut tr = TrustRegion::new(TrustRegionConfig::default());

    while e.should_continue() {
        e.fit_model();
        let q = e.q();
        let cfg = e.cfg().clone();
        let acq_seed = e.seeds().fork(0xACC).next_seed();
        let gp = e.gp().clone();
        let f_best_min = e.best_min();
        let center = e.best_x_unit();
        let region = tr.bounds(&center, &gp.kernel().lengthscales);

        let mut batch = e.charge_acquisition(1, || {
            if q == 1 {
                let ei = ExpectedImprovement { f_best: f_best_min };
                let ms = acq_multistart(&cfg, acq_seed);
                let r = optimize_single(&gp, &ei, &region, &[], &ms);
                (vec![r.x], r.restart_shortfall)
            } else {
                let qei =
                    QExpectedImprovement::new(f_best_min, q, cfg.qei.samples, acq_seed ^ 0x7B);
                let ms = qei_multistart(&cfg, acq_seed);
                let out = optimize_qei(&gp, &qei, &region, &[], &ms);
                (out.batch, out.restart_shortfall)
            }
        });
        e.sanitize_batch(&mut batch);
        e.commit_batch(batch);

        let improved = e.best_min() < f_best_min - 1e-12 * (1.0 + f_best_min.abs());
        tr.update(improved);
    }
    e.finish()
}

/// Run TuRBO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("turbo")
        .build()
        .expect("invalid TuRBO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn runs_to_cycle_budget() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 2).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 2);
        assert_eq!(r.n_cycles(), 4);
        assert_eq!(r.n_simulations(), 8 + 8);
    }

    #[test]
    fn improves_over_initial_design() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(5, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 4);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }

    #[test]
    fn q1_path_works() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(3, 1).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 6);
        assert_eq!(r.n_simulations(), 11);
    }
}
