//! # pbo-server — optimization-as-a-service for the PBO engine
//!
//! The paper's production setting runs the expensive UPHES simulator on
//! machines the optimizer does not control. This crate serves the
//! engine's ask/tell form ([`pbo_core::session`]) over a line-oriented
//! TCP protocol, so any process that can evaluate the objective —
//! a cluster job, a licensed simulator wrapper, a shell script — can
//! drive Bayesian optimization without linking the engine:
//!
//! - [`proto`]: newline-delimited JSON requests/responses with typed,
//!   machine-readable error codes (no panic ever crosses the wire);
//! - [`registry`]: the multi-tenant session table — every state
//!   transition is persisted through `pbo_core::checkpoint` so a killed
//!   daemon resumes every session bit-identically on restart;
//! - [`server`]: the TCP daemon — a bounded connection-worker pool
//!   with backpressure, idle/oversize containment and graceful drain
//!   (DESIGN.md §14);
//! - [`client`]: a small blocking client plus a local-evaluation drive
//!   loop (the test client, also used by the CI smoke test);
//! - [`cli`]: argument parsing for the `pbo-server` binary
//!   (`serve` / `status` / `drive` / `validate`);
//! - [`problems`]: name → synthetic benchmark resolution for the
//!   client-side evaluator.

pub mod cli;
pub mod client;
pub mod problems;
pub mod proto;
pub mod registry;
pub mod server;
