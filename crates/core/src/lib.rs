//! # pbo-core — the parallel Bayesian-optimization engine
//!
//! The paper's experimental machine: five batch-acquisition PBO
//! algorithms running against a **virtual wall clock** that reproduces
//! the paper's time-budgeted protocol (20 virtual minutes, 10 s per
//! simulation, non-negligible model-fitting and acquisition overhead).
//!
//! Structure:
//!
//! - [`clock`]: the virtual clock and overhead accounting. Simulations
//!   advance virtual time by a fixed 10 s (plus a batch-dispatch
//!   overhead); fitting/acquisition advance it by *measured* CPU time ×
//!   a constant `overhead_scale` that calibrates this optimized Rust
//!   stack to the paper's Python/BoTorch stack (one global constant,
//!   identical for every algorithm — the relative costs are produced by
//!   the real code, not hard-coded);
//! - [`budget`]: Table-2 budget allocation (initial sample `16 × q`,
//!   simulation budget in virtual minutes);
//! - [`exec`]: the crossbeam worker pool evaluating batches in parallel;
//! - [`engine`]: shared BO-loop machinery — unit-cube normalization,
//!   dataset, GP fit/refit charging, stopping, recording — built through
//!   the validating `Engine::builder`;
//! - [`config`]: the [`config::AlgoConfig`] family (acquisition, q-EI,
//!   cost-model and fault-tolerance settings) and its validation;
//! - [`error`]: typed [`error::ConfigError`]s surfaced by the builder;
//! - [`observe`]: zero-cost-when-disabled structured observability —
//!   typed engine events, JSONL tracing, lock-free metrics;
//! - [`algorithms`]: KB-q-EGO, mic-q-EGO, MC-based q-EGO, BSP-EGO and
//!   TuRBO (plus uniform random search as the weak baseline);
//! - [`partition`]: the binary-space-partition tree behind BSP-EGO;
//! - [`trust_region`]: TuRBO's trust-region state machine;
//! - [`json`]: minimal JSON value tree (parser + lossless float
//!   encoding) backing the checkpoint serialization of [`record`];
//! - [`record`]: per-run traces (cycles, evaluations, time split) that
//!   the bench harness aggregates into the paper's tables and figures,
//!   with hand-rolled JSON (de)serialization for run checkpoints;
//! - [`stats`]: summary statistics and Welch's t-test (Figure 8);
//! - [`checkpoint`]: shared persistence primitives — FNV-1a content
//!   addressing and atomic temp-file/rename commits;
//! - [`session`]: resumable ask/tell sessions — the engine suspended at
//!   the evaluate boundary, event-sourced for bit-identical resume
//!   (the `pbo-server` daemon is built on this).

pub mod algorithms;
pub mod budget;
pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod engine;
pub mod error;
pub mod exec;
pub mod json;
pub mod observe;
pub mod partition;
pub mod record;
pub mod session;
pub mod stats;
pub mod trust_region;
