//! End-to-end integration: every algorithm, full loop, record
//! invariants.

use pbo::core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::core::engine::AlgoConfig;
use pbo::problems::{Problem, SyntheticFn};

fn all_kinds() -> Vec<AlgorithmKind> {
    let mut v = AlgorithmKind::paper_set().to_vec();
    v.push(AlgorithmKind::RandomSearch);
    v
}

#[test]
fn every_algorithm_runs_and_records_consistently() {
    let problem = SyntheticFn::ackley(4);
    let budget = Budget::cycles(3, 2).with_initial_samples(8);
    for kind in all_kinds() {
        let r = run_algorithm_with(kind, &problem, &budget, AlgoConfig::test_profile(), 5);
        assert_eq!(r.algorithm, kind.name());
        assert_eq!(r.n_cycles(), 3, "{}", kind.name());
        assert_eq!(r.n_simulations(), 8 + 6, "{}", kind.name());
        assert_eq!(r.batch_size, 2);
        assert!(r.best_y().is_finite());
        assert!(r.final_clock > 0.0);
        // Trace is monotone non-increasing for a minimization problem.
        let t = r.best_trace();
        for w in t.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        // best_x reproduces best_y through the problem.
        let v = problem.eval(&r.best_x);
        assert!((v - r.best_y()).abs() < 1e-9, "{}: {v} vs {}", kind.name(), r.best_y());
    }
}

#[test]
fn bayesian_methods_beat_random_search_on_smooth_problem() {
    // Rosenbrock's smooth valley is where surrogates shine; with equal
    // simulation budgets every BO method should beat random search.
    let problem = SyntheticFn::rosenbrock(4);
    let budget = Budget::cycles(8, 2).with_initial_samples(12);
    let random =
        run_algorithm_with(AlgorithmKind::RandomSearch, &problem, &budget, AlgoConfig::test_profile(), 3);
    for kind in AlgorithmKind::paper_set() {
        let r = run_algorithm_with(kind, &problem, &budget, AlgoConfig::test_profile(), 3);
        assert!(
            r.best_y() < random.best_y() * 1.5,
            "{} ({}) not clearly better than random ({})",
            kind.name(),
            r.best_y(),
            random.best_y()
        );
    }
}

#[test]
fn deterministic_replay_with_fixed_cost_model() {
    let problem = SyntheticFn::schwefel(4);
    let budget = Budget::cycles(3, 4).with_initial_samples(8);
    for kind in AlgorithmKind::paper_set() {
        let a = run_algorithm_with(kind, &problem, &budget, AlgoConfig::test_profile(), 9);
        let b = run_algorithm_with(kind, &problem, &budget, AlgoConfig::test_profile(), 9);
        assert_eq!(a.y_min, b.y_min, "{} not deterministic", kind.name());
        assert_eq!(a.best_x, b.best_x);
    }
}

#[test]
fn batch_sizes_one_through_eight_supported() {
    let problem = SyntheticFn::ackley(3);
    for q in [1usize, 2, 3, 5, 8] {
        let budget = Budget::cycles(2, q).with_initial_samples(8);
        let r = run_algorithm_with(
            AlgorithmKind::MicQEgo,
            &problem,
            &budget,
            AlgoConfig::test_profile(),
            1,
        );
        assert_eq!(r.n_simulations(), 8 + 2 * q, "q = {q}");
    }
}

#[test]
fn shared_initial_design_across_algorithms() {
    // The paper hands the same initial sets to every algorithm: with a
    // common seed, the DoE segment of y_min must be identical.
    let problem = SyntheticFn::ackley(4);
    let budget = Budget::cycles(1, 2).with_initial_samples(10);
    let recs: Vec<_> = AlgorithmKind::paper_set()
        .iter()
        .map(|&k| run_algorithm_with(k, &problem, &budget, AlgoConfig::test_profile(), 33))
        .collect();
    for r in &recs[1..] {
        assert_eq!(r.y_min[..10], recs[0].y_min[..10]);
    }
}
