//! # pbo — Parallel Bayesian Optimization for UPHES scheduling
//!
//! Facade crate re-exporting the full workspace. This is the crate a
//! downstream user depends on; the individual `pbo-*` crates remain
//! usable on their own.
//!
//! The workspace reproduces Gobert et al., *Batch Acquisition for
//! Parallel Bayesian Optimization — Application to Hydro-Energy Storage
//! Systems Scheduling* (Algorithms 15(12):446, 2022; extended version of
//! the IPDPSW 2022 paper), including:
//!
//! - a from-scratch Gaussian-process stack ([`gp`], [`linalg`],
//!   [`sampling`], [`opt`]),
//! - five batch-acquisition parallel BO algorithms ([`core::algorithms`]),
//! - an Underground Pumped Hydro-Energy Storage plant simulator
//!   ([`uphes`]),
//! - the benchmark functions and experiment harness used in the paper's
//!   evaluation ([`problems`], the `pbo-bench` crate),
//! - zero-cost-when-disabled structured observability
//!   ([`core::observe`]): typed engine events, replayable JSONL traces,
//!   lock-free metrics.
//!
//! ## Quickstart
//!
//! ```
//! use pbo::prelude::*;
//!
//! let problem = SyntheticFn::ackley(4);
//! let cfg = RunConfig::cycles(2, 2).seed(42);
//! let record = pbo::run(AlgorithmKind::KbQEgo, &problem, cfg).unwrap();
//! assert!(record.best_y().is_finite());
//! assert_eq!(record.n_cycles(), 2);
//! ```
//!
//! To watch a run live, attach any [`prelude::Observer`] — e.g. a
//! replayable JSONL trace:
//!
//! ```no_run
//! use pbo::prelude::*;
//!
//! let problem = SyntheticFn::ackley(4);
//! let trace = JsonlTraceWriter::create("run.jsonl").unwrap();
//! let cfg = RunConfig::paper(4).seed(7);
//! let record = pbo::run_observed(AlgorithmKind::Turbo, &problem, cfg, trace).unwrap();
//! # let _ = record;
//! ```
//!
//! Observation never perturbs optimization: results are bit-identical
//! with and without an observer (see DESIGN.md §9).

pub use pbo_acq as acq;
pub use pbo_core as core;
pub use pbo_gp as gp;
pub use pbo_linalg as linalg;
pub use pbo_opt as opt;
pub use pbo_problems as problems;
pub use pbo_sampling as sampling;
pub use pbo_uphes as uphes;

/// The user-facing vocabulary in one import: algorithms, budgets,
/// configuration, records, observability and the common problems.
pub mod prelude {
    pub use crate::core::algorithms::{
        run_algorithm, run_algorithm_observed, run_algorithm_with, AlgorithmKind,
    };
    pub use crate::core::budget::{Budget, Stopping};
    pub use crate::core::config::{
        AcqConfig, AlgoConfig, FantasyKind, QeiConfig, SurrogateBackend,
    };
    pub use crate::core::engine::{Engine, EngineBuilder};
    pub use crate::core::error::ConfigError;
    pub use crate::core::exec::FtPolicy;
    pub use crate::core::observe::jsonl::JsonlTraceWriter;
    pub use crate::core::observe::metrics::{MetricsObserver, MetricsRegistry};
    pub use crate::core::observe::{
        CollectingObserver, Event, FanoutObserver, NullObserver, Observer,
    };
    pub use crate::core::record::{CycleRecord, FaultCounters, RunRecord};
    pub use crate::problems::fault::{FaultPlan, FaultyProblem};
    pub use crate::problems::{Problem, SyntheticFn, UphesProblem};
    pub use crate::{run, run_observed, RunConfig};
}

use crate::core::algorithms::{run_algorithm_observed, AlgorithmKind};
use crate::core::budget::Budget;
use crate::core::config::AlgoConfig;
use crate::core::error::ConfigError;
use crate::core::observe::{NullObserver, Observer};
use crate::core::record::RunRecord;
use crate::problems::Problem;

/// Everything one optimization run needs besides the algorithm and the
/// problem: budget, algorithm configuration and seed.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Time/evaluation budget.
    pub budget: Budget,
    /// Algorithm configuration (defaults reproduce the paper's setup).
    pub algo: AlgoConfig,
    /// Run seed (the whole run is a deterministic function of it).
    pub seed: u64,
}

impl RunConfig {
    /// The paper's protocol at batch size `q`: 20 virtual minutes,
    /// 10 s simulations, `16q` initial samples.
    pub fn paper(q: usize) -> Self {
        RunConfig { budget: Budget::paper(q), algo: AlgoConfig::default(), seed: 0 }
    }

    /// Cycle-bounded run at batch size `q` (tests, examples, demos).
    pub fn cycles(n_cycles: usize, q: usize) -> Self {
        RunConfig {
            budget: Budget::cycles(n_cycles, q),
            algo: AlgoConfig::test_profile(),
            seed: 0,
        }
    }

    /// Set the seed; builder-style.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the budget; builder-style.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the algorithm configuration; builder-style.
    pub fn algo(mut self, algo: AlgoConfig) -> Self {
        self.algo = algo;
        self
    }
}

/// Run one optimization: the one-call entry point of the workspace.
/// Validates the configuration (typed [`ConfigError`] on failure) and
/// returns the full [`RunRecord`].
pub fn run(
    kind: AlgorithmKind,
    problem: &dyn Problem,
    cfg: RunConfig,
) -> Result<RunRecord, ConfigError> {
    run_observed(kind, problem, cfg, NullObserver)
}

/// [`run`] with an observer attached (JSONL trace, metrics, or any
/// custom [`Observer`]). Observation never changes the result.
pub fn run_observed<'a>(
    kind: AlgorithmKind,
    problem: &'a dyn Problem,
    cfg: RunConfig,
    observer: impl Observer + Send + 'a,
) -> Result<RunRecord, ConfigError> {
    run_algorithm_observed(kind, problem, &cfg.budget, cfg.algo, cfg.seed, observer)
}

/// Crate version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
