//! The virtual wall clock.
//!
//! The paper's budget is wall-clock time on a 16-core node driving a
//! 10-second licensed simulator. We reproduce the protocol with a
//! virtual clock so experiments run in seconds:
//!
//! - **simulation time is virtual**: a parallel batch advances the clock
//!   by `sim_seconds + dispatch overhead`, independent of how fast the
//!   Rust simulator actually is;
//! - **surrogate overhead is measured**: model fitting and acquisition
//!   advance the clock by really-elapsed CPU time multiplied by
//!   `overhead_scale`. The scale is one global constant calibrating our
//!   compiled stack against the paper's Python/BoTorch stack; because it
//!   is identical for every algorithm, *relative* acquisition costs (the
//!   paper's breaking-point mechanics) emerge from the real code.
//!
//! A deterministic [`CostModel::Fixed`] exists for unit tests.

use std::time::Instant;

/// How surrogate-side work is converted into virtual seconds.
#[derive(Debug, Clone, Copy)]
pub enum CostModel {
    /// Measure real elapsed time and multiply by `overhead_scale`.
    Measured {
        /// Rust-to-paper-stack slowdown constant.
        overhead_scale: f64,
    },
    /// Charge a fixed number of virtual seconds per charge call
    /// (deterministic; for tests).
    Fixed {
        /// Seconds charged per call.
        per_call: f64,
    },
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so that a q=1 benchmark-function run performs on
        // the order of 100 cycles in 20 virtual minutes, as in Fig. 9b.
        CostModel::Measured { overhead_scale: 25.0 }
    }
}

/// Category labels for the time split (reported in Fig. 2 discussions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeCategory {
    /// Surrogate fitting.
    Fit,
    /// Acquisition process.
    Acquisition,
    /// Simulator evaluations.
    Simulation,
}

/// Virtual clock with per-category accounting.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    model: CostModel,
    now: f64,
    fit: f64,
    acquisition: f64,
    simulation: f64,
}

impl VirtualClock {
    /// Fresh clock at t = 0.
    pub fn new(model: CostModel) -> Self {
        VirtualClock { model, now: 0.0, fit: 0.0, acquisition: 0.0, simulation: 0.0 }
    }

    /// Current virtual time \[seconds\].
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Time spent per category `(fit, acquisition, simulation)` \[seconds\].
    pub fn split(&self) -> (f64, f64, f64) {
        (self.fit, self.acquisition, self.simulation)
    }

    fn add(&mut self, cat: TimeCategory, secs: f64) {
        debug_assert!(secs >= 0.0);
        self.now += secs;
        match cat {
            TimeCategory::Fit => self.fit += secs,
            TimeCategory::Acquisition => self.acquisition += secs,
            TimeCategory::Simulation => self.simulation += secs,
        }
    }

    /// Advance by a known amount of virtual time (simulations).
    pub fn charge_virtual(&mut self, cat: TimeCategory, secs: f64) {
        self.add(cat, secs);
    }

    /// Run `work`, charging its (scaled) measured duration.
    pub fn charge<T>(&mut self, cat: TimeCategory, work: impl FnOnce() -> T) -> T {
        match self.model {
            CostModel::Measured { overhead_scale } => {
                let t0 = Instant::now();
                let out = work();
                self.add(cat, t0.elapsed().as_secs_f64() * overhead_scale);
                out
            }
            CostModel::Fixed { per_call } => {
                let out = work();
                self.add(cat, per_call);
                out
            }
        }
    }

    /// Run `work` that *would* execute on `workers` parallel cores
    /// (BSP-EGO's parallel acquisition): the measured serial time is
    /// divided by the worker count before scaling — this models the
    /// paper's cluster, where the sub-acquisitions genuinely overlap.
    pub fn charge_parallel<T>(
        &mut self,
        cat: TimeCategory,
        workers: usize,
        work: impl FnOnce() -> T,
    ) -> T {
        let w = workers.max(1) as f64;
        match self.model {
            CostModel::Measured { overhead_scale } => {
                let t0 = Instant::now();
                let out = work();
                self.add(cat, t0.elapsed().as_secs_f64() * overhead_scale / w);
                out
            }
            CostModel::Fixed { per_call } => {
                let out = work();
                self.add(cat, per_call / w);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_is_deterministic() {
        let mut c = VirtualClock::new(CostModel::Fixed { per_call: 2.0 });
        let v = c.charge(TimeCategory::Fit, || 42);
        assert_eq!(v, 42);
        c.charge(TimeCategory::Acquisition, || ());
        c.charge_virtual(TimeCategory::Simulation, 10.0);
        assert_eq!(c.now(), 14.0);
        assert_eq!(c.split(), (2.0, 2.0, 10.0));
    }

    #[test]
    fn parallel_charge_divides_by_workers() {
        let mut c = VirtualClock::new(CostModel::Fixed { per_call: 8.0 });
        c.charge_parallel(TimeCategory::Acquisition, 4, || ());
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn measured_model_charges_positive_time() {
        let mut c = VirtualClock::new(CostModel::Measured { overhead_scale: 10.0 });
        c.charge(TimeCategory::Fit, || {
            // Busy work long enough to register on any timer.
            let mut s = 0.0f64;
            for i in 0..200_000 {
                s += (i as f64).sqrt();
            }
            assert!(s > 0.0);
        });
        assert!(c.now() > 0.0);
        assert_eq!(c.split().1, 0.0);
    }

    #[test]
    fn categories_accumulate_independently() {
        let mut c = VirtualClock::new(CostModel::Fixed { per_call: 1.0 });
        for _ in 0..3 {
            c.charge(TimeCategory::Fit, || ());
        }
        c.charge_virtual(TimeCategory::Simulation, 5.0);
        let (f, a, s) = c.split();
        assert_eq!((f, a, s), (3.0, 0.0, 5.0));
        assert_eq!(c.now(), 8.0);
    }
}
