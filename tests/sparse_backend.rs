//! Sparse-surrogate conformance suite.
//!
//! The inducing-point backend (DESIGN.md §12) must be a *refinement*
//! of the dense GP, not a different model: with m = n inducing points
//! the Nyström approximation is exact and the FITC posterior collapses
//! to the dense one, so means and variances must agree to numerical
//! noise. These tests pin that limit, the engine-level auto-switch
//! behaviour, and that a sparse run at n ≈ 2k completes within its
//! virtual-clock budget — the scaling claim the backend exists for.

use pbo::core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::core::engine::{AlgoConfig, SurrogateBackend};
use pbo::gp::kernel::{Kernel, KernelType};
use pbo::gp::{GaussianProcess, SparseGaussianProcess, Surrogate};
use pbo::linalg::Matrix;
use pbo::problems::SyntheticFn;
use proptest::prelude::*;

fn sparse_cfg(m: usize, switch_at: usize) -> AlgoConfig {
    AlgoConfig {
        surrogate: SurrogateBackend::Sparse { m, switch_at },
        ..AlgoConfig::test_profile()
    }
}

// ---------------------------------------------------------------------
// m = n exactness: SoR/FITC with every training point inducing is the
// dense GP, up to the jittered m×m factorization. Property-tested over
// random small problems, kernels and noise levels.
// ---------------------------------------------------------------------

fn build_pair(
    rows: &[Vec<f64>],
    y: &[f64],
    kind: KernelType,
    ls: f64,
    noise: f64,
) -> (GaussianProcess, SparseGaussianProcess) {
    let d = rows[0].len();
    let x = Matrix::from_rows(rows).unwrap();
    let mut kernel = Kernel::new(kind, d);
    kernel.lengthscales = vec![ls; d];
    let dense = GaussianProcess::new(x.clone(), y, kernel.clone(), noise).unwrap();
    let sparse = SparseGaussianProcess::new(x, y, kernel, noise, rows.len()).unwrap();
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn sparse_equals_dense_when_every_point_is_inducing(
        seed in 0u64..1000,
        n in 8usize..24,
        d in 1usize..4,
        ls in 0.2f64..1.0,
        noise in 1e-6f64..1e-3,
    ) {
        // Deterministic-from-seed Kronecker lattice: well-spread
        // distinct points, so the Gram matrix is well-conditioned at
        // this jitter scale.
        let alphas = [0.618033988749895f64, 0.754877666246693, 0.569840290998053];
        let off = seed as f64 * 0.1234567;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..d).map(|j| ((i + 1) as f64 * alphas[j] + off).fract()).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().map(|v| (v - 0.4).powi(2)).sum::<f64>())
            .collect();
        let kind = if seed % 2 == 0 { KernelType::Matern52 } else { KernelType::Rbf };
        let (dense, sparse) = build_pair(&rows, &y, kind, ls, noise);
        // The greedy selector may stop early when the Gram matrix is
        // numerically low-rank (residual below 1e-12·prior_var); the
        // approximation is exact-to-noise either way, which is what
        // the agreement assertions below pin.
        prop_assert!(sparse.m() >= 2 && sparse.m() <= n);

        let probes: Vec<Vec<f64>> = (0..12)
            .map(|i| (0..d).map(|j| ((i * d + j) as f64 * 0.391).cos() * 0.5 + 0.5).collect())
            .collect();
        for p in &probes {
            let (mu_d, var_d) = dense.predict(p);
            let (mu_s, var_s) = sparse.predict(p);
            let scale = 1.0 + mu_d.abs();
            prop_assert!(
                (mu_d - mu_s).abs() <= 1e-6 * scale,
                "mean mismatch at {p:?}: dense {mu_d} vs sparse {mu_s}"
            );
            prop_assert!(
                (var_d - var_s).abs() <= 1e-6 * (1.0 + var_d.abs()),
                "variance mismatch at {p:?}: dense {var_d} vs sparse {var_s}"
            );
        }
    }
}

#[test]
fn sparse_joint_posterior_matches_dense_at_m_equals_n() {
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|i| vec![((i as f64 * 0.537).sin() * 0.5 + 0.5).clamp(0.0, 1.0)])
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| (r[0] - 0.5).powi(2)).collect();
    let (dense, sparse) = build_pair(&rows, &y, KernelType::Matern52, 0.3, 1e-6);
    let pts =
        Matrix::from_rows(&[vec![0.12], vec![0.44], vec![0.61], vec![0.93]]).unwrap();
    let (mu_d, cov_d) = dense.posterior_joint(&pts).unwrap();
    let (mu_s, cov_s) = sparse.posterior_joint(&pts).unwrap();
    for (a, b) in mu_d.iter().zip(&mu_s) {
        assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()), "joint mean {a} vs {b}");
    }
    for (a, b) in cov_d.as_slice().iter().zip(cov_s.as_slice()) {
        assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()), "joint cov {a} vs {b}");
    }
}

#[test]
fn condition_on_matches_rebuild_at_m_equals_n_support() {
    // Fantasy conditioning keeps Z and hyperparameters frozen; with
    // m = n support the appended-data posterior must track the dense GP's
    // conditioned posterior closely away from the appended points.
    let rows: Vec<Vec<f64>> = (0..14)
        .map(|i| vec![((i as f64 * 0.473).sin() * 0.5 + 0.5).clamp(0.0, 1.0)])
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| (r[0] - 0.45).powi(2)).collect();
    let (dense, sparse) = build_pair(&rows, &y, KernelType::Rbf, 0.35, 1e-5);
    let xs_new = vec![vec![0.27], vec![0.72]];
    let ys_new = vec![0.031, 0.071];
    let dense2 = dense.condition_on(&xs_new, &ys_new).unwrap();
    let sparse2 = sparse.condition_on(&xs_new, &ys_new).unwrap();
    for p in [[0.1], [0.5], [0.88]] {
        let mu_d = dense2.predict_mean(&p);
        let mu_s = sparse2.predict_mean(&p);
        assert!(
            (mu_d - mu_s).abs() <= 1e-4 * (1.0 + mu_d.abs()),
            "conditioned mean at {p:?}: dense {mu_d} vs sparse {mu_s}"
        );
    }
}

// ---------------------------------------------------------------------
// Engine integration: auto-switch fires at the configured size, the
// dense path below the threshold is byte-identical to a Dense config,
// and a 2k-point sparse run completes inside its virtual-clock budget.
// ---------------------------------------------------------------------

#[test]
fn below_switch_threshold_sparse_config_is_bit_identical_to_dense() {
    let p = SyntheticFn::ackley(4);
    let budget = Budget::cycles(3, 2).with_initial_samples(10);
    // 10 + 6 points stays below switch_at = 64: the Sparse config must
    // never leave the dense path, hence identical traces bit for bit.
    let dense = run_algorithm_with(
        AlgorithmKind::KbQEgo,
        &p,
        &budget,
        AlgoConfig::test_profile(),
        17,
    );
    let sparse = run_algorithm_with(AlgorithmKind::KbQEgo, &p, &budget, sparse_cfg(16, 64), 17);
    let bits = |r: &pbo::core::record::RunRecord| {
        (
            r.y_min.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            r.best_x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(bits(&dense), bits(&sparse));
}

#[test]
fn above_switch_threshold_sparse_and_dense_runs_diverge() {
    // Complement of the test above: once the dataset crosses
    // `switch_at` the sparse posterior really is in charge, so the
    // trajectories must differ — guards against a switch that never
    // fires.
    let p = SyntheticFn::ackley(4);
    let budget = Budget::cycles(4, 2).with_initial_samples(20);
    let dense = run_algorithm_with(
        AlgorithmKind::KbQEgo,
        &p,
        &budget,
        AlgoConfig::test_profile(),
        23,
    );
    let sparse = run_algorithm_with(AlgorithmKind::KbQEgo, &p, &budget, sparse_cfg(12, 20), 23);
    assert_eq!(dense.n_simulations(), sparse.n_simulations());
    let a: Vec<u64> = dense.best_x.iter().map(|v| v.to_bits()).collect();
    let b: Vec<u64> = sparse.best_x.iter().map(|v| v.to_bits()).collect();
    assert_ne!(a, b, "sparse backend never engaged above switch_at");
}

#[test]
fn sparse_engine_smoke_at_two_thousand_points_finishes_in_budget() {
    // n starts at 2000 and grows by 8 per cycle; the sparse backend
    // (m = 64) keeps fit + acquisition tractable where the dense
    // O(n³) path would dominate the suite. The budget accounting is
    // on the virtual clock, so the run must report completed cycles
    // and a finite incumbent no worse than the DoE.
    let p = SyntheticFn::ackley(6);
    let budget = Budget::cycles(3, 8).with_initial_samples(2000);
    let r = run_algorithm_with(
        AlgorithmKind::KbQEgo,
        &p,
        &budget,
        sparse_cfg(64, 256),
        41,
    );
    assert_eq!(r.n_cycles(), 3);
    assert_eq!(r.n_simulations(), 2000 + 3 * 8);
    assert!(r.best_y().is_finite());
    let doe_best: f64 = r.y_min[..2000].iter().copied().fold(f64::INFINITY, f64::min);
    assert!(r.best_y() <= doe_best);
    assert!(r.final_clock.is_finite() && r.final_clock > 0.0);
}

#[test]
fn surrogate_model_reports_backend_after_switch() {
    use pbo::core::engine::Engine;
    let p = SyntheticFn::ackley(3);
    let budget = Budget::cycles(1, 2).with_initial_samples(30);
    let mut e = Engine::builder(&p)
        .budget(budget)
        .config(sparse_cfg(8, 16))
        .seed(7)
        .algorithm("probe")
        .build()
        .unwrap();
    e.fit_model();
    let model = e.model();
    assert_eq!(model.backend_name(), "sparse");
    assert_eq!(model.as_sparse().unwrap().m(), 8);
    // support_x is the inducing set, not the full training set.
    assert_eq!(model.support_x().rows(), 8);
    assert_eq!(model.n(), 30);
}
