#![allow(clippy::needless_range_loop)]

//! # pbo-acq — acquisition functions and their optimization
//!
//! The "acquisition process" layer of the paper: given a fitted GP and
//! the incumbent value, score candidate points and find the maximizer.
//!
//! - [`single`]: single-point criteria — Expected Improvement (EI),
//!   Probability of Improvement (PI) and the confidence-bound criterion
//!   (UCB in the paper's maximization convention) — with **analytic
//!   gradients** through the GP posterior, and a multistart L-BFGS
//!   maximizer mirroring BoTorch's `optimize_acqf`,
//! - [`mc`]: Monte-Carlo q-EI over a *joint* batch of `q` points using
//!   the reparameterization trick with fixed quasi-MC base samples
//!   (sample-average approximation), including the full analytic
//!   gradient through the posterior **Cholesky factor** via a
//!   reverse-mode pullback ([`pullback`]) — the piece BoTorch gets from
//!   autodiff and we derive by hand,
//! - [`pullback`]: the Cholesky reverse-mode differentiation rule.
//!
//! Convention: the whole workspace **minimizes** the objective
//! internally (the UPHES profit is negated by the problem layer), so
//! "improvement" means dropping below the incumbent `f_best`.

pub mod mc;
pub mod pullback;
pub mod single;

pub use mc::{optimize_qei, QExpectedImprovement};
pub use single::{
    optimize_single, ExpectedImprovement, ProbabilityOfImprovement, UpperConfidenceBound,
};

use pbo_gp::{PredictWorkspace, Surrogate};
use pbo_linalg::Matrix;

/// A single-point acquisition criterion (to be **maximized**).
///
/// Criteria see the model only through the backend-agnostic
/// [`Surrogate`] trait, so the same EI/PI/UCB code scores dense and
/// sparse (inducing-point) posteriors alike. Call sites holding a
/// concrete `&GaussianProcess` coerce to `&dyn Surrogate` unchanged.
pub trait Acquisition: Sync {
    /// Acquisition value at `x`.
    fn value(&self, gp: &dyn Surrogate, x: &[f64]) -> f64;
    /// Value and gradient at `x`.
    fn value_grad(&self, gp: &dyn Surrogate, x: &[f64]) -> (f64, Vec<f64>);
    /// Short name for logs and reports.
    fn name(&self) -> &'static str;

    /// [`value`](Self::value) through a reusable workspace. The analytic
    /// criteria override this with the allocation-free posterior path;
    /// the default simply forwards.
    fn value_with(&self, gp: &dyn Surrogate, x: &[f64], _ws: &mut AcqWorkspace) -> f64 {
        self.value(gp, x)
    }

    /// [`value_grad`](Self::value_grad) into caller-owned storage, using
    /// the workspace for the posterior intermediates. `grad` is cleared
    /// and refilled; the analytic criteria perform zero per-call heap
    /// allocations on the posterior path here.
    fn value_grad_into(
        &self,
        gp: &dyn Surrogate,
        x: &[f64],
        _ws: &mut AcqWorkspace,
        grad: &mut Vec<f64>,
    ) -> f64 {
        let (v, g) = self.value_grad(gp, x);
        grad.clear();
        grad.extend_from_slice(&g);
        v
    }

    /// Score every row of `pts` in one call. The analytic criteria
    /// override this with one batched GP prediction
    /// ([`Surrogate::predict_many`]) — the raw-candidate scoring
    /// path of the multistart — matching [`value`](Self::value) to
    /// batched-summation rounding (a few ulps).
    fn value_many(&self, gp: &dyn Surrogate, pts: &Matrix, out: &mut [f64]) {
        debug_assert_eq!(out.len(), pts.rows());
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.value(gp, pts.row(i));
        }
    }
}

/// Reusable scratch for the allocation-free acquisition hot path: the
/// GP-side [`PredictWorkspace`] plus the `d`-sized gradient buffers of
/// [`posterior_with_grad_ws`]. Keep one per thread (the multistart
/// objectives hold one in a `thread_local!`).
#[derive(Default)]
pub struct AcqWorkspace {
    /// GP-side buffers (cross-covariance row, triangular solves, radial
    /// gradient factors).
    pub pred: PredictWorkspace,
    pg: PosteriorGrad,
    dvar: Vec<f64>,
    /// Per-dimension lengthscale factors, refreshed per call (the same
    /// workspace serves different GPs, e.g. across fantasy refits):
    /// `ℓ_j²` on the bit-exact small-system path, `1/ℓ_j²` on the
    /// reassociating large-system path.
    l2: Vec<f64>,
    /// Candidate-block matrix recycled across batched raw-sample
    /// scoring calls (the multistart scores thousands of Sobol
    /// candidates per cycle; this keeps that path allocation-free).
    pub(crate) pts: Matrix,
}

impl AcqWorkspace {
    /// Empty workspace; buffers are sized lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// The posterior-with-gradient filled by the last
    /// [`posterior_with_grad_ws`] call.
    pub fn posterior(&self) -> &PosteriorGrad {
        &self.pg
    }
}

/// Posterior mean/σ and their spatial gradients at a query point —
/// the shared building block of all analytic acquisition gradients.
///
/// Returned values are on the raw target scale. σ is floored at a tiny
/// positive value so downstream divisions stay finite; the gradient of
/// the floor region is zero.
#[derive(Debug, Clone, Default)]
pub struct PosteriorGrad {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior (latent) standard deviation.
    pub sigma: f64,
    /// `∂mean/∂x`.
    pub dmean: Vec<f64>,
    /// `∂σ/∂x`.
    pub dsigma: Vec<f64>,
}

/// Compute [`PosteriorGrad`] at `x` in `O(n² + n d)` for the dense
/// backend (`O(m² + m d)` sparse, with `n` replaced by the number of
/// support points). The posterior operator is applied through
/// [`Surrogate::cov_solve_vec`], which the dense backend routes through
/// its Cholesky `solve` bit-identically.
pub fn posterior_with_grad(gp: &dyn Surrogate, x: &[f64]) -> PosteriorGrad {
    let d = gp.dim();
    debug_assert_eq!(x.len(), d);
    let kernel = gp.kernel();
    let train = gp.support_x();
    let n = train.rows();
    let (shift, scale) = gp.standardization();

    let k = kernel.cross_vec(train, x);
    let c = gp.cov_solve_vec(&k).expect("posterior solve");
    let alpha = gp.weights();

    let mean_std = gp.trend_std() + pbo_linalg::vec_ops::dot(&k, alpha);
    let var_std =
        (kernel.prior_var() - pbo_linalg::vec_ops::dot(&k, &c)).max(1e-14);
    let sigma_std = var_std.sqrt();

    let mut dmean = vec![0.0; d];
    let mut dvar = vec![0.0; d];
    let mut buf = vec![0.0; d];
    for i in 0..n {
        kernel.grad_wrt_query(x, train.row(i), &mut buf);
        let (ai, ci) = (alpha[i], c[i]);
        for j in 0..d {
            dmean[j] += ai * buf[j];
            dvar[j] -= 2.0 * ci * buf[j];
        }
    }
    let dsigma: Vec<f64> = if var_std <= 1e-14 {
        vec![0.0; d]
    } else {
        dvar.iter().map(|v| scale * v / (2.0 * sigma_std)).collect()
    };
    PosteriorGrad {
        mean: mean_std * scale + shift,
        sigma: sigma_std * scale,
        dmean: dmean.into_iter().map(|v| v * scale).collect(),
        dsigma,
    }
}

/// [`posterior_with_grad`] through a reusable [`AcqWorkspace`]: the
/// same arithmetic in the same order — shared kernel transcendentals,
/// hoisted squared lengthscales, a fused gradient accumulation — with
/// zero heap allocations per call once the workspace has warmed up.
/// Results are bit-identical to the allocating reference (covered by a
/// test) for training sets up to the `BIT_EXACT_MAX_N` threshold, which
/// keeps seeded BO trajectories unchanged; beyond it the path
/// reassociates for speed (reciprocal-lengthscale forms, unrolled
/// backward substitution) and agrees to summation-order ulps instead
/// (also covered by a test). Either way the output is bitwise
/// deterministic for any thread count (every thread runs this same
/// code).
///
/// The cross-covariance row, both triangular solves, and the radial
/// gradient factors are produced in one fused kernel pass by
/// [`Surrogate::posterior_parts_with`]; the per-support-point
/// gradient then reuses those factors instead of recomputing distances.
/// The result lands in `ws.posterior()`. For the sparse backend the
/// loop runs over the `m` inducing points instead of the `n` training
/// points (the reassociation threshold keys on the support size).
pub fn posterior_with_grad_ws(gp: &dyn Surrogate, x: &[f64], ws: &mut AcqWorkspace) {
    let d = gp.dim();
    debug_assert_eq!(x.len(), d);
    let kernel = gp.kernel();
    let train = gp.support_x();
    let n = train.rows();
    let (shift, scale) = gp.standardization();

    let (mean_std, var_std) = gp.posterior_parts_with(x, &mut ws.pred);
    let sigma_std = var_std.sqrt();
    let alpha = gp.weights();

    ws.pg.dmean.clear();
    ws.pg.dmean.resize(d, 0.0);
    ws.dvar.clear();
    ws.dvar.resize(d, 0.0);
    let reassociate = n > pbo_linalg::cholesky::BIT_EXACT_MAX_N;
    if reassociate {
        kernel.inv_sq_lengthscales_into(&mut ws.l2);
    } else {
        kernel.sq_lengthscales_into(&mut ws.l2);
    }
    {
        let c = ws.pred.solved();
        let gf = ws.pred.grad_factors();
        for i in 0..n {
            let row = train.row(i);
            let (ai, ci2) = (alpha[i], 2.0 * c[i]);
            let gfi = gf[i];
            if reassociate {
                // Large-system path: division-free ∂k_i/∂x_j, one
                // rounding ulp off the reference per coordinate.
                for j in 0..d {
                    let dk = -gfi * (x[j] - row[j]) * ws.l2[j];
                    ws.pg.dmean[j] += ai * dk;
                    ws.dvar[j] -= ci2 * dk;
                }
            } else {
                // ∂k_i/∂x_j — the same ops in the same order as
                // `grad_wrt_query`, fused into the accumulation so the
                // staging buffer (and its extra passes) disappears while
                // every partial sum keeps its reference bits.
                for j in 0..d {
                    let dk = -gfi * (x[j] - row[j]) / ws.l2[j];
                    ws.pg.dmean[j] += ai * dk;
                    ws.dvar[j] -= ci2 * dk;
                }
            }
        }
    }
    ws.pg.dsigma.clear();
    if var_std <= 1e-14 {
        ws.pg.dsigma.resize(d, 0.0);
    } else {
        ws.pg
            .dsigma
            .extend(ws.dvar.iter().map(|v| scale * v / (2.0 * sigma_std)));
    }
    ws.pg.mean = mean_std * scale + shift;
    ws.pg.sigma = sigma_std * scale;
    for v in ws.pg.dmean.iter_mut() {
        *v *= scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_gp::kernel::{Kernel, KernelType};
    use pbo_gp::GaussianProcess;
    use pbo_linalg::Matrix;

    fn toy_gp() -> GaussianProcess {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 / 7.0).collect();
        let x = Matrix::from_rows(&xs.iter().map(|&v| vec![v, v * v]).collect::<Vec<_>>())
            .unwrap();
        let y: Vec<f64> = xs.iter().map(|&v| (5.0 * v).sin() + 2.0 * v).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 2);
        kernel.lengthscales = vec![0.3, 0.5];
        GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
    }

    #[test]
    fn posterior_grad_matches_fd() {
        let gp = toy_gp();
        for p in [[0.31, 0.22], [0.77, 0.5], [0.05, 0.9]] {
            let pg = posterior_with_grad(&gp, &p);
            let fd_mean = pbo_opt::fd_gradient(|x| gp.predict(x).0, &p, 1e-6);
            let fd_sigma = pbo_opt::fd_gradient(|x| gp.predict(x).1.sqrt(), &p, 1e-6);
            for j in 0..2 {
                assert!(
                    (pg.dmean[j] - fd_mean[j]).abs() < 1e-5 * (1.0 + fd_mean[j].abs()),
                    "dmean[{j}]: {} vs {}",
                    pg.dmean[j],
                    fd_mean[j]
                );
                assert!(
                    (pg.dsigma[j] - fd_sigma[j]).abs() < 1e-4 * (1.0 + fd_sigma[j].abs()),
                    "dsigma[{j}]: {} vs {}",
                    pg.dsigma[j],
                    fd_sigma[j]
                );
            }
            // Values agree with predict().
            let (m, v) = gp.predict(&p);
            assert!((pg.mean - m).abs() < 1e-10);
            assert!((pg.sigma - v.sqrt()).abs() < 1e-10);
        }
    }

    #[test]
    fn workspace_posterior_is_bit_identical_to_reference() {
        // The workspace path keeps every floating-point op of the
        // allocating reference in the same order (at this size the
        // backward solve stays on its sequential branch), so the match
        // must be exact — seeded BO trajectories depend on the polish
        // landing on the same local optimum bit-for-bit.
        let gp = toy_gp();
        let mut ws = AcqWorkspace::new();
        for p in [[0.31, 0.22], [0.77, 0.5], [0.05, 0.9], [0.5, 0.25]] {
            let reference = posterior_with_grad(&gp, &p);
            posterior_with_grad_ws(&gp, &p, &mut ws);
            let pg = ws.posterior();
            assert!(pg.mean.to_bits() == reference.mean.to_bits(), "mean: {} vs {}", pg.mean, reference.mean);
            assert!(pg.sigma.to_bits() == reference.sigma.to_bits(), "σ: {} vs {}", pg.sigma, reference.sigma);
            for j in 0..2 {
                assert!(
                    pg.dmean[j].to_bits() == reference.dmean[j].to_bits(),
                    "dmean[{j}]: {} vs {}",
                    pg.dmean[j],
                    reference.dmean[j]
                );
                assert!(
                    pg.dsigma[j].to_bits() == reference.dsigma[j].to_bits(),
                    "dsigma[{j}]: {} vs {}",
                    pg.dsigma[j],
                    reference.dsigma[j]
                );
            }
        }
    }

    #[test]
    fn workspace_posterior_matches_reference_above_reassoc_threshold() {
        // Past BIT_EXACT_MAX_N training points the workspace path trades
        // bit-exactness for reassociated arithmetic (reciprocal
        // lengthscales, unrolled backward solve), so agreement drops to
        // summation-order ulps — still far below the finite-difference
        // tolerances of the other gradient checks.
        let n = 160;
        assert!(n > pbo_linalg::cholesky::BIT_EXACT_MAX_N);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let v = i as f64 / (n - 1) as f64;
                vec![v, (3.7 * v + 0.13).fract()]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| (5.0 * r[0]).sin() + 2.0 * r[1]).collect();
        let mut kernel = Kernel::new(KernelType::Matern52, 2);
        kernel.lengthscales = vec![0.3, 0.5];
        let gp = GaussianProcess::new(x, &y, kernel, 1e-6).unwrap();

        let close = |a: f64, b: f64| (a - b).abs() <= 1e-11 * (1.0 + a.abs().max(b.abs()));
        let mut ws = AcqWorkspace::new();
        for p in [[0.31, 0.22], [0.77, 0.5], [0.05, 0.9]] {
            let reference = posterior_with_grad(&gp, &p);
            posterior_with_grad_ws(&gp, &p, &mut ws);
            let pg = ws.posterior();
            assert!(close(pg.mean, reference.mean), "mean: {} vs {}", pg.mean, reference.mean);
            assert!(close(pg.sigma, reference.sigma), "σ: {} vs {}", pg.sigma, reference.sigma);
            for j in 0..2 {
                assert!(
                    close(pg.dmean[j], reference.dmean[j]),
                    "dmean[{j}]: {} vs {}",
                    pg.dmean[j],
                    reference.dmean[j]
                );
                assert!(
                    close(pg.dsigma[j], reference.dsigma[j]),
                    "dsigma[{j}]: {} vs {}",
                    pg.dsigma[j],
                    reference.dsigma[j]
                );
            }
        }
    }
}
