//! Run records: everything the bench harness needs to rebuild the
//! paper's tables and figures from a set of optimization runs.

use serde::{Deserialize, Serialize};

/// One optimization cycle's bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Cycle index (0-based; the initial design is cycle-less).
    pub cycle: usize,
    /// Virtual seconds spent fitting the surrogate this cycle.
    pub fit_time: f64,
    /// Virtual seconds spent in the acquisition process this cycle.
    pub acq_time: f64,
    /// Virtual seconds spent simulating this cycle's batch.
    pub sim_time: f64,
    /// Batch size actually evaluated.
    pub n_evals: usize,
    /// Best objective (minimization orientation) after this cycle.
    pub best_y_min: f64,
    /// Virtual clock reading at the end of the cycle.
    pub clock: f64,
}

/// A complete optimization run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Algorithm name.
    pub algorithm: String,
    /// Problem name.
    pub problem: String,
    /// Whether the problem is natively a maximization.
    pub maximize: bool,
    /// Batch size q.
    pub batch_size: usize,
    /// Run seed.
    pub seed: u64,
    /// Size of the initial design.
    pub doe_size: usize,
    /// All observed objective values (minimization orientation), in
    /// evaluation order (DoE first).
    pub y_min: Vec<f64>,
    /// Location of the best observation, in the problem's native
    /// coordinates.
    pub best_x: Vec<f64>,
    /// Per-cycle records.
    pub cycles: Vec<CycleRecord>,
    /// Final virtual clock \[seconds\].
    pub final_clock: f64,
}

impl RunRecord {
    /// Total simulations performed (DoE included).
    pub fn n_simulations(&self) -> usize {
        self.y_min.len()
    }

    /// Simulations performed after the initial design.
    pub fn n_optimization_simulations(&self) -> usize {
        self.y_min.len().saturating_sub(self.doe_size)
    }

    /// Number of optimization cycles completed.
    pub fn n_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Best objective value in the problem's native orientation.
    pub fn best_y(&self) -> f64 {
        let best_min = self.y_min.iter().copied().fold(f64::INFINITY, f64::min);
        if self.maximize {
            -best_min
        } else {
            best_min
        }
    }

    /// Best-so-far trace per evaluation, native orientation.
    pub fn best_trace(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.y_min
            .iter()
            .map(|&v| {
                best = best.min(v);
                if self.maximize {
                    -best
                } else {
                    best
                }
            })
            .collect()
    }

    /// Aggregate time split `(fit, acq, sim)` over all cycles \[virtual s\].
    pub fn time_split(&self) -> (f64, f64, f64) {
        let mut f = 0.0;
        let mut a = 0.0;
        let mut s = 0.0;
        for c in &self.cycles {
            f += c.fit_time;
            a += c.acq_time;
            s += c.sim_time;
        }
        (f, a, s)
    }
}

/// Point-wise mean/sd of best-so-far traces truncated to the shortest
/// run — exactly how the paper draws Figs. 3–7 ("curves only display
/// the results for which all data are available").
pub fn mean_sd_trace(records: &[RunRecord]) -> (Vec<f64>, Vec<f64>) {
    let traces: Vec<Vec<f64>> = records.iter().map(|r| r.best_trace()).collect();
    let n = traces.iter().map(|t| t.len()).min().unwrap_or(0);
    let mut mean = Vec::with_capacity(n);
    let mut sd = Vec::with_capacity(n);
    for i in 0..n {
        let col: Vec<f64> = traces.iter().map(|t| t[i]).collect();
        mean.push(pbo_linalg::vec_ops::mean(&col));
        sd.push(pbo_linalg::vec_ops::variance(&col).sqrt());
    }
    (mean, sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(maximize: bool, y: Vec<f64>) -> RunRecord {
        RunRecord {
            algorithm: "test".into(),
            problem: "p".into(),
            maximize,
            batch_size: 2,
            seed: 0,
            doe_size: 2,
            best_x: vec![0.0],
            y_min: y,
            cycles: vec![
                CycleRecord {
                    cycle: 0,
                    fit_time: 1.0,
                    acq_time: 2.0,
                    sim_time: 10.0,
                    n_evals: 2,
                    best_y_min: 0.0,
                    clock: 13.0,
                },
            ],
            final_clock: 13.0,
        }
    }

    #[test]
    fn best_and_trace_minimization() {
        let r = rec(false, vec![5.0, 3.0, 4.0, 1.0]);
        assert_eq!(r.best_y(), 1.0);
        assert_eq!(r.best_trace(), vec![5.0, 3.0, 3.0, 1.0]);
        assert_eq!(r.n_simulations(), 4);
        assert_eq!(r.n_optimization_simulations(), 2);
    }

    #[test]
    fn best_and_trace_maximization() {
        // Stored minimized: y_min = -profit.
        let r = rec(true, vec![-5.0, -3.0, -7.0]);
        assert_eq!(r.best_y(), 7.0);
        assert_eq!(r.best_trace(), vec![5.0, 5.0, 7.0]);
    }

    #[test]
    fn mean_sd_trace_truncates_to_shortest() {
        let a = rec(false, vec![4.0, 2.0, 1.0]);
        let b = rec(false, vec![6.0, 4.0]);
        let (mean, sd) = mean_sd_trace(&[a, b]);
        assert_eq!(mean.len(), 2);
        assert_eq!(mean[0], 5.0);
        assert_eq!(mean[1], 3.0);
        assert!(sd[0] > 0.0);
    }

    #[test]
    fn time_split_sums_cycles() {
        let r = rec(false, vec![1.0, 2.0]);
        assert_eq!(r.time_split(), (1.0, 2.0, 10.0));
    }
}
