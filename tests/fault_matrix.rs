//! Fault matrix: every batch algorithm must survive an unreliable
//! evaluation pool.
//!
//! Each algorithm runs a short UPHES campaign against a
//! [`FaultyProblem`] injecting a 10% mix of worker panics, NaN/Inf
//! results and straggler delays. The run must complete without
//! aborting, end with a finite incumbent, keep the best-so-far trace
//! clean of non-finite values, and its engine-side fault counters must
//! reconcile exactly with what the injector says it injected.

use pbo::core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo::core::budget::Budget;
use pbo::core::engine::AlgoConfig;
use pbo::core::record::RunRecord;
use pbo::problems::fault::{silence_injected_panics, FaultPlan, FaultyProblem, InjectionLog};
use pbo::problems::UphesProblem;

const ALGOS: [AlgorithmKind; 6] = [
    AlgorithmKind::KbQEgo,
    AlgorithmKind::MicQEgo,
    AlgorithmKind::McQEgo,
    AlgorithmKind::BspEgo,
    AlgorithmKind::Turbo,
    AlgorithmKind::ThompsonSampling,
];

fn faulty_run(algo: AlgorithmKind, rate: f64, seed: u64) -> (RunRecord, InjectionLog) {
    let problem = UphesProblem::maizeret(41);
    let faulty = FaultyProblem::new(&problem, FaultPlan::uniform(seed ^ 0xBAD, rate));
    let budget = Budget::cycles(4, 2).with_initial_samples(10);
    let r = run_algorithm_with(algo, &faulty, &budget, AlgoConfig::test_profile(), seed);
    let log = faulty.injection_log();
    (r, log)
}

#[test]
fn all_algorithms_survive_ten_percent_fault_rate() {
    silence_injected_panics();
    let mut any_faults = false;
    for algo in ALGOS {
        let (r, log) = faulty_run(algo, 0.10, 7);
        // Completed, finite incumbent, clean trace.
        assert!(
            r.best_y().is_finite(),
            "{algo:?}: non-finite incumbent {}",
            r.best_y()
        );
        assert!(
            r.y_min.iter().all(|v| v.is_finite()),
            "{algo:?}: non-finite value in best-so-far trace"
        );
        for c in &r.cycles {
            assert!(c.best_y_min.is_finite(), "{algo:?}: non-finite cycle incumbent");
            assert!(c.sim_time.is_finite() && c.sim_time > 0.0);
        }

        // Counters reconcile exactly with the injected plan.
        let t = r.fault_totals();
        assert_eq!(t.panics, log.panics, "{algo:?}: panic count mismatch");
        assert_eq!(t.nan_quarantined, log.nans, "{algo:?}: NaN count mismatch");
        assert_eq!(t.inf_quarantined, log.infs, "{algo:?}: Inf count mismatch");
        assert_eq!(t.stragglers, log.straggles, "{algo:?}: straggler count mismatch");
        // Default policy has no timeout, so every failed attempt was
        // either retried or ended in an imputed/dropped point.
        assert_eq!(t.timeouts, 0, "{algo:?}: unexpected timeout");
        assert_eq!(
            t.failed_attempts(),
            t.retries + t.imputed + t.dropped,
            "{algo:?}: failed attempts do not reconcile with retries + imputations"
        );
        // Straggler delays are charged to the virtual clock as lost
        // time (plus any retry backoff), never discarded.
        if log.straggles > 0 || t.failed_attempts() > 0 {
            assert!(
                t.virtual_secs_lost > 0.0,
                "{algo:?}: faults injected but no virtual time lost"
            );
        }
        any_faults |= log.total() > 0;
    }
    // With a 10% rate over 6 × (10 DoE + 8 optimization) attempts the
    // matrix would be vacuous if nothing was ever injected.
    assert!(any_faults, "fault plan injected nothing across the whole matrix");
}

#[test]
fn heavy_fault_rate_still_terminates_with_finite_incumbent() {
    silence_injected_panics();
    // 40% fault rate: retries are exhausted regularly, so imputation
    // and dropping must both keep the run alive.
    let (r, log) = faulty_run(AlgorithmKind::MicQEgo, 0.40, 3);
    assert!(r.best_y().is_finite());
    assert!(log.total() > 0);
    let t = r.fault_totals();
    assert_eq!(t.failed_attempts(), t.retries + t.imputed + t.dropped);
}

#[test]
fn fault_counters_are_zero_on_clean_runs() {
    let problem = UphesProblem::maizeret(41);
    let budget = Budget::cycles(3, 2).with_initial_samples(8);
    let r = run_algorithm_with(
        AlgorithmKind::MicQEgo,
        &problem,
        &budget,
        AlgoConfig::test_profile(),
        5,
    );
    assert!(!r.fault_totals().any(), "clean run reported faults");
}
