#![allow(clippy::needless_range_loop)]

//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <artifact> [--profile fast|paper|smoke] [--runs N]
//!                  [--batches 1,2,4] [--minutes M] [--out DIR]
//!                  [--jobs N] [--resume] [--trace]
//!
//! artifacts: table1 table2 table3 table4 table5 table6 table7
//!            fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!            baseline calibrate all
//! ```
//!
//! Replication grids run through `pbo_bench::orchestrate`: `--jobs N`
//! workers, one checkpoint per completed run under `<out>/checkpoints`,
//! and `--resume` to continue an interrupted campaign. Artifacts are
//! byte-identical for any `--jobs` value and any interruption point.

use pbo_bench::cli::{self, Opts};
use pbo_bench::grid::{run_seed, ProblemSpec, UPHES_DAY_SEED};
use pbo_bench::orchestrate::{execute_grid, GridPlan, GridRecords, OrchestratorConfig};
use pbo_bench::profiles::Profile;
use pbo_bench::report;
use pbo_core::algorithms::{run_algorithm_with, AlgorithmKind};
use pbo_core::budget::Stopping;
use pbo_core::observe::metrics::MetricsRegistry;
use pbo_core::record::RunRecord;
use pbo_problems::Problem;
use std::path::Path;

fn algo_names(set: &[AlgorithmKind]) -> Vec<&'static str> {
    set.iter().map(|a| a.name()).collect()
}

/// Write a CSV or exit with a clean error (no panicking `.expect`).
fn save_csv(path: &Path, header: &str, rows: &[Vec<f64>]) {
    if let Err(e) = report::write_csv(path, header, rows) {
        eprintln!("repro: failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Run the full (algorithm × batch) grid for one problem through the
/// orchestrator, reusing the same seeds across algorithms.
fn run_grid(
    spec: ProblemSpec,
    opts: &Opts,
) -> (Vec<usize>, Vec<AlgorithmKind>, GridRecords) {
    let batches = opts.batches.clone().unwrap_or_else(|| opts.profile.batch_sizes());
    let algos = AlgorithmKind::paper_set().to_vec();
    let runs = opts.runs.unwrap_or_else(|| opts.profile.runs());
    let plan = GridPlan {
        problem: spec,
        algos: algos.clone(),
        batches: batches.clone(),
        runs,
        profile: opts.profile,
        minutes: opts.minutes,
    };
    let cfg = OrchestratorConfig {
        jobs: opts.jobs,
        resume: opts.resume,
        dir: opts.out.join("checkpoints"),
        trace: opts.trace,
    };
    let metrics = MetricsRegistry::new();
    let outcome = execute_grid(&plan, &cfg, Some(&metrics)).unwrap_or_else(|e| {
        eprintln!("repro: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[{}] grid complete: {} runs executed, {} resumed (jobs = {})",
        spec.name(),
        outcome.executed,
        outcome.resumed,
        opts.jobs
    );
    // Deterministic per-cell summaries from the folded records.
    for &q in &batches {
        for &algo in &algos {
            let recs = &outcome.records[&(algo, q)];
            let mean_cycles: f64 =
                recs.iter().map(|r| r.n_cycles() as f64).sum::<f64>() / recs.len() as f64;
            eprintln!(
                "[{}] q={q} {}: {} runs, {:.0} cycles avg",
                spec.name(),
                algo.name(),
                recs.len(),
                mean_cycles
            );
            if let Some(line) = report::fault_summary(recs) {
                eprintln!("[{}] q={q} {}: {line}", spec.name(), algo.name());
            }
        }
    }
    (batches, algos, outcome.records)
}

fn benchmark_table(spec: ProblemSpec, title: &str, opts: &Opts) {
    let (batches, algos, map) = run_grid(spec, opts);
    let cells: Vec<Vec<pbo_core::stats::Summary>> = batches
        .iter()
        .map(|&q| algos.iter().map(|&a| report::summarize_final(&map[&(a, q)])).collect())
        .collect();
    let names = algo_names(&algos);
    println!("{}", report::format_benchmark_table(title, &batches, &names, &cells));
    let rows = report::benchmark_csv_rows(&batches, &cells);
    save_csv(
        &opts.out.join(format!("{}_final.csv", spec.name())),
        "q,algo_index,mean,sd,min,max",
        &rows,
    );
    write_fig2_series(spec, &batches, &algos, &map, opts);
}

/// Per-problem evaluation counts (Fig. 2a–c share this with Fig. 9a).
fn write_fig2_series(
    spec: ProblemSpec,
    batches: &[usize],
    algos: &[AlgorithmKind],
    map: &GridRecords,
    opts: &Opts,
) {
    println!("## evaluations in budget ({})", spec.name());
    println!("{:>8} {:>12} {:>14} {:>10}", "q", "algorithm", "sims(mean)", "sd");
    let mut rows = Vec::new();
    for (ai, &a) in algos.iter().enumerate() {
        let per_q: Vec<Vec<RunRecord>> = batches.iter().map(|&q| map[&(a, q)].clone()).collect();
        for (qi, (mean, sd)) in report::evals_by_batch(&per_q).into_iter().enumerate() {
            println!("{:>8} {:>12} {:>14.1} {:>10.1}", batches[qi], a.name(), mean, sd);
            rows.push(vec![batches[qi] as f64, ai as f64, mean, sd]);
        }
    }
    save_csv(
        &opts.out.join(format!("{}_evals_by_batch.csv", spec.name())),
        "q,algo_index,sims_mean,sims_sd",
        &rows,
    );
}

fn uphes_artifacts(opts: &Opts, want: &str) {
    let (batches, algos, map) = run_grid(ProblemSpec::Uphes, opts);
    let names = algo_names(&algos);

    if want == "table7" || want == "all" {
        let cells: Vec<Vec<pbo_core::stats::Summary>> = batches
            .iter()
            .map(|&q| algos.iter().map(|&a| report::summarize_final(&map[&(a, q)])).collect())
            .collect();
        println!("{}", report::format_table7(&batches, &names, &cells));
        let mut rows = Vec::new();
        for (qi, &q) in batches.iter().enumerate() {
            for (ai, _) in algos.iter().enumerate() {
                let s = &cells[qi][ai];
                rows.push(vec![q as f64, ai as f64, s.min, s.mean, s.max, s.sd]);
            }
        }
        save_csv(&opts.out.join("table7_uphes.csv"), "q,algo_index,min,mean,max,sd", &rows);
    }

    // Figs. 3–7: convergence traces for q = 1, 2, 4, 8, 16.
    let fig_for_q = |q: usize| match q {
        1 => "fig3",
        2 => "fig4",
        4 => "fig5",
        8 => "fig6",
        16 => "fig7",
        _ => "figX",
    };
    for &q in &batches {
        let fig = fig_for_q(q);
        if want == fig || want == "all" {
            println!("## {fig}: UPHES convergence, q = {q} (profit vs #sims)");
            let mut rows: Vec<Vec<f64>> = Vec::new();
            for (ai, &a) in algos.iter().enumerate() {
                let (mean, sd) = report::convergence_trace(&map[&(a, q)]);
                println!(
                    "{:>12}: start {:>8.0} -> end {:>8.0} (±{:.0}) over {} sims",
                    a.name(),
                    mean.first().copied().unwrap_or(f64::NAN),
                    mean.last().copied().unwrap_or(f64::NAN),
                    sd.last().copied().unwrap_or(f64::NAN),
                    mean.len()
                );
                for (i, (m, s)) in mean.iter().zip(&sd).enumerate() {
                    rows.push(vec![ai as f64, i as f64, *m, *s]);
                }
            }
            save_csv(
                &opts.out.join(format!("{fig}_uphes_q{q}_trace.csv")),
                "algo_index,eval,profit_mean,profit_sd",
                &rows,
            );
        }
    }

    if want == "fig8" || want == "all" {
        println!("## fig8: pairwise Welch t-test p-values (UPHES final profits)");
        for &q in &batches {
            let finals: Vec<Vec<f64>> =
                algos.iter().map(|&a| report::final_values(&map[&(a, q)])).collect();
            let p = report::pairwise_p_values(&finals);
            println!("q = {q}");
            println!("{}", report::format_p_matrix(&names, &p));
            let mut rows = Vec::new();
            for i in 0..p.len() {
                for j in 0..p.len() {
                    rows.push(vec![q as f64, i as f64, j as f64, p[i][j]]);
                }
            }
            save_csv(&opts.out.join(format!("fig8_pvalues_q{q}.csv")), "q,algo_i,algo_j,p", &rows);
        }
    }

    if want == "fig9" || want == "all" {
        println!("## fig9: scalability (UPHES)");
        println!("{:>8} {:>12} {:>12} {:>12}", "q", "algorithm", "sims", "cycles");
        let mut rows = Vec::new();
        for (ai, &a) in algos.iter().enumerate() {
            let per_q: Vec<Vec<RunRecord>> =
                batches.iter().map(|&q| map[&(a, q)].clone()).collect();
            let sims = report::evals_by_batch(&per_q);
            let cycles = report::cycles_by_batch(&per_q);
            for (qi, &q) in batches.iter().enumerate() {
                println!(
                    "{:>8} {:>12} {:>12.1} {:>12.1}",
                    q,
                    a.name(),
                    sims[qi].0,
                    cycles[qi].0
                );
                rows.push(vec![
                    q as f64,
                    ai as f64,
                    sims[qi].0,
                    sims[qi].1,
                    cycles[qi].0,
                    cycles[qi].1,
                ]);
            }
        }
        save_csv(
            &opts.out.join("fig9_scalability.csv"),
            "q,algo_index,sims_mean,sims_sd,cycles_mean,cycles_sd",
            &rows,
        );
    }
}

fn static_tables(which: &str) {
    match which {
        "table1" => {
            println!("# Table 1: benchmark definitions (12-d instances)");
            for f in pbo_problems::SyntheticFn::paper_suite() {
                println!(
                    "{:<16} domain [{}, {}]^12  f_min = {}",
                    f.name(),
                    f.lower()[0],
                    f.upper()[0],
                    f.optimum().unwrap()
                );
                let v = f.eval(&f.minimizer());
                println!("  check: f(x*) = {v:.3e}");
            }
        }
        "table2" => {
            println!("# Table 2: budget allocation");
            println!("{:>8} | {:>24} | {:>24}", "n_batch", "initial sample (sims)", "sim budget (min)");
            for q in [1usize, 2, 4, 8, 16] {
                let b = pbo_core::budget::Budget::paper(q);
                let mins = match b.stopping {
                    Stopping::VirtualTime(t) => t / 60.0,
                    Stopping::Cycles(_) => f64::NAN,
                };
                println!("{:>8} | {:>24} | {:>24}", q, b.initial_samples, mins);
            }
        }
        "table3" => {
            println!("# Table 3: acquisition function per algorithm and batch size");
            println!(
                "{:>8} | {:>8} | {:>12} | {:>10} | {:>14} | {:>8}",
                "n_batch", "turbo", "mc-q-ego", "kb-q-ego", "mic-q-ego", "bsp-ego"
            );
            for q in [1usize, 2, 4, 8, 16] {
                let multi = if q == 1 { "EI" } else { "qEI" };
                let mic = if q == 1 { "EI" } else { "EI/UCB (50%)" };
                println!(
                    "{:>8} | {:>8} | {:>12} | {:>10} | {:>14} | {:>8}",
                    q, multi, multi, "EI", mic, "EI"
                );
            }
        }
        _ => unreachable!(),
    }
}

fn baseline(opts: &Opts) {
    // §4: best of ~12 000 uniform random samples on the UPHES problem.
    let n = if opts.profile == Profile::Smoke { 1_000 } else { 12_000 };
    let p = pbo_problems::UphesProblem::maizeret(UPHES_DAY_SEED);
    let r = pbo_problems::random_search::random_search(&p, n, 99);
    println!("# §4 random baseline: best of {n} uniform samples");
    println!("best expected profit = {:.0} EUR", r.value);
    let rows: Vec<Vec<f64>> = r
        .trace
        .iter()
        .enumerate()
        .step_by(50)
        .map(|(i, v)| vec![i as f64, *v])
        .collect();
    save_csv(&opts.out.join("baseline_random.csv"), "eval,best_profit", &rows);
}

fn calibrate(opts: &Opts) {
    // Sanity-check OVERHEAD_SCALE: a q=1 run should complete on the
    // order of 100 cycles (Fig. 9b shows ~105-115 for TuRBO, ~95-105
    // for the q-EGO family).
    println!("# calibration: cycles in 20 virtual minutes at q = 1");
    let problem = ProblemSpec::Ackley.build();
    let cfg = opts.profile.algo_config();
    for algo in [AlgorithmKind::Turbo, AlgorithmKind::KbQEgo, AlgorithmKind::McQEgo] {
        let budget = opts.profile.budget(1);
        let t0 = std::time::Instant::now();
        let r = run_algorithm_with(algo, problem.as_ref(), &budget, cfg.clone(), 4242);
        println!(
            "{:<10} -> {:>4} cycles ({:.1}s wall), time split fit/acq/sim = {:.0}/{:.0}/{:.0} s",
            algo.name(),
            r.n_cycles(),
            t0.elapsed().as_secs_f64(),
            r.time_split().0,
            r.time_split().1,
            r.time_split().2,
        );
    }
}

/// Ablation (DESIGN.md §5): KB fantasy value — posterior mean vs the
/// two constant liars — on Ackley at q = 8, where batch diversity
/// matters most.
fn ablation_fantasy(opts: &Opts) {
    use pbo_core::engine::FantasyKind;
    let problem = ProblemSpec::Ackley.build();
    let runs = opts.runs.unwrap_or(3);
    let q = 8;
    let budget = opts.profile.budget(q);
    println!("# ablation: KB fantasy value (Ackley-12d, q = {q}, {runs} runs)");
    println!("{:<18} | {:>10} | {:>10} | {:>8}", "fantasy", "mean", "sd", "cycles");
    for (name, kind) in [
        ("posterior-mean", FantasyKind::PosteriorMean),
        ("constant-liar-min", FantasyKind::ConstantLiarMin),
        ("constant-liar-max", FantasyKind::ConstantLiarMax),
    ] {
        let mut cfg = opts.profile.algo_config();
        cfg.acq.kb_fantasy = kind;
        let recs: Vec<RunRecord> = (0..runs)
            .map(|r| {
                run_algorithm_with(
                    AlgorithmKind::KbQEgo,
                    problem.as_ref(),
                    &budget,
                    cfg.clone(),
                    run_seed(ProblemSpec::Ackley, q, r),
                )
            })
            .collect();
        let s = report::summarize_final(&recs);
        let cycles: f64 =
            recs.iter().map(|r| r.n_cycles() as f64).sum::<f64>() / runs as f64;
        println!("{name:<18} | {:>10.3} | {:>10.3} | {cycles:>8.0}", s.mean, s.sd);
    }
}

/// Extension algorithms (paper §4/§5 future work) vs their parents.
fn extensions(opts: &Opts) {
    let problem = ProblemSpec::Schwefel.build();
    let runs = opts.runs.unwrap_or(3);
    let q = 4;
    let budget = opts.profile.budget(q);
    let cfg = opts.profile.algo_config();
    println!("# extensions: Schwefel-12d, q = {q}, {runs} runs");
    println!("{:<12} | {:>10} | {:>10} | {:>8} | {:>8}", "algorithm", "mean", "sd", "cycles", "sims");
    let mut kinds = vec![AlgorithmKind::Turbo, AlgorithmKind::MicQEgo];
    kinds.extend(AlgorithmKind::extension_set());
    let mut finals: Vec<Vec<f64>> = Vec::with_capacity(kinds.len());
    for &kind in &kinds {
        let recs: Vec<RunRecord> = (0..runs)
            .map(|r| {
                run_algorithm_with(
                    kind,
                    problem.as_ref(),
                    &budget,
                    cfg.clone(),
                    run_seed(ProblemSpec::Schwefel, q, r),
                )
            })
            .collect();
        let s = report::summarize_final(&recs);
        let cycles: f64 =
            recs.iter().map(|r| r.n_cycles() as f64).sum::<f64>() / runs as f64;
        let sims: f64 =
            recs.iter().map(|r| r.n_simulations() as f64).sum::<f64>() / runs as f64;
        println!(
            "{:<12} | {:>10.1} | {:>10.1} | {cycles:>8.0} | {sims:>8.0}",
            kind.name(),
            s.mean,
            s.sd
        );
        finals.push(report::final_values(&recs));
    }
    // Extensions vs incumbents, with the same Welch machinery as Fig 8.
    println!("# pairwise Welch t-test p-values (final values)");
    let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
    let p = report::pairwise_p_values(&finals);
    println!("{}", report::format_p_matrix(&names, &p));
}

/// Artifacts that write CSV output (and therefore need `--out`).
fn writes_output(artifact: &str) -> bool {
    matches!(
        artifact,
        "table4"
            | "table5"
            | "table6"
            | "table7"
            | "fig2"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "fig9"
            | "uphes"
            | "baseline"
            | "all"
    )
}

fn usage_exit(code: i32) -> ! {
    eprintln!("{}", cli::USAGE);
    std::process::exit(code);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            usage_exit(2);
        }
    };
    if writes_output(&opts.artifact) {
        if let Err(e) = cli::prepare_out_dir(&opts.out) {
            eprintln!("repro: {e}");
            std::process::exit(1);
        }
    }
    match opts.artifact.as_str() {
        "table1" | "table2" | "table3" => static_tables(&opts.artifact),
        "table4" => benchmark_table(ProblemSpec::Rosenbrock, "Table 4: Rosenbrock final cost", &opts),
        "table5" => benchmark_table(ProblemSpec::Ackley, "Table 5: Ackley final cost", &opts),
        "table6" => benchmark_table(ProblemSpec::Schwefel, "Table 6: Schwefel final cost", &opts),
        "table7" | "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "fig9" => {
            uphes_artifacts(&opts, &opts.artifact)
        }
        // One UPHES grid, every UPHES artifact (Table 7, Figs. 3–9).
        "uphes" => uphes_artifacts(&opts, "all"),
        "fig2" => {
            for spec in [ProblemSpec::Rosenbrock, ProblemSpec::Ackley, ProblemSpec::Schwefel] {
                let (batches, algos, map) = run_grid(spec, &opts);
                write_fig2_series(spec, &batches, &algos, &map, &opts);
            }
        }
        "baseline" => baseline(&opts),
        "calibrate" => calibrate(&opts),
        "ablation" => ablation_fantasy(&opts),
        "extensions" => extensions(&opts),
        "all" => {
            static_tables("table1");
            static_tables("table2");
            static_tables("table3");
            benchmark_table(ProblemSpec::Rosenbrock, "Table 4: Rosenbrock final cost", &opts);
            benchmark_table(ProblemSpec::Ackley, "Table 5: Ackley final cost", &opts);
            benchmark_table(ProblemSpec::Schwefel, "Table 6: Schwefel final cost", &opts);
            uphes_artifacts(&opts, "all");
            baseline(&opts);
        }
        unknown => {
            if unknown != "help" {
                eprintln!("repro: unknown artifact '{unknown}'");
            }
            usage_exit(2);
        }
    }
}
