//! Reservoir geometry: the nonlinear volume ↔ level maps behind the
//! head effects.
//!
//! The upper reservoir is a surface basin with gently sloped banks
//! (cross-section grows with level); the lower reservoir is a recycled
//! open-pit mine modelled as an inverted cone frustum whose plan area
//! shrinks toward the bottom — so its level reacts strongly to volume
//! changes near empty, which is exactly why Maizeret-class UPHES plants
//! see "important variations of the net hydraulic head" (paper §2.1).

/// A reservoir with a power-law area profile:
/// `A(z) = a_bottom + (a_top − a_bottom) · (z / depth)^shape`,
/// `z` measured from the reservoir floor. `shape = 0` ⇒ prismatic;
/// `shape > 0` ⇒ funnel (pit-like).
#[derive(Debug, Clone)]
pub struct Reservoir {
    /// Plan area at the floor \[m²\].
    pub area_bottom: f64,
    /// Plan area at the rim \[m²\].
    pub area_top: f64,
    /// Water depth at full \[m\].
    pub depth: f64,
    /// Area profile exponent (0 = prismatic walls).
    pub shape: f64,
    /// Elevation of the floor relative to the site datum \[m\].
    pub floor_elevation: f64,
}

impl Reservoir {
    /// Total volume when full \[m³\] (analytic integral of `A(z)`).
    pub fn capacity(&self) -> f64 {
        self.volume_at_level(self.depth)
    }

    /// Volume held when the water level is `z` above the floor.
    pub fn volume_at_level(&self, z: f64) -> f64 {
        let z = z.clamp(0.0, self.depth);
        let da = self.area_top - self.area_bottom;
        self.area_bottom * z
            + da * self.depth / (self.shape + 1.0) * (z / self.depth).powf(self.shape + 1.0)
    }

    /// Water level above the floor for a stored volume (monotone inverse
    /// of [`Self::volume_at_level`], solved by bisection to 1 mm).
    pub fn level_at_volume(&self, v: f64) -> f64 {
        let v = v.clamp(0.0, self.capacity());
        if v <= 0.0 {
            return 0.0;
        }
        if v >= self.capacity() {
            return self.depth;
        }
        let (mut lo, mut hi) = (0.0, self.depth);
        while hi - lo > 1e-3 {
            let mid = 0.5 * (lo + hi);
            if self.volume_at_level(mid) < v {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Absolute water-surface elevation for a stored volume.
    pub fn surface_elevation(&self, v: f64) -> f64 {
        self.floor_elevation + self.level_at_volume(v)
    }

    /// Plan area at a given level above the floor.
    pub fn area_at_level(&self, z: f64) -> f64 {
        let z = z.clamp(0.0, self.depth);
        self.area_bottom
            + (self.area_top - self.area_bottom) * (z / self.depth).powf(self.shape)
    }
}

/// The Maizeret-like upper basin: shallow surface reservoir, mildly
/// sloped banks, rim at site datum.
pub fn default_upper() -> Reservoir {
    Reservoir {
        area_bottom: 38_000.0,
        area_top: 52_000.0,
        depth: 12.0,
        shape: 1.0,
        floor_elevation: -12.0, // rim at 0 m (datum)
    }
}

/// The recycled open-pit lower basin: deep funnel far underground.
/// Sized so one 3-hour block of full-power operation moves the net head
/// by roughly 5 m — strong head effects without making sustained
/// operation impossible.
pub fn default_lower() -> Reservoir {
    Reservoir {
        area_bottom: 9_000.0,
        area_top: 40_000.0,
        depth: 40.0,
        shape: 2.0,
        floor_elevation: -110.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_of_prism_is_area_times_depth() {
        let r = Reservoir {
            area_bottom: 100.0,
            area_top: 100.0,
            depth: 10.0,
            shape: 0.0,
            floor_elevation: 0.0,
        };
        assert!((r.capacity() - 1000.0).abs() < 1e-9);
        assert!((r.volume_at_level(4.0) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn volume_level_roundtrip() {
        for r in [default_upper(), default_lower()] {
            for frac in [0.05, 0.3, 0.6, 0.95] {
                let v = frac * r.capacity();
                let z = r.level_at_volume(v);
                assert!((r.volume_at_level(z) - v).abs() < r.area_top * 2e-3,
                        "roundtrip at frac {frac}");
            }
        }
    }

    #[test]
    fn level_is_monotone_in_volume() {
        let r = default_lower();
        let mut prev = -1.0;
        for i in 0..=20 {
            let z = r.level_at_volume(r.capacity() * i as f64 / 20.0);
            assert!(z >= prev);
            prev = z;
        }
    }

    #[test]
    fn pit_level_moves_faster_near_empty() {
        // Funnel shape: the same volume increment raises the level more
        // when the pit is nearly empty than when nearly full.
        let r = default_lower();
        let dv = 0.05 * r.capacity();
        let rise_low = r.level_at_volume(dv) - r.level_at_volume(0.0);
        let rise_high =
            r.level_at_volume(r.capacity()) - r.level_at_volume(r.capacity() - dv);
        assert!(rise_low > 1.5 * rise_high, "{rise_low} vs {rise_high}");
    }

    #[test]
    fn default_plant_head_is_plausible() {
        // Half-full both: head must be several tens of meters (the site
        // is designed around ~75 m nominal).
        let up = default_upper();
        let lo = default_lower();
        let head = up.surface_elevation(0.5 * up.capacity())
            - lo.surface_elevation(0.5 * lo.capacity());
        assert!((50.0..110.0).contains(&head), "head {head}");
    }

    #[test]
    fn clamping_out_of_range_inputs() {
        let r = default_upper();
        assert_eq!(r.level_at_volume(-5.0), 0.0);
        assert!((r.volume_at_level(1e9) - r.capacity()).abs() < 1e-6);
    }
}
