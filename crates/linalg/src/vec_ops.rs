//! BLAS-1 style operations on `&[f64]` slices.
//!
//! All functions are panic-on-shape-mismatch (debug assertions) because
//! they sit on the hottest paths of the GP stack; callers validate shapes
//! at API boundaries.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: lets the compiler keep independent
    // FMA chains in flight, which matters for the O(n^3) Cholesky inner
    // loops built on this function.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (ai, bi) in a.iter().zip(b) {
        let d = ai - bi;
        s += d * d;
    }
    s
}

/// Weighted squared distance `sum_i ((a_i - b_i) * w_i)^2`, the kernel-space
/// distance used by ARD (automatic relevance determination) kernels where
/// `w_i = 1 / lengthscale_i`.
#[inline]
pub fn weighted_dist2(a: &[f64], b: &[f64], inv_lengthscales: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), inv_lengthscales.len());
    let mut s = 0.0;
    for i in 0..a.len() {
        let d = (a[i] - b[i]) * inv_lengthscales[i];
        s += d * d;
    }
    s
}

/// Elementwise sum of two slices into a fresh `Vec`.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b` into a fresh `Vec`.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Infinity norm (largest absolute entry); 0 for an empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Mean of a slice; 0 for an empty slice.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Unbiased sample variance; 0 for slices shorter than 2.
#[inline]
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Clamp each coordinate of `x` into `[lo_i, hi_i]`.
#[inline]
pub fn clamp_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    for i in 0..x.len() {
        x[i] = x[i].clamp(lo[i], hi[i]);
    }
}

/// Index of the minimum value (first occurrence). `None` for empty input.
#[inline]
pub fn argmin(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (first occurrence). `None` for empty input.
#[inline]
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn weighted_dist2_matches_manual() {
        let a = [1.0, 2.0];
        let b = [0.0, 4.0];
        let w = [2.0, 0.5];
        // ((1-0)*2)^2 + ((2-4)*0.5)^2 = 4 + 1 = 5
        assert!((weighted_dist2(&a, &b, &w) - 5.0).abs() < 1e-14);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[3.0; 10]), 0.0);
    }

    #[test]
    fn variance_matches_known() {
        // var([1,2,3,4]) with Bessel correction = 5/3
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn argmin_argmax_first_occurrence() {
        let x = [3.0, 1.0, 1.0, 5.0, 5.0];
        assert_eq!(argmin(&x), Some(1));
        assert_eq!(argmax(&x), Some(3));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn clamp_box_respects_bounds() {
        let mut x = [-2.0, 0.5, 9.0];
        clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, [0.0, 0.5, 1.0]);
    }
}
