//! mic-TuRBO (extension): multi-infill-criteria acquisition inside a
//! trust region.
//!
//! The paper's discussion closes with: "Combining the strength of the
//! different approaches remains to be investigated. For example, a
//! multi-infill-criterion TuRBO can easily be considered and
//! implemented." This module is exactly that combination: TuRBO's
//! lengthscale-shaped trust region provides the restricted (fast,
//! exploitation-leaning) search space, and the batch inside it is built
//! by the mic-q-EGO EI/UCB pair loop instead of joint MC q-EI.

use super::mic_qego::mic_batch;
use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use crate::trust_region::{TrustRegion, TrustRegionConfig};
use pbo_problems::Problem;

/// Drive a prepared engine with mic-TuRBO to budget exhaustion.
pub fn drive(mut e: Engine) -> RunRecord {
    let mut tr = TrustRegion::new(TrustRegionConfig::default());

    while e.should_continue() {
        e.fit_model();
        let q = e.q();
        let cfg = e.cfg().clone();
        let acq_seed = e.seeds().fork(0xACC).next_seed();
        let gp = e.gp().clone();
        let f_best_min = e.best_min();
        let center = e.best_x_unit();
        let region = tr.bounds(&center, &gp.kernel().lengthscales);

        let mut batch = e.charge_acquisition(1, || mic_batch(&gp, &region, q, &cfg, acq_seed));
        e.sanitize_batch(&mut batch);
        e.commit_batch(batch);

        let improved = e.best_min() < f_best_min - 1e-12 * (1.0 + f_best_min.abs());
        tr.update(improved);
    }
    e.finish()
}

/// Run mic-TuRBO to budget exhaustion.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("mic-turbo")
        .build()
        .expect("invalid mic-TuRBO configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_problems::SyntheticFn;

    #[test]
    fn runs_and_improves() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(5, 2).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.algorithm, "mic-turbo");
        assert_eq!(r.n_cycles(), 5);
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }

    #[test]
    fn handles_odd_batch_sizes() {
        let p = SyntheticFn::rosenbrock(3);
        let budget = Budget::cycles(2, 3).with_initial_samples(8);
        let r = run(&p, budget, AlgoConfig::test_profile(), 5);
        assert_eq!(r.n_simulations(), 8 + 6);
    }
}
