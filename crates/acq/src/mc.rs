//! Monte-Carlo q-EI over a joint batch, with analytic gradients.
//!
//! The q-point Expected Improvement
//!
//! `qEI(X) = E[ max_j (f_best − Y_j)_+ ],  Y ~ N(μ(X), Σ(X))`
//!
//! is estimated with the reparameterization trick and **fixed**
//! quasi-Monte-Carlo base samples `Z` (sample-average approximation):
//! `Y^(m) = μ + L z^(m)` with `Σ = L Lᵀ`. Fixing `Z` makes the
//! estimator a smooth deterministic function of the batch `X`, which
//! multistart L-BFGS can optimize — exactly BoTorch's construction
//! (Balandat et al. 2020, Wilson et al. 2017), except the gradient is
//! derived by hand:
//!
//! 1. per-sample subgradients land on the best element `j*`:
//!    `∂val/∂μ_{j*} = −1`, `∂val/∂L_{j*,b} = −z_b`,
//! 2. the Cholesky adjoint is pulled back to `Σ̄` ([`crate::pullback`]),
//! 3. `Σ̄` and `μ̄` are chained through the GP posterior to the batch
//!    coordinates using the kernel's query-point gradients.

use crate::pullback::chol_pullback;
use pbo_gp::Surrogate;
use pbo_linalg::vec_ops::dot;
use pbo_linalg::{Cholesky, Matrix};
use pbo_opt::multistart::{minimize_multistart, MultistartConfig};
use pbo_opt::{Bounds, FnGradObjective};
use pbo_sampling::{normal, sobol::Sobol};
use std::cell::RefCell;

/// Reusable buffers for the q-EI posterior and gradient hot path. The
/// dominant per-call allocations of the original implementation — the
/// `n × q` cross-covariance and solve blocks plus the `q × q` and
/// `d × q` gradient scratch — live here and are recycled across calls
/// (one workspace per thread via `thread_local!`, so the multistart can
/// polish starts on scoped threads without sharing).
struct QeiWorkspace {
    kxq: Matrix,
    c: Matrix,
    vtv: Matrix,
    sigma: Matrix,
    /// Recycled Cholesky storage, round-tripped through
    /// [`Cholesky::factor_reusing`] / [`Cholesky::into_l`].
    chol_buf: Matrix,
    mu: Vec<f64>,
    mu_bar: Vec<f64>,
    l_bar: Matrix,
    y: Vec<f64>,
    kbuf: Vec<f64>,
    e: Matrix,
    dmu: Vec<f64>,
    pts: Matrix,
}

impl QeiWorkspace {
    fn new() -> Self {
        let empty = || Matrix::zeros(0, 0);
        QeiWorkspace {
            kxq: empty(),
            c: empty(),
            vtv: empty(),
            sigma: empty(),
            chol_buf: empty(),
            mu: Vec::new(),
            mu_bar: Vec::new(),
            l_bar: empty(),
            y: Vec::new(),
            kbuf: Vec::new(),
            e: empty(),
            dmu: Vec::new(),
            pts: empty(),
        }
    }
}

thread_local! {
    static QEI_WS: RefCell<QeiWorkspace> = RefCell::new(QeiWorkspace::new());
}

/// Monte-Carlo q-EI with fixed qMC base samples.
#[derive(Debug, Clone)]
pub struct QExpectedImprovement {
    /// Incumbent (best observed) objective value (minimization).
    pub f_best: f64,
    /// Batch size q.
    pub q: usize,
    /// Base samples, `n_samples x q`, standard normal.
    base: Matrix,
}

impl QExpectedImprovement {
    /// Create with `n_samples` scrambled-Sobol normal base samples.
    pub fn new(f_best: f64, q: usize, n_samples: usize, seed: u64) -> Self {
        assert!(q >= 1 && n_samples >= 1);
        let mut sobol = Sobol::scrambled(q, seed);
        let mut base = Matrix::zeros(n_samples, q);
        for m in 0..n_samples {
            let u = sobol.next_point();
            for j in 0..q {
                // Clamp away from {0,1}: the XOR scramble can emit exact
                // zeros which the quantile maps to −∞.
                base[(m, j)] = normal::inv_cdf(u[j].clamp(1e-12, 1.0 - 1e-12));
            }
        }
        QExpectedImprovement { f_best, q, base }
    }

    /// Number of MC samples.
    pub fn n_samples(&self) -> usize {
        self.base.rows()
    }

    /// Posterior pieces shared by value and gradient: cross-covariances,
    /// solved columns and raw means land in `ws`; the raw-covariance
    /// Cholesky is returned (its storage is recycled from
    /// `ws.chol_buf` — hand it back with `ws.chol_buf = chol.into_l()`
    /// when done).
    fn posterior_into(
        &self,
        gp: &dyn Surrogate,
        pts: &Matrix,
        ws: &mut QeiWorkspace,
    ) -> Option<Cholesky> {
        let q = self.q;
        let kernel = gp.kernel();
        let train = gp.support_x();
        let (shift, scale) = gp.standardization();
        let s2 = scale * scale;
        kernel.cross_matrix_into(train, pts, &mut ws.kxq); // n x q
        // C = A K(x, pts) with A the backend's posterior operator
        // (K_y⁻¹ dense, the Woodbury form sparse): one blocked multi-RHS
        // solve in place instead of q single-column solve/copy trips.
        ws.c.reset_zeros(train.rows(), q);
        ws.c.as_mut_slice().copy_from_slice(ws.kxq.as_slice());
        gp.cov_solve_matrix_in_place(&mut ws.c).ok()?;
        let kta = ws.kxq.matvec_t(gp.weights()).expect("alpha length n");
        ws.mu.clear();
        ws.mu.extend(kta.iter().map(|v| (gp.trend_std() + v) * scale + shift));
        // Σ = K** − KxqᵀC, the quadratic term accumulated row-major over
        // the training points (contiguous passes over both factors).
        ws.vtv.reset_zeros(q, q);
        for i in 0..train.rows() {
            let kr = ws.kxq.row(i);
            let cr = ws.c.row(i);
            for a in 0..q {
                let ka = kr[a];
                let out = ws.vtv.row_mut(a);
                for b in 0..=a {
                    out[b] += ka * cr[b];
                }
            }
        }
        ws.sigma.reset_zeros(q, q);
        for a in 0..q {
            for b in 0..=a {
                let v = (kernel.eval(pts.row(a), pts.row(b)) - ws.vtv[(a, b)]) * s2;
                ws.sigma[(a, b)] = v;
                ws.sigma[(b, a)] = v;
            }
        }
        for a in 0..q {
            if ws.sigma[(a, a)] < 1e-13 * s2.max(1e-300) {
                ws.sigma[(a, a)] = 1e-13 * s2.max(1e-300);
            }
        }
        let buf = std::mem::replace(&mut ws.chol_buf, Matrix::zeros(0, 0));
        Cholesky::factor_reusing(&ws.sigma, buf).ok()
    }

    /// qEI value at a batch given as rows of `pts` (q x d).
    pub fn value(&self, gp: &dyn Surrogate, pts: &Matrix) -> f64 {
        assert_eq!(pts.rows(), self.q);
        QEI_WS.with(|w| {
            let ws = &mut *w.borrow_mut();
            let Some(chol) = self.posterior_into(gp, pts, ws) else {
                return f64::NEG_INFINITY;
            };
            let l = chol.l();
            let m_samples = self.base.rows();
            let mut total = 0.0;
            for m in 0..m_samples {
                let z = self.base.row(m);
                let mut best = 0.0f64;
                for j in 0..self.q {
                    let y = ws.mu[j] + dot(&l.row(j)[..=j], &z[..=j]);
                    best = best.max(self.f_best - y);
                }
                total += best;
            }
            ws.chol_buf = chol.into_l();
            total / m_samples as f64
        })
    }

    /// qEI value at a flattened batch `x = [x_1; …; x_q]` (length q·d),
    /// recycling the thread-local workspace's batch matrix instead of
    /// allocating one per call — the value-only analogue of
    /// [`Self::value_grad_flat`], used on the multistart's
    /// line-search/raw-scoring path.
    pub fn value_flat(&self, gp: &dyn Surrogate, x_flat: &[f64]) -> f64 {
        let q = self.q;
        let d = gp.dim();
        assert_eq!(x_flat.len(), q * d);
        let mut pts = QEI_WS
            .with(|w| std::mem::replace(&mut w.borrow_mut().pts, Matrix::zeros(0, 0)));
        pts.reset_zeros(q, d);
        pts.as_mut_slice().copy_from_slice(x_flat);
        let v = self.value(gp, &pts);
        QEI_WS.with(|w| w.borrow_mut().pts = pts);
        v
    }

    /// qEI value and gradient with respect to the flattened batch
    /// `x = [x_1; …; x_q]` (length q·d).
    pub fn value_grad_flat(&self, gp: &dyn Surrogate, x_flat: &[f64]) -> (f64, Vec<f64>) {
        let q = self.q;
        let d = gp.dim();
        assert_eq!(x_flat.len(), q * d);
        QEI_WS.with(|w| {
            let ws = &mut *w.borrow_mut();
            // The batch matrix lives in the workspace too; it is moved
            // out for the duration of the call so `ws` stays borrowable.
            let mut pts = std::mem::replace(&mut ws.pts, Matrix::zeros(0, 0));
            pts.reset_zeros(q, d);
            pts.as_mut_slice().copy_from_slice(x_flat);
            let Some(chol) = self.posterior_into(gp, &pts, ws) else {
                ws.pts = pts;
                return (f64::NEG_INFINITY, vec![0.0; q * d]);
            };
            let l = chol.l();
            let m_samples = self.base.rows();

            // MC pass: value plus adjoints on μ and L.
            let mut value = 0.0;
            ws.mu_bar.clear();
            ws.mu_bar.resize(q, 0.0);
            ws.l_bar.reset_zeros(q, q);
            ws.y.clear();
            ws.y.resize(q, 0.0);
            for m in 0..m_samples {
                let z = self.base.row(m);
                for j in 0..q {
                    ws.y[j] = ws.mu[j] + dot(&l.row(j)[..=j], &z[..=j]);
                }
                let (mut jstar, mut best) = (usize::MAX, 0.0f64);
                for j in 0..q {
                    let imp = self.f_best - ws.y[j];
                    if imp > best {
                        best = imp;
                        jstar = j;
                    }
                }
                if jstar != usize::MAX {
                    value += best;
                    ws.mu_bar[jstar] -= 1.0;
                    for b in 0..=jstar {
                        ws.l_bar[(jstar, b)] -= z[b];
                    }
                }
            }
            let inv_m = 1.0 / m_samples as f64;
            value *= inv_m;
            for v in ws.mu_bar.iter_mut() {
                *v *= inv_m;
            }
            ws.l_bar.scale(inv_m);

            // Σ̄ from the Cholesky pullback (adjoint w.r.t. the raw Σ).
            let sigma_bar = chol_pullback(l, &ws.l_bar);

            // Chain to the batch coordinates.
            let kernel = gp.kernel();
            let train = gp.support_x();
            let n = train.rows();
            let alpha = gp.weights();
            let (_, scale) = gp.standardization();
            let s2 = scale * scale;

            let mut grad = vec![0.0; q * d];
            ws.kbuf.clear();
            ws.kbuf.resize(d, 0.0);
            // Per batch point j: D (n x d) = ∂k(x_j, x_i)/∂x_j, then
            // E = Dᵀ C (d x q) and dμ_j = scale · Dᵀ α.
            ws.e.reset_zeros(d, q);
            ws.dmu.clear();
            ws.dmu.resize(d, 0.0);
            for j in 0..q {
                for v in ws.e.as_mut_slice().iter_mut() {
                    *v = 0.0;
                }
                ws.dmu.iter_mut().for_each(|v| *v = 0.0);
                for i in 0..n {
                    kernel.grad_wrt_query(pts.row(j), train.row(i), &mut ws.kbuf);
                    for k in 0..d {
                        let dk = ws.kbuf[k];
                        ws.dmu[k] += alpha[i] * dk;
                        for b in 0..q {
                            ws.e[(k, b)] += dk * ws.c[(i, b)];
                        }
                    }
                }
                for k in 0..d {
                    let mut g = ws.mu_bar[j] * (ws.dmu[k] * scale);
                    for b in 0..q {
                        let dsig_std = if b == j {
                            -2.0 * ws.e[(k, j)]
                        } else {
                            kernel.grad_wrt_query(pts.row(j), pts.row(b), &mut ws.kbuf);
                            ws.kbuf[k] - ws.e[(k, b)]
                        };
                        let coeff =
                            if b == j { sigma_bar[(j, j)] } else { 2.0 * sigma_bar[(j, b)] };
                        g += coeff * dsig_std * s2;
                    }
                    grad[j * d + k] = g;
                }
            }
            ws.chol_buf = chol.into_l();
            ws.pts = pts;
            (value, grad)
        })
    }
}

/// Result of one joint q-EI maximization.
#[derive(Debug, Clone)]
pub struct QeiOutcome {
    /// The optimized batch (q points).
    pub batch: Vec<Vec<f64>>,
    /// Achieved q-EI value (maximization-oriented, ≥ 0 at an optimum).
    pub value: f64,
    /// Objective evaluations spent across all restarts.
    pub evals: usize,
    /// Requested multistart restarts lost to non-finite objectives.
    pub restart_shortfall: usize,
}

/// Maximize q-EI over the `q·d`-dimensional joint space with multistart
/// L-BFGS.
pub fn optimize_qei(
    gp: &dyn Surrogate,
    qei: &QExpectedImprovement,
    bounds: &Bounds,
    warm_starts: &[Vec<Vec<f64>>],
    cfg: &MultistartConfig,
) -> QeiOutcome {
    let q = qei.q;
    let d = bounds.dim();
    let mut lo = Vec::with_capacity(q * d);
    let mut hi = Vec::with_capacity(q * d);
    for _ in 0..q {
        lo.extend_from_slice(bounds.lo());
        hi.extend_from_slice(bounds.hi());
    }
    let flat_bounds = Bounds::new(lo, hi);
    let obj = FnGradObjective::new(
        q * d,
        |x: &[f64]| -qei.value_flat(gp, x),
        |x: &[f64]| {
            let (v, g) = qei.value_grad_flat(gp, x);
            (-v, g.into_iter().map(|gi| -gi).collect())
        },
    );
    let warm_flat: Vec<Vec<f64>> = warm_starts
        .iter()
        .map(|batch| batch.iter().flat_map(|p| p.iter().copied()).collect())
        .collect();
    let r = minimize_multistart(&obj, &flat_bounds, &warm_flat, cfg);
    let batch: Vec<Vec<f64>> =
        (0..q).map(|j| r.x[j * d..(j + 1) * d].to_vec()).collect();
    QeiOutcome {
        batch,
        value: -r.value,
        evals: r.evals,
        restart_shortfall: r.restart_shortfall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbo_gp::kernel::{Kernel, KernelType};
    use pbo_gp::GaussianProcess;
    use pbo_sampling::SeedStream;
    use rand::Rng;

    fn gp_2d(n: usize) -> GaussianProcess {
        let mut rng = SeedStream::new(11).fork_named("gp2d").rng();
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            x[(i, 0)] = a;
            x[(i, 1)] = b;
            y.push((a - 0.3).powi(2) + (b - 0.6).powi(2) + 0.1 * (7.0 * a).sin());
        }
        let mut kernel = Kernel::new(KernelType::Matern52, 2);
        kernel.lengthscales = vec![0.35, 0.35];
        GaussianProcess::new(x, &y, kernel, 1e-6).unwrap()
    }

    #[test]
    fn q1_matches_analytic_ei_closely() {
        let gp = gp_2d(12);
        let f_best = gp.best_observed(false);
        let qei = QExpectedImprovement::new(f_best, 1, 4096, 3);
        let ei = crate::single::ExpectedImprovement { f_best };
        use crate::Acquisition;
        for p in [[0.2, 0.2], [0.5, 0.8], [0.9, 0.1]] {
            let pts = Matrix::from_rows(&[p.to_vec()]).unwrap();
            let mc = qei.value(&gp, &pts);
            let exact = ei.value(&gp, &p);
            assert!(
                (mc - exact).abs() < 0.05 * (1.0 + exact.abs()) + 5e-4,
                "at {p:?}: MC {mc} vs exact {exact}"
            );
        }
    }

    #[test]
    fn qei_grows_with_q() {
        // Adding a point to a batch can only increase qEI (monotone
        // under inclusion) — check MC respects that within noise.
        let gp = gp_2d(10);
        let f_best = gp.best_observed(false);
        let q1 = QExpectedImprovement::new(f_best, 1, 2048, 5);
        let q2 = QExpectedImprovement::new(f_best, 2, 2048, 5);
        let p1 = Matrix::from_rows(&[vec![0.25, 0.55]]).unwrap();
        let p2 = Matrix::from_rows(&[vec![0.25, 0.55], vec![0.8, 0.2]]).unwrap();
        assert!(q2.value(&gp, &p2) >= q1.value(&gp, &p1) - 1e-3);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let gp = gp_2d(9);
        let f_best = gp.best_observed(false);
        let qei = QExpectedImprovement::new(f_best, 3, 512, 7);
        let x0 = vec![0.21, 0.43, 0.67, 0.72, 0.45, 0.12];
        let (_, grad) = qei.value_grad_flat(&gp, &x0);
        let fd = pbo_opt::fd_gradient(
            |x| {
                let pts = Matrix::from_vec(3, 2, x.to_vec()).unwrap();
                qei.value(&gp, &pts)
            },
            &x0,
            1e-6,
        );
        for (i, (a, n)) in grad.iter().zip(&fd).enumerate() {
            assert!(
                (a - n).abs() < 2e-4 * (1.0 + n.abs()),
                "coord {i}: analytic {a} vs fd {n}"
            );
        }
    }

    #[test]
    fn optimize_qei_returns_in_bounds_batch_with_positive_value() {
        let gp = gp_2d(14);
        let f_best = gp.best_observed(false);
        let qei = QExpectedImprovement::new(f_best, 2, 256, 9);
        let bounds = Bounds::unit(2);
        let cfg = MultistartConfig { raw_samples: 16, restarts: 3, ..Default::default() };
        let out = optimize_qei(&gp, &qei, &bounds, &[], &cfg);
        assert_eq!(out.batch.len(), 2);
        for p in &out.batch {
            assert!(bounds.contains(p), "{p:?}");
        }
        assert!(out.value >= 0.0);
    }

    #[test]
    fn base_samples_deterministic_per_seed() {
        let a = QExpectedImprovement::new(0.0, 4, 64, 1);
        let b = QExpectedImprovement::new(0.0, 4, 64, 1);
        assert_eq!(a.base.as_slice(), b.base.as_slice());
    }
}
