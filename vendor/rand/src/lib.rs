//! Offline stand-in for the parts of `rand` 0.8 used by this workspace.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, deterministic implementation with the same API shape:
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::{shuffle, choose}`. `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — high-quality and reproducible,
//! though the streams differ from upstream `rand` (nothing in the repo
//! depends on upstream bit-exact streams, only on determinism per seed).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 raw bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that `Rng::gen` can produce (the role of `Standard: Distribution<T>`
/// upstream).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        let u = f64::from_rng(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        debug_assert!(lo <= hi, "empty f64 range");
        // Include the upper endpoint by scaling over 2^53 inclusive steps.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo with a 64-bit draw: bias is < width / 2^64,
                // negligible for every range this workspace uses.
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full-domain range: every draw is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..=3.0);
            assert!((-2.0..=3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
