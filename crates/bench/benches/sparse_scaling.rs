//! Sparse-surrogate scaling: inducing-point (SoR/FITC) model build and
//! prediction vs the dense GP at growing dataset sizes.
//!
//! Four paths are measured per size n ∈ {1024, 4096, 10240}:
//! - `sparse_build`: greedy pivoted-Cholesky inducing selection plus the
//!   O(nm²) FITC build at m = 256 frozen hyperparameters;
//! - `dense_build`: the dense `GaussianProcess::new` O(n³) build at the
//!   same hyperparameters (skipped at n = 10240 to keep the suite
//!   bounded — the trend is established well before that);
//! - `sparse_predict_many` / `dense_predict_many`: batched posterior over
//!   a 256-point candidate set, O(m²) vs O(n) per point.
//!
//! The `sparse_vs_dense` headline in `BENCH_fit.json` is the
//! `dense_build`/`sparse_build` ratio at n = 4096. Posterior agreement
//! between the two backends is asserted in-bench (exact at m = n on a
//! 512-point subset, loose at m ≪ n) so the recorded speedup can never
//! come from a silently wrong model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbo_gp::fit::FitConfig;
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::workspace::FitWorkspace;
use pbo_gp::{fit, GaussianProcess, SparseGaussianProcess};
use pbo_linalg::Matrix;
use pbo_sampling::{lhs, SeedStream};

const DIM: usize = 12;
const M: usize = 256;

/// Seconds-scale smoke configuration for CI (`PBO_BENCH_SMOKE=1`).
fn smoke() -> bool {
    std::env::var_os("PBO_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let seeds = SeedStream::new(seed);
    let mut rng = seeds.fork_named("sparse-scaling-data").rng();
    let pts = lhs::latin_hypercube(&mut rng, n, DIM);
    let mut x = Matrix::zeros(0, DIM);
    let mut y = Vec::with_capacity(n);
    for p in &pts {
        y.push(p.iter().map(|v| (3.0 * v).sin() + v * v).sum::<f64>());
        x.push_row(p).unwrap();
    }
    (x, y)
}

fn kernel() -> Kernel {
    let mut k = Kernel::new(KernelType::Matern52, DIM);
    k.lengthscales = vec![0.8; DIM];
    k
}

/// Exactness guard: with every training point inducing, the sparse
/// posterior must collapse to the dense one.
fn assert_exact_at_m_equals_n() {
    let (x, y) = dataset(512, 11);
    let k = kernel();
    let dense = GaussianProcess::new(x.clone(), &y, k.clone(), 1e-4).unwrap();
    let sparse = SparseGaussianProcess::new(x, &y, k, 1e-4, 512).unwrap();
    for i in 0..16 {
        let p: Vec<f64> = (0..DIM).map(|j| ((i * DIM + j) as f64 * 0.377).cos() * 0.5 + 0.5).collect();
        let (mu_d, var_d) = dense.predict(&p);
        let (mu_s, var_s) = sparse.predict(&p);
        assert!(
            (mu_d - mu_s).abs() <= 1e-6 * (1.0 + mu_d.abs()),
            "m = n mean mismatch: {mu_d} vs {mu_s}"
        );
        assert!(
            (var_d - var_s).abs() <= 1e-6 * (1.0 + var_d.abs()),
            "m = n variance mismatch: {var_d} vs {var_s}"
        );
    }
}

/// Fidelity guard at m ≪ n: the recorded speedup must belong to a model
/// that still tracks the dense posterior mean over the candidate set.
fn assert_agreement_at_m_below_n(dense: &GaussianProcess, sparse: &SparseGaussianProcess, pts: &Matrix) {
    let (mu_d, _) = dense.predict_many(pts);
    let (mu_s, _) = sparse.predict_many(pts);
    let spread = {
        let lo = mu_d.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = mu_d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo).max(1e-8)
    };
    let worst = mu_d
        .iter()
        .zip(&mu_s)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let rms = (mu_d
        .iter()
        .zip(&mu_s)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / mu_d.len() as f64)
        .sqrt();
    assert!(
        rms <= 0.05 * spread && worst <= 0.25 * spread,
        "sparse posterior drifted from dense: rms gap {rms:.3e}, worst {worst:.3e} \
         vs spread {spread:.3e}"
    );
}

fn sizes() -> &'static [usize] {
    if smoke() {
        &[1024]
    } else {
        &[1024, 4096, 10240]
    }
}

/// Model build: greedy inducing selection + FITC assembly (O(nm²)) vs
/// the dense O(n³) factorization, frozen hyperparameters both sides.
fn bench_build(c: &mut Criterion) {
    assert_exact_at_m_equals_n();
    let mut g = c.benchmark_group("sparse_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (3000, 300) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    for &n in sizes() {
        let (x, y) = dataset(n, 2);
        let k = kernel();
        let m = M.min(n / 2);
        g.bench_with_input(BenchmarkId::new("sparse_build", n), &n, |b, _| {
            b.iter(|| SparseGaussianProcess::new(x.clone(), &y, k.clone(), 1e-4, m).unwrap().m())
        });
        // The dense build at n = 10240 is minutes-scale O(n³); the
        // headline ratio is taken at 4096, so larger sizes record the
        // sparse trend only.
        if n <= 4096 {
            g.bench_with_input(BenchmarkId::new("dense_build", n), &n, |b, _| {
                b.iter(|| GaussianProcess::new(x.clone(), &y, k.clone(), 1e-4).unwrap().n())
            });
        }
    }
    g.finish();
}

/// Batched posterior over a 256-point candidate set: O(m² + md) vs
/// O(n + nd) per point after the one-off cross-kernel assembly.
fn bench_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (1500, 200) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    let q = 256usize;
    for &n in sizes() {
        if n > 4096 {
            // Dense comparator is the point of this family; past 4096
            // its build alone dominates the suite.
            continue;
        }
        let (x, y) = dataset(n, 5);
        let k = kernel();
        let m = M.min(n / 2);
        let dense = GaussianProcess::new(x.clone(), &y, k.clone(), 1e-4).unwrap();
        let sparse = SparseGaussianProcess::new(x, &y, k, 1e-4, m).unwrap();
        let mut rng = SeedStream::new(21).fork_named("cands").rng();
        let cands = lhs::latin_hypercube(&mut rng, q, DIM);
        let pts = Matrix::from_rows(&cands).unwrap();
        assert_agreement_at_m_below_n(&dense, &sparse, &pts);
        g.bench_with_input(BenchmarkId::new("sparse_predict_many_q256", n), &n, |b, _| {
            b.iter(|| sparse.predict_many(&pts).0[0])
        });
        g.bench_with_input(BenchmarkId::new("dense_predict_many_q256", n), &n, |b, _| {
            b.iter(|| dense.predict_many(&pts).0[0])
        });
    }
    g.finish();
}

/// End-to-end sparse fit (hyperparameter search on the m-point subset +
/// full sparse build) — the cost the engine actually pays per full
/// cycle above the switch threshold.
fn bench_fit_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_scaling");
    let (meas, warm) = if smoke() { (150, 30) } else { (3000, 300) };
    g.measurement_time(std::time::Duration::from_millis(meas));
    g.warm_up_time(std::time::Duration::from_millis(warm));
    g.sample_size(10);
    for &n in sizes() {
        if smoke() && n > 1024 {
            continue;
        }
        let (x, y) = dataset(n, 3);
        let cfg = FitConfig { restarts: 1, max_iters: 20, ..FitConfig::default() };
        let m = M.min(n / 2);
        g.bench_with_input(BenchmarkId::new("fit_sparse", n), &n, |b, _| {
            b.iter(|| {
                let mut seeds = SeedStream::new(9);
                let mut ws = FitWorkspace::new();
                fit::fit_sparse_with(&x, &y, &cfg, m, None, &mut seeds, &mut ws).unwrap().0.m()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_predict, bench_fit_sparse);
criterion_main!(benches);
