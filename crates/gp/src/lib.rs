#![allow(clippy::needless_range_loop)]

//! # pbo-gp — exact Gaussian-process regression
//!
//! The surrogate model of the paper (Table 3): a GP with constant trend,
//! homoskedastic noise, and a Matérn-5/2 kernel with automatic relevance
//! determination (one lengthscale per input dimension), fitted by
//! maximizing the exact log marginal likelihood with multi-start L-BFGS
//! over log-hyperparameters.
//!
//! Everything is built on `pbo-linalg`'s jitter-stabilised Cholesky:
//!
//! - [`kernel`]: Matérn-5/2 / Matérn-3/2 / RBF ARD kernels with the
//!   analytic `∂K/∂log θ` terms the MLL gradient needs,
//! - [`gp`]: the [`gp::GaussianProcess`] itself — prediction (posterior
//!   mean/variance/full covariance), **fantasy conditioning** in
//!   `O(n² q)` via rank-q Cholesky extension (the Kriging Believer
//!   heuristic's inner update), and incremental data appends,
//! - [`fit`]: marginal likelihood, its gradient, and the multi-start /
//!   warm-start fitting drivers (the paper's "full update at the start
//!   of a cycle, reduced budget inside the acquisition loop"),
//! - [`sparse`]: the [`sparse::SparseGaussianProcess`] inducing-point
//!   backend (FITC, `O(n m²)` fit / `O(m²)` predict) for studies past
//!   the dense `O(n³)` wall,
//! - [`surrogate`]: the backend-agnostic [`surrogate::Surrogate`] /
//!   [`surrogate::FantasySurrogate`] traits and the
//!   [`surrogate::SurrogateModel`] dispatch enum the BO engine stores.
//!
//! Inputs are expected in (roughly) the unit cube — the BO engine
//! normalizes all problems — and targets are standardized internally;
//! the constant trend is profiled out in closed form (exact by the
//! envelope theorem, see `fit` docs).

pub mod fit;
pub mod gp;
pub mod kernel;
pub mod sparse;
pub mod surrogate;
pub mod workspace;

pub use fit::{FitConfig, FitReport};
pub use gp::{GaussianProcess, PredictWorkspace};
pub use kernel::{Kernel, KernelType};
pub use sparse::SparseGaussianProcess;
pub use surrogate::{FantasySurrogate, Surrogate, SurrogateModel};
pub use workspace::FitWorkspace;

/// Errors from model construction and fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Underlying linear algebra failed (shape or definiteness).
    Linalg(pbo_linalg::LinalgError),
    /// Training set is empty or shapes are inconsistent.
    BadTrainingData(String),
    /// Hyperparameter vector has the wrong length for the kernel.
    BadHyperparameters(String),
}

impl From<pbo_linalg::LinalgError> for GpError {
    fn from(e: pbo_linalg::LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            GpError::BadTrainingData(s) => write!(f, "bad training data: {s}"),
            GpError::BadHyperparameters(s) => write!(f, "bad hyperparameters: {s}"),
        }
    }
}

impl std::error::Error for GpError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GpError>;
