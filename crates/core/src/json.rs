//! Minimal JSON value tree: parser and encoding helpers for the
//! checkpoint layer.
//!
//! The workspace vendors no JSON library (the vendored `serde` is an
//! API-compatible no-op shim), so checkpoint records are encoded by
//! hand — the same choice `observe::jsonl` makes for event traces. That
//! module only needs to *validate* lines; the checkpoint reader must
//! get the values back, bit-exactly, so this module builds a small
//! value tree.
//!
//! Encoding contract (shared with `observe::jsonl`):
//!
//! - floats print through Rust's shortest-roundtrip `{:?}` formatting,
//!   so `parse(encode(x))` returns exactly `x.to_bits()`;
//! - non-finite floats encode as the strings `"NaN"`, `"Infinity"` and
//!   `"-Infinity"` (checkpoints must be lossless, unlike trace lines,
//!   which map them to `null`); [`Json::as_f64`] folds them back;
//! - object members keep declaration order, both when encoding and in
//!   the parsed [`Json::Obj`] representation, so an encode → parse →
//!   encode roundtrip is byte-identical.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value the
    /// checkpoint encoder emits, including exact `u64` counters below
    /// 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors with the key name — the common case
    /// for required checkpoint fields.
    pub fn require(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing field '{key}'"))
    }

    /// Numeric value, folding the non-finite string encodings back.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// Non-negative integer value (exact: rejects fractions and values
    /// above 2^53, which the encoder never produces).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v)
                if *v >= 0.0 && v.fract() == 0.0 && *v <= 9_007_199_254_740_992.0 =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// `as_u64` narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Encoding helpers (the writer side stays hand-assembled, as in
// observe::jsonl; these keep the escaping rules in one place).
// ---------------------------------------------------------------------

/// Append a JSON string literal with full escaping.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64`: shortest-roundtrip decimal for finite values, the
/// lossless string encoding for non-finite ones.
pub fn push_f64_lossless(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

// ---------------------------------------------------------------------
// Parser: strict recursive descent over a single value. Insignificant
// whitespace is accepted between tokens (the encoder emits none, but
// hand-edited checkpoints should not be rejected for a space).
// ---------------------------------------------------------------------

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let c = self.peek().ok_or_else(|| self.err("unexpected end"))?;
        self.i += 1;
        Ok(c)
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bump()? == c {
            Ok(())
        } else {
            self.i -= 1;
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(s),
                b'\\' => match self.bump()? {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b'r' => s.push('\r'),
                    b't' => s.push('\t'),
                    b'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            v = v * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad \\u escape"))?;
                        }
                        s.push(char::from_u32(v).ok_or_else(|| self.err("bad codepoint"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                c => {
                    let start = self.i - 1;
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xF0 => 4,
                        c if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    self.i = start + len;
                    if self.i > self.b.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
        text.parse::<f64>().map_err(|_| self.err("invalid number"))
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'"' => self.string().map(Json::Str),
            b'{' => self.object(),
            b'[' => self.array(),
            b't' => self.literal("true").map(|_| Json::Bool(true)),
            b'f' => self.literal("false").map(|_| Json::Bool(false)),
            b'n' => self.literal("null").map(|_| Json::Null),
            _ => self.number().map(Json::Num),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Json::Arr(items)),
                _ => {
                    self.i -= 1;
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Json::Obj(members)),
                _ => {
                    self.i -= 1;
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing bytes after value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse("[1,2,[3]]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Arr(vec![Json::Num(3.0)])
            ])
        );
        let obj = parse("{\"a\":1,\"b\":{\"c\":[]}}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(obj.get("b").and_then(|b| b.get("c")).and_then(Json::as_array), Some(&[][..]));
    }

    #[test]
    fn preserves_member_order() {
        let obj = parse("{\"z\":1,\"a\":2}").unwrap();
        match obj {
            Json::Obj(members) => {
                assert_eq!(members[0].0, "z");
                assert_eq!(members[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.1 + 0.2, 1.0 / 3.0, 1e-300, -5.5e17, 10.600000000000001, 0.0, -0.0] {
            let mut s = String::new();
            push_f64_lossless(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn non_finite_floats_roundtrip_via_strings() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            push_f64_lossless(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let ugly = "quote\" slash\\ nl\n tab\t ctrl\u{1} é 中";
        let mut s = String::new();
        push_str_literal(&mut s, ugly);
        assert_eq!(parse(&s).unwrap().as_str(), Some(ugly));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"unterminated", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("18014398509481984").unwrap().as_u64(), None); // 2^54: inexact
        assert_eq!(parse("4503599627370496").unwrap().as_u64(), Some(1 << 52));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
