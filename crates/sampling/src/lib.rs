//! # pbo-sampling — randomness, quasi-randomness and designs of experiments
//!
//! Everything stochastic in the workspace flows through this crate:
//!
//! - [`seed`]: SplitMix64 seed derivation so that one master seed per run
//!   yields independent, reproducible streams for DoE, model fitting
//!   restarts, acquisition restarts and simulator scenarios,
//! - [`normal`]: normal deviates (Box–Muller) and the normal
//!   pdf/cdf/quantile special functions used by Expected Improvement,
//! - [`sobol`]: a Sobol low-discrepancy sequence built from
//!   programmatically generated primitive polynomials over GF(2) with
//!   optional XOR scrambling (see module docs for the fidelity note),
//! - [`lhs`]: Latin hypercube designs for the initial sampling plan
//!   (`16 x n_batch` points, Table 2 of the paper).

pub mod halton;
pub mod lhs;
pub mod normal;
pub mod seed;
pub mod sobol;

pub use seed::SeedStream;

/// Scale a unit-cube point into the box `[lo, hi]` in place.
pub fn scale_to_box(u: &mut [f64], lo: &[f64], hi: &[f64]) {
    debug_assert_eq!(u.len(), lo.len());
    debug_assert_eq!(u.len(), hi.len());
    for i in 0..u.len() {
        u[i] = lo[i] + u[i] * (hi[i] - lo[i]);
    }
}

/// Map a box point back to the unit cube in place (the inverse of
/// [`scale_to_box`]); degenerate intervals map to 0.5.
pub fn scale_to_unit(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    for i in 0..x.len() {
        let w = hi[i] - lo[i];
        x[i] = if w > 0.0 { (x[i] - lo[i]) / w } else { 0.5 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_roundtrip() {
        let lo = [-2.0, 0.0, 10.0];
        let hi = [2.0, 1.0, 20.0];
        let mut x = [0.25, 0.5, 0.75];
        let orig = x;
        scale_to_box(&mut x, &lo, &hi);
        assert_eq!(x, [-1.0, 0.5, 17.5]);
        scale_to_unit(&mut x, &lo, &hi);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn degenerate_interval_maps_to_half() {
        let mut x = [3.0];
        scale_to_unit(&mut x, &[3.0], &[3.0]);
        assert_eq!(x[0], 0.5);
    }
}
