//! Property-based tests for the dense linear-algebra substrate.

use pbo_linalg::{Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-1, 1].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: a well-conditioned SPD matrix A = G G^T + n I.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |g| {
        let mut a = g.matmul_nt(&g).unwrap();
        a.add_diag(n as f64 + 1.0);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix(5, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_matvec(a in matrix(4, 5), b in matrix(5, 3),
                                     x in prop::collection::vec(-1.0f64..1.0, 3)) {
        // (A B) x == A (B x)
        let lhs = a.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = a.matvec(&b.matvec(&x).unwrap()).unwrap();
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(4, 6), b in matrix(3, 6)) {
        // A B^T computed directly equals A * transpose(B).
        let direct = a.matmul_nt(&b).unwrap();
        let via = a.matmul(&b.transpose()).unwrap();
        prop_assert!(direct.sub(&via).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn cholesky_roundtrip(a in spd(8)) {
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.reconstruct();
        prop_assert!(a.sub(&back).unwrap().norm_max() < 1e-8 * (1.0 + a.norm_max()));
    }

    #[test]
    fn cholesky_solve_residual(a in spd(6), b in prop::collection::vec(-1.0f64..1.0, 6)) {
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in b.iter().zip(&back) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn cholesky_logdet_positive_for_diagonally_dominant(a in spd(5)) {
        // A has diagonal >= n+1 and |off-diag| <= n, so det >= 1 by
        // Gershgorin-ish bounds; log det must be finite and positive.
        let ch = Cholesky::factor(&a).unwrap();
        prop_assert!(ch.log_det().is_finite());
        prop_assert!(ch.log_det() > 0.0);
    }

    #[test]
    fn extend_agrees_with_direct(g in matrix(9, 9)) {
        let mut full = g.matmul_nt(&g).unwrap();
        full.add_diag(10.0);
        let n = 6;
        let q = 3;
        let a = Matrix::from_fn(n, n, |i, j| full[(i, j)]);
        let b = Matrix::from_fn(n, q, |i, j| full[(i, n + j)]);
        let c = Matrix::from_fn(q, q, |i, j| full[(n + i, n + j)]);
        let ext = Cholesky::factor(&a).unwrap().extend(&b, &c).unwrap();
        let direct = Cholesky::factor(&full).unwrap();
        prop_assert!((ext.log_det() - direct.log_det()).abs() < 1e-7);
    }

    #[test]
    fn quad_form_nonnegative(a in spd(7), b in prop::collection::vec(-1.0f64..1.0, 7)) {
        let ch = Cholesky::factor(&a).unwrap();
        prop_assert!(ch.quad_form(&b).unwrap() >= -1e-12);
    }
}
