//! Reproducible seed derivation.
//!
//! Each optimization run is driven by a single `u64` master seed. Every
//! component (DoE, GP fitting restarts, acquisition multistart, MC base
//! samples, simulator scenarios, per-worker streams) derives its own
//! independent sub-seed through SplitMix64, so adding a component never
//! perturbs the stream of another — the property that lets the harness
//! hand the *same* initial designs to all five algorithms, as the paper
//! does ("10 distinct initial sets used for all approaches").

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One SplitMix64 step.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(master, tag)`; stable across runs.
pub fn derive(master: u64, tag: u64) -> u64 {
    let mut s = master ^ tag.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// A named, forkable stream of seeds and RNGs.
#[derive(Debug, Clone)]
pub struct SeedStream {
    seed: u64,
    counter: u64,
}

impl SeedStream {
    /// Root stream for a run.
    pub fn new(master: u64) -> Self {
        SeedStream { seed: master, counter: 0 }
    }

    /// Fork an independent child stream identified by `tag`. The same
    /// `(master, tag)` pair always yields the same child, regardless of
    /// how many seeds were drawn from the parent.
    pub fn fork(&self, tag: u64) -> SeedStream {
        SeedStream { seed: derive(self.seed, tag), counter: 0 }
    }

    /// Fork by a string label (hashes the label with FNV-1a).
    pub fn fork_named(&self, label: &str) -> SeedStream {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.fork(h)
    }

    /// Next raw seed from this stream (consumes one position).
    pub fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        derive(self.seed, self.counter)
    }

    /// A fresh `StdRng` seeded from the next stream position.
    pub fn rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(42, 7), derive(42, 7));
        assert_ne!(derive(42, 7), derive(42, 8));
        assert_ne!(derive(42, 7), derive(43, 7));
    }

    #[test]
    fn fork_is_order_independent() {
        let root = SeedStream::new(123);
        let mut a = root.clone();
        let _ = a.next_seed();
        let _ = a.next_seed();
        // Forking after drawing seeds gives the same child as forking
        // immediately: fork depends only on (seed, tag).
        assert_eq!(a.fork(9).next_seed(), root.fork(9).next_seed());
    }

    #[test]
    fn seeds_do_not_collide_cheaply() {
        let mut s = SeedStream::new(1);
        let seen: HashSet<u64> = (0..10_000).map(|_| s.next_seed()).collect();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn named_forks_differ() {
        let root = SeedStream::new(5);
        assert_ne!(
            root.fork_named("doe").next_seed(),
            root.fork_named("acq").next_seed()
        );
    }

    #[test]
    fn rng_reproducible() {
        use rand::Rng;
        let mut a = SeedStream::new(77).fork_named("x");
        let mut b = SeedStream::new(77).fork_named("x");
        let va: f64 = a.rng().gen();
        let vb: f64 = b.rng().gen();
        assert_eq!(va, vb);
    }
}
