//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! warm-started refits vs full multistart fits, q-EI base-sample
//! counts, and the BSP cell multiplier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbo_gp::fit::{fit, refit_warm, FitConfig};
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::Matrix;
use pbo_opt::Bounds;
use pbo_sampling::{lhs, SeedStream};

fn dataset(n: usize) -> (Matrix, Vec<f64>) {
    let seeds = SeedStream::new(31);
    let pts = lhs::latin_hypercube(&mut seeds.fork_named("d").rng(), n, 12);
    let mut x = Matrix::zeros(0, 12);
    let mut y = Vec::with_capacity(n);
    for p in &pts {
        y.push(p.iter().map(|v| (2.5 * v).cos() + v).sum::<f64>());
        x.push_row(p).unwrap();
    }
    (x, y)
}

/// The paper's reduced intermediate fitting budget: how much does the
/// warm refit actually save over a full multistart fit?
fn ablation_refit(c: &mut Criterion) {
    let (x, y) = dataset(128);
    let cfg = FitConfig { restarts: 2, max_iters: 30, warm_iters: 8, ..FitConfig::default() };
    let mut seeds = SeedStream::new(7);
    let (gp, _) = fit(&x, &y, &cfg, None, &mut seeds).unwrap();
    let mut g = c.benchmark_group("ablation_refit");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    g.bench_function("full_multistart", |b| {
        b.iter(|| {
            let mut s = SeedStream::new(8);
            fit(&x, &y, &cfg, None, &mut s).unwrap().1.evals
        })
    });
    g.bench_function("warm_restart", |b| {
        b.iter(|| {
            let mut s = SeedStream::new(8);
            refit_warm(&gp, &cfg, &mut s).unwrap().1.evals
        })
    });
    g.finish();
}

/// MC q-EI cost as a function of the base-sample count (the
/// accuracy/cost dial of the reparameterization estimator).
fn ablation_qei_samples(c: &mut Criterion) {
    let (x, y) = dataset(96);
    let mut kernel = Kernel::new(KernelType::Matern52, 12);
    kernel.lengthscales = vec![0.4; 12];
    let gp = GaussianProcess::new(x, &y, kernel, 1e-4).unwrap();
    let f_best = gp.best_observed(false);
    let flat: Vec<f64> = (0..4 * 12).map(|i| 0.1 + 0.8 * ((i * 37 % 100) as f64) / 100.0).collect();
    let mut g = c.benchmark_group("ablation_qei_samples");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for &m in &[32usize, 128, 512] {
        let qei = pbo_acq::mc::QExpectedImprovement::new(f_best, 4, m, 5);
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| qei.value_grad_flat(&gp, &flat).0)
        });
    }
    g.finish();
}

/// BSP-EGO with n_cand = q vs the paper's 2q: serial acquisition work.
fn ablation_bsp_cells(c: &mut Criterion) {
    let (x, y) = dataset(96);
    let mut kernel = Kernel::new(KernelType::Matern52, 12);
    kernel.lengthscales = vec![0.4; 12];
    let gp = GaussianProcess::new(x, &y, kernel, 1e-4).unwrap();
    let f_best = gp.best_observed(false);
    let cfg = pbo_core::engine::AlgoConfig {
        acq: pbo_core::engine::AcqConfig {
            restarts: 2,
            raw_samples: 16,
            ..pbo_core::engine::AcqConfig::default()
        },
        ..pbo_core::engine::AlgoConfig::default()
    };
    let mut g = c.benchmark_group("ablation_bsp_cell_factor");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.sample_size(10);
    for &factor in &[1usize, 2] {
        let q = 4;
        let tree = pbo_core::partition::BspTree::new(Bounds::unit(12), factor * q);
        let cells: Vec<Bounds> =
            tree.leaves().iter().map(|&l| tree.bounds_of(l).clone()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, _| {
            b.iter(|| {
                let mut total = 0.0;
                for (k, cell) in cells.iter().enumerate() {
                    let ei = pbo_acq::single::ExpectedImprovement { f_best };
                    let ms = pbo_core::algorithms::acq_multistart(&cfg, k as u64);
                    total += pbo_acq::single::optimize_single(&gp, &ei, cell, &[], &ms).value;
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, ablation_refit, ablation_qei_samples, ablation_bsp_cells);
criterion_main!(benches);
