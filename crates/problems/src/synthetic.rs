//! The Table-1 benchmark functions (plus extensions).
//!
//! All follow the paper's setup: 12 decision variables, minimization,
//! domains from Table 1. Known minima are 0 for all three paper
//! functions (Schwefel uses the paper's shifted constant).

use crate::Problem;

/// Which benchmark function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    /// Valley: `Σ 100(x_i² − x_{i+1})² + (x_i − 1)²`, domain [−5,10]^d.
    Rosenbrock,
    /// Exponential well with ripple, domain [−5,10]^d (paper's domain).
    Ackley,
    /// Highly multimodal: `418.9829 d − Σ x_i sin(√|x_i|)`, [−500,500]^d.
    Schwefel,
    /// `10d + Σ x_i² − 10 cos(2π x_i)`, domain [−5.12, 5.12]^d.
    Rastrigin,
    /// `1 + Σ x_i²/4000 − Π cos(x_i/√i)`, domain [−600, 600]^d.
    Griewank,
    /// Levy function, domain [−10, 10]^d.
    Levy,
}

/// A benchmark instance: kind + dimension + cached bounds.
#[derive(Debug, Clone)]
pub struct SyntheticFn {
    kind: SyntheticKind,
    name: String,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl SyntheticFn {
    /// Build with the function's standard domain.
    pub fn new(kind: SyntheticKind, dim: usize) -> Self {
        assert!(dim >= 2, "benchmarks need dim >= 2");
        let (lo, hi) = match kind {
            SyntheticKind::Rosenbrock | SyntheticKind::Ackley => (-5.0, 10.0),
            SyntheticKind::Schwefel => (-500.0, 500.0),
            SyntheticKind::Rastrigin => (-5.12, 5.12),
            SyntheticKind::Griewank => (-600.0, 600.0),
            SyntheticKind::Levy => (-10.0, 10.0),
        };
        let name = format!("{:?}-{dim}d", kind).to_lowercase();
        SyntheticFn { kind, name, lower: vec![lo; dim], upper: vec![hi; dim] }
    }

    /// Paper instance: 12-dimensional Rosenbrock.
    pub fn rosenbrock(dim: usize) -> Self {
        Self::new(SyntheticKind::Rosenbrock, dim)
    }

    /// Paper instance: 12-dimensional Ackley.
    pub fn ackley(dim: usize) -> Self {
        Self::new(SyntheticKind::Ackley, dim)
    }

    /// Paper instance: 12-dimensional Schwefel.
    pub fn schwefel(dim: usize) -> Self {
        Self::new(SyntheticKind::Schwefel, dim)
    }

    /// The kind of this instance.
    pub fn kind(&self) -> SyntheticKind {
        self.kind
    }

    /// The three paper benchmarks at the paper's dimension (12).
    pub fn paper_suite() -> Vec<SyntheticFn> {
        vec![Self::rosenbrock(12), Self::ackley(12), Self::schwefel(12)]
    }

    /// Location of the global minimum (for tests).
    pub fn minimizer(&self) -> Vec<f64> {
        let d = self.dim();
        match self.kind {
            SyntheticKind::Rosenbrock | SyntheticKind::Levy => vec![1.0; d],
            SyntheticKind::Ackley | SyntheticKind::Rastrigin | SyntheticKind::Griewank => {
                vec![0.0; d]
            }
            SyntheticKind::Schwefel => vec![420.9687462275036; d],
        }
    }
}

impl Problem for SyntheticFn {
    fn name(&self) -> &str {
        &self.name
    }
    fn dim(&self) -> usize {
        self.lower.len()
    }
    fn lower(&self) -> &[f64] {
        &self.lower
    }
    fn upper(&self) -> &[f64] {
        &self.upper
    }
    fn optimum(&self) -> Option<f64> {
        Some(0.0)
    }

    fn eval(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        let d = x.len();
        match self.kind {
            SyntheticKind::Rosenbrock => (0..d - 1)
                .map(|i| {
                    100.0 * (x[i] * x[i] - x[i + 1]).powi(2) + (x[i] - 1.0).powi(2)
                })
                .sum(),
            SyntheticKind::Ackley => {
                let nd = d as f64;
                let s1: f64 = x.iter().map(|v| v * v).sum::<f64>() / nd;
                let s2: f64 = x
                    .iter()
                    .map(|v| (2.0 * std::f64::consts::PI * v).cos())
                    .sum::<f64>()
                    / nd;
                -20.0 * (-0.2 * s1.sqrt()).exp() - s2.exp() + 20.0 + std::f64::consts::E
            }
            SyntheticKind::Schwefel => {
                418.982_887_272_433_8 * d as f64
                    - x.iter().map(|v| v * v.abs().sqrt().sin()).sum::<f64>()
            }
            SyntheticKind::Rastrigin => {
                10.0 * d as f64
                    + x.iter()
                        .map(|v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
                        .sum::<f64>()
            }
            SyntheticKind::Griewank => {
                1.0 + x.iter().map(|v| v * v).sum::<f64>() / 4000.0
                    - x.iter()
                        .enumerate()
                        .map(|(i, v)| (v / ((i + 1) as f64).sqrt()).cos())
                        .product::<f64>()
            }
            SyntheticKind::Levy => {
                let w = |v: f64| 1.0 + (v - 1.0) / 4.0;
                let pi = std::f64::consts::PI;
                let w1 = w(x[0]);
                let mut s = (pi * w1).sin().powi(2);
                for i in 0..d - 1 {
                    let wi = w(x[i]);
                    s += (wi - 1.0).powi(2) * (1.0 + 10.0 * (pi * wi + 1.0).sin().powi(2));
                }
                let wd = w(x[d - 1]);
                s + (wd - 1.0).powi(2) * (1.0 + (2.0 * pi * wd).sin().powi(2))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minima_are_zero_at_minimizers() {
        for kind in [
            SyntheticKind::Rosenbrock,
            SyntheticKind::Ackley,
            SyntheticKind::Schwefel,
            SyntheticKind::Rastrigin,
            SyntheticKind::Griewank,
            SyntheticKind::Levy,
        ] {
            let f = SyntheticFn::new(kind, 12);
            let v = f.eval(&f.minimizer());
            assert!(v.abs() < 1e-3, "{:?}: f(x*) = {v}", kind);
        }
    }

    #[test]
    fn values_positive_away_from_optimum() {
        for f in SyntheticFn::paper_suite() {
            let mid: Vec<f64> = f
                .lower()
                .iter()
                .zip(f.upper())
                .map(|(l, u)| 0.37 * l + 0.63 * u)
                .collect();
            assert!(f.eval(&mid) > 0.1, "{} at midpointish", f.name());
        }
    }

    #[test]
    fn table1_domains() {
        let r = SyntheticFn::rosenbrock(12);
        assert_eq!(r.lower()[0], -5.0);
        assert_eq!(r.upper()[0], 10.0);
        let a = SyntheticFn::ackley(12);
        assert_eq!(a.lower()[0], -5.0);
        assert_eq!(a.upper()[0], 10.0);
        let s = SyntheticFn::schwefel(12);
        assert_eq!(s.lower()[0], -500.0);
        assert_eq!(s.upper()[0], 500.0);
        for f in SyntheticFn::paper_suite() {
            assert_eq!(f.dim(), 12);
            assert_eq!(f.optimum(), Some(0.0));
        }
    }

    #[test]
    fn rosenbrock_known_value() {
        // f(0, 0) in 2-D = 1; in 12-D with all zeros = 11 * 1 = 11.
        let f = SyntheticFn::rosenbrock(12);
        assert!((f.eval(&[0.0; 12]) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn ackley_known_value() {
        // At x = (1, 1, ..., 1): s1 = 1, cos term = 1
        let f = SyntheticFn::ackley(12);
        let expect = -20.0 * (-0.2f64).exp() - 1.0f64.exp() + 20.0 + std::f64::consts::E;
        assert!((f.eval(&[1.0; 12]) - expect).abs() < 1e-12);
    }

    #[test]
    fn schwefel_multimodality() {
        // The deceptive second-best basin near −302.5 has a value well
        // above 0 but far below the domain average.
        let f = SyntheticFn::schwefel(2);
        let second = f.eval(&[-302.5249, 420.9687]);
        assert!(second > 50.0 && second < 500.0, "{second}");
    }
}
