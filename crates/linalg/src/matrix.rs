//! Row-major dense matrix.

use crate::parallel;
use crate::vec_ops::dot;
use crate::{LinalgError, Result};
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Row-major storage keeps a row contiguous, which is the access pattern
/// of every hot kernel in this workspace (kernel-matrix assembly walks
/// rows of the design matrix; the Cholesky dot-product form walks rows of
/// `L`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Reshape to `rows x cols` in place, reusing the backing allocation
    /// when its capacity allows. Every entry is reset to zero; previous
    /// contents are discarded. This is the workspace-reuse primitive for
    /// hot paths that would otherwise allocate a fresh matrix per call.
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Errors if the length does not
    /// match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "buffer of {} entries for a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from nested rows (mostly for tests and small fixtures).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if rows.iter().any(|row| row.len() != c) {
            return Err(LinalgError::ShapeMismatch("ragged rows".into()));
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: r, cols: c, data })
    }

    /// Build an `n x n` matrix from a function of the index pair; used for
    /// kernel-matrix assembly.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let row = m.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Two disjoint mutable rows (`i != j`), used by in-place factorizations.
    pub fn rows_mut2(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(i, j, "rows_mut2 requires distinct rows");
        let c = self.cols;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * c);
            (&mut a[i * c..(i + 1) * c], &mut b[..c])
        } else {
            let (a, b) = self.data.split_at_mut(i * c);
            let (bj, bi) = (&mut a[j * c..(j + 1) * c], &mut b[..c]);
            (bi, bj)
        }
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copy of the main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec: {}x{} by vector of {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), x)).collect())
    }

    /// `self^T * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec_t: {}x{} by vector of {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            crate::vec_ops::axpy(x[i], self.row(i), &mut y);
        }
        Ok(y)
    }

    /// Matrix product `self * other`, parallelised over row blocks when
    /// the work is large enough to amortise thread spawn.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul: {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        // Transposing the right operand turns the inner kernel into a
        // pair of contiguous row reads (dot-product form).
        let bt = other.transpose();
        let mut out = Matrix::zeros(self.rows, other.cols);
        let cols = other.cols;
        let work = self.rows * self.cols * cols;
        parallel::for_each_row_chunk(out.as_mut_slice(), cols, work, |i, out_row| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, bt.row(j));
            }
        });
        Ok(out)
    }

    /// `self * other^T` without materialising the transpose (both operands
    /// are read row-wise).
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul_nt: {}x{} by ({}x{})^T",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        let cols = other.rows;
        let work = self.rows * self.cols * cols;
        parallel::for_each_row_chunk(out.as_mut_slice(), cols, work, |i, out_row| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(j));
            }
        });
        Ok(out)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        dot(&self.data, &self.data).sqrt()
    }

    /// Largest absolute entry.
    pub fn norm_max(&self) -> f64 {
        crate::vec_ops::norm_inf(&self.data)
    }

    /// In-place scale.
    pub fn scale(&mut self, alpha: f64) {
        crate::vec_ops::scale(alpha, &mut self.data);
    }

    /// Elementwise sum; errors on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch("add".into()));
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Elementwise difference; errors on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch("sub".into()));
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Add `alpha` to the diagonal in place (nugget/jitter).
    pub fn add_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Symmetrise in place: `A <- (A + A^T) / 2`. Kernel matrices are
    /// symmetric in exact arithmetic; this removes rounding asymmetry
    /// before factorization.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Append a row; errors if the width differs.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows > 0 && row.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "push_row: row of {} onto width {}",
                row.len(),
                self.cols
            )));
        }
        if self.rows == 0 {
            self.cols = row.len();
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn identity_matvec_is_id() {
        let i3 = Matrix::identity(3);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(i3.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert!(approx_eq(&c, &expect, 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.3 - 1.0);
        let b = Matrix::from_fn(5, 3, |i, j| ((i + j) as f64).cos());
        let via_t = a.matmul(&b.transpose()).unwrap();
        let direct = a.matmul_nt(&b).unwrap();
        assert!(approx_eq(&via_t, &direct, 1e-12));
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let expect = a.transpose().matvec(&x).unwrap();
        let got = a.matvec_t(&x).unwrap();
        for (e, g) in expect.iter().zip(&got) {
            assert!((e - g).abs() < 1e-12);
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch(_))));
        assert!(a.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn rows_mut2_disjoint_access() {
        let mut a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let (r0, r2) = a.rows_mut2(0, 2);
        r0[0] = 100.0;
        r2[1] = -100.0;
        assert_eq!(a[(0, 0)], 100.0);
        assert_eq!(a[(2, 1)], -100.0);
        // reversed order
        let (r2b, r1) = a.rows_mut2(2, 1);
        r2b[0] = 7.0;
        r1[1] = 8.0;
        assert_eq!(a[(2, 0)], 7.0);
        assert_eq!(a[(1, 1)], 8.0);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = Matrix::from_fn(4, 4, |i, j| (i as f64) * 1.7 + (j as f64) * 0.3);
        a.symmetrize();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn push_row_grows() {
        let mut a = Matrix::zeros(0, 0);
        a.push_row(&[1.0, 2.0]).unwrap();
        a.push_row(&[3.0, 4.0]).unwrap();
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        assert!(a.push_row(&[1.0]).is_err());
    }
}
