//! Normal-distribution machinery: deviates and special functions.
//!
//! The Expected Improvement family needs Φ and φ to high relative
//! accuracy far into the tails (a candidate many posterior standard
//! deviations below the incumbent still needs a meaningful EI gradient).
//! We implement `erf`/`erfc` from scratch: a Maclaurin series on the
//! central range and a Lentz continued fraction in the tails — both
//! accurate to close to machine precision — plus Acklam's rational
//! approximation (|ε| < 1.15e-9) for the quantile function, refined with
//! one Halley step to full double precision.

use rand::Rng;

/// `1/sqrt(2*pi)`.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
/// `sqrt(2)`.
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Standard normal probability density.
#[inline]
pub fn pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Error function, |error| ~ 1e-15.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 3.0 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function with correct tail behaviour.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 3.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series `erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1) / (n! (2n+1))`,
/// written in the numerically friendlier product form.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let add = term / (2 * n + 1) as f64;
        sum += add;
        if add.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Tail continued fraction (modified Lentz):
/// `erfc(x) = exp(-x^2)/sqrt(pi) * 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...))))`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0;
    for k in 1..300 {
        let a = k as f64 / 2.0;
        // CF step: b = x, a_k = k/2.
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() / f
}

/// Standard normal cumulative distribution Φ(x).
#[inline]
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// log Φ(x), stable deep into the left tail (uses the asymptotic
/// expansion of the Mills ratio for `x < -10`).
pub fn log_cdf(x: f64) -> f64 {
    if x > -10.0 {
        cdf(x).max(f64::MIN_POSITIVE).ln()
    } else {
        // Φ(x) ≈ φ(x)/|x| * (1 - 1/x^2 + 3/x^4 - 15/x^6)
        let x2 = x * x;
        let corr = 1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2);
        -0.5 * x2 - (INV_SQRT_2PI).recip().ln() - (-x).ln() + corr.ln()
    }
}

/// Quantile function Φ⁻¹(p) (Acklam's rational approximation plus one
/// Halley refinement step). Returns ±∞ at p ∈ {0, 1}, NaN outside \[0,1\].
pub fn inv_cdf(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step: e = Φ(x) - p; x <- x - 2e/(2φ(x) ... ).
    let e = cdf(x) - p;
    let u = e * std::f64::consts::PI.sqrt() * SQRT_2 * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Draw one standard normal deviate via Box–Muller.
///
/// Uses the polar-free trig form; each call consumes two uniforms so the
/// stream layout stays independent of call history (no cached spare).
pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against u1 == 0 (ln(0)).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a slice with standard normal deviates.
pub fn fill<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = sample(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        // Reference values (Abramowitz & Stegun / mpmath).
        assert!((erf(0.0)).abs() < 1e-16);
        assert!((erf(0.5) - 0.5204998778130465).abs() < 1e-14);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-14);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-14);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) = 1.5374597944280348e-12 (relative check).
        let v = erfc(5.0);
        assert!((v / 1.537_459_794_428_035e-12 - 1.0).abs() < 1e-10, "{v:e}");
        // erfc(10) = 2.0884875837625446e-45
        let v = erfc(10.0);
        assert!((v / 2.0884875837625446e-45 - 1.0).abs() < 1e-9, "{v:e}");
    }

    #[test]
    fn cdf_symmetry_and_known() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-15);
        for &x in &[0.3, 1.0, 2.5, 4.0] {
            assert!((cdf(x) + cdf(-x) - 1.0).abs() < 1e-13);
        }
        // Φ(1.96) ≈ 0.9750021048517795
        assert!((cdf(1.959963984540054) - 0.975).abs() < 1e-12);
    }

    #[test]
    fn inv_cdf_roundtrip() {
        for &p in &[1e-10, 1e-5, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let x = inv_cdf(p);
            assert!((cdf(x) - p).abs() < 1e-12 * (1.0 + 1.0 / p.min(1.0 - p)), "p={p}");
        }
        assert_eq!(inv_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_cdf(1.0), f64::INFINITY);
        assert!(inv_cdf(-0.1).is_nan());
    }

    #[test]
    fn log_cdf_matches_direct_in_body() {
        for &x in &[-3.0, -1.0, 0.0, 2.0] {
            assert!((log_cdf(x) - cdf(x).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn log_cdf_finite_deep_tail() {
        let v = log_cdf(-30.0);
        assert!(v.is_finite());
        // log Φ(-30) ≈ -454.32 (dominated by -x²/2 = -450).
        assert!(v < -445.0 && v > -465.0, "{v}");
    }

    #[test]
    fn sample_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = sample(&mut rng);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn pdf_peak() {
        assert!((pdf(0.0) - INV_SQRT_2PI).abs() < 1e-16);
        assert!(pdf(5.0) < pdf(1.0));
    }
}
