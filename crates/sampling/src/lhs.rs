//! Latin hypercube designs of experiments.
//!
//! The paper's initial sampling plan is `16 x n_batch` points (Table 2).
//! We use Latin hypercube sampling — the standard BO DoE — with an
//! optional cheap maximin improvement (best of `k` random LHS draws by
//! minimum pairwise distance).

use rand::seq::SliceRandom;
use rand::Rng;

/// One Latin hypercube design of `n` points in `[0,1)^dim`.
///
/// Each dimension is split into `n` equal strata; a random permutation
/// assigns one point per stratum, jittered uniformly within it.
pub fn latin_hypercube<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut pts = vec![vec![0.0; dim]; n];
    let mut perm: Vec<usize> = (0..n).collect();
    for d in 0..dim {
        perm.shuffle(rng);
        for (i, p) in pts.iter_mut().enumerate() {
            let u: f64 = rng.gen();
            p[d] = (perm[i] as f64 + u) / n as f64;
        }
    }
    pts
}

/// Centered Latin hypercube (points at stratum midpoints); deterministic
/// given the permutation draw, useful for tests.
pub fn centered_latin_hypercube<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    dim: usize,
) -> Vec<Vec<f64>> {
    let mut pts = vec![vec![0.0; dim]; n];
    let mut perm: Vec<usize> = (0..n).collect();
    for d in 0..dim {
        perm.shuffle(rng);
        for (i, p) in pts.iter_mut().enumerate() {
            p[d] = (perm[i] as f64 + 0.5) / n as f64;
        }
    }
    pts
}

/// Best-of-`tries` maximin LHS: keeps the draw whose minimum pairwise
/// squared distance is largest. `tries = 1` degrades to plain LHS.
pub fn maximin_latin_hypercube<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    dim: usize,
    tries: usize,
) -> Vec<Vec<f64>> {
    let mut best: Option<(f64, Vec<Vec<f64>>)> = None;
    for _ in 0..tries.max(1) {
        let cand = latin_hypercube(rng, n, dim);
        let score = min_pairwise_dist2(&cand);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, cand));
        }
    }
    best.expect("tries >= 1").1
}

/// Minimum pairwise squared distance of a point set (`inf` for < 2 pts).
pub fn min_pairwise_dist2(pts: &[Vec<f64>]) -> f64 {
    let mut m = f64::INFINITY;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            let d: f64 = pts[i]
                .iter()
                .zip(&pts[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            m = m.min(d);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn is_latin(pts: &[Vec<f64>]) -> bool {
        let n = pts.len();
        let dim = pts[0].len();
        for d in 0..dim {
            let mut strata: Vec<usize> = pts.iter().map(|p| (p[d] * n as f64) as usize).collect();
            strata.sort_unstable();
            if strata != (0..n).collect::<Vec<_>>() {
                return false;
            }
        }
        true
    }

    #[test]
    fn lhs_has_one_point_per_stratum() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = latin_hypercube(&mut rng, 16, 12);
        assert_eq!(pts.len(), 16);
        assert!(is_latin(&pts));
    }

    #[test]
    fn centered_lhs_at_midpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = centered_latin_hypercube(&mut rng, 8, 3);
        assert!(is_latin(&pts));
        for p in &pts {
            for &x in p {
                let frac = (x * 8.0).fract();
                assert!((frac - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn maximin_never_worse_than_single_draw_in_expectation() {
        // With the same RNG stream the maximin pick is by construction
        // the best of its own draws; just check it's a valid LHS.
        let mut rng = StdRng::seed_from_u64(5);
        let pts = maximin_latin_hypercube(&mut rng, 10, 4, 8);
        assert!(is_latin(&pts));
        assert!(min_pairwise_dist2(&pts) > 0.0);
    }

    #[test]
    fn min_pairwise_dist_of_singleton_is_inf() {
        assert_eq!(min_pairwise_dist2(&[vec![0.5]]), f64::INFINITY);
    }
}
