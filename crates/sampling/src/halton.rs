//! Halton low-discrepancy sequences (scrambled).
//!
//! A table-free alternative to Sobol used by the q-EI base-sample
//! ablation: dimension `j` is the radical-inverse sequence in the
//! `j`-th prime base, with an optional per-dimension digit permutation
//! (a small multiplicative scramble) that suppresses the notorious
//! correlation between high-dimensional Halton pairs.

use crate::seed::splitmix64;

/// First `n` primes by trial division.
fn primes(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut c = 2u64;
    while out.len() < n {
        if out.iter().all(|p| !c.is_multiple_of(*p)) {
            out.push(c);
        }
        c += 1;
    }
    out
}

/// Scrambled Halton sequence over `[0,1)^dim`.
#[derive(Debug, Clone)]
pub struct Halton {
    bases: Vec<u64>,
    /// Per-dimension multiplier for the digit scramble (coprime to the
    /// base; 1 = unscrambled).
    multipliers: Vec<u64>,
    index: u64,
}

impl Halton {
    /// Unscrambled sequence (starts at index 1: index 0 is the origin).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Halton { bases: primes(dim), multipliers: vec![1; dim], index: 1 }
    }

    /// Scrambled variant: each dimension's digits are multiplied by a
    /// seed-derived unit modulo the base before radical inversion.
    pub fn scrambled(dim: usize, seed: u64) -> Self {
        assert!(dim >= 1);
        let bases = primes(dim);
        let mut state = seed ^ 0x41AC_7055_EED5_1234;
        let multipliers = bases
            .iter()
            .map(|&b| {
                if b == 2 {
                    1
                } else {
                    1 + splitmix64(&mut state) % (b - 1)
                }
            })
            .collect();
        Halton { bases, multipliers, index: 1 }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.bases.len()
    }

    /// Radical inverse of `i` in base `b` with digit multiplier `m`.
    fn radical_inverse(mut i: u64, b: u64, m: u64) -> f64 {
        let mut f = 1.0;
        let mut r = 0.0;
        let bf = b as f64;
        while i > 0 {
            f /= bf;
            let digit = (i % b * m) % b;
            r += f * digit as f64;
            i /= b;
        }
        r
    }

    /// Next point.
    pub fn next_point(&mut self) -> Vec<f64> {
        let i = self.index;
        self.index += 1;
        self.bases
            .iter()
            .zip(&self.multipliers)
            .map(|(&b, &m)| Self::radical_inverse(i, b, m))
            .collect()
    }

    /// Generate `n` points.
    pub fn sample(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_is_van_der_corput() {
        let mut h = Halton::new(1);
        let expect = [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875];
        for e in expect {
            assert!((h.next_point()[0] - e).abs() < 1e-15);
        }
    }

    #[test]
    fn base3_second_dimension() {
        let mut h = Halton::new(2);
        // Base-3 radical inverses of 1..4: 1/3, 2/3, 1/9, 4/9.
        let expect = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0];
        for e in expect {
            assert!((h.next_point()[1] - e).abs() < 1e-15);
        }
    }

    #[test]
    fn points_in_unit_cube_and_low_discrepancy_mean() {
        let mut h = Halton::scrambled(10, 3);
        let pts = h.sample(2000);
        for d in 0..10 {
            let mean: f64 = pts.iter().map(|p| p[d]).sum::<f64>() / 2000.0;
            assert!((mean - 0.5).abs() < 0.02, "dim {d}: {mean}");
            assert!(pts.iter().all(|p| (0.0..1.0).contains(&p[d])));
        }
    }

    #[test]
    fn scramble_deterministic_and_seed_sensitive() {
        let a = Halton::scrambled(4, 1).sample(8);
        let b = Halton::scrambled(4, 1).sample(8);
        let c = Halton::scrambled(4, 2).sample(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn scramble_preserves_stratification() {
        // A multiplicative digit scramble permutes digits, so each
        // base-b stratum still contains exactly the right point count.
        let mut h = Halton::scrambled(1, 9);
        let pts = h.sample(64); // indices 1..=64 in base 2
        let below = pts.iter().filter(|p| p[0] < 0.5).count() as i64;
        assert!((below - 32).abs() <= 1, "{below}");
    }
}
