//! Adaptive-q hybrid batch BO (after Azimi, Jalali & Fern 2012,
//! "Hybrid Batch Bayesian Optimization").
//!
//! The paper fixes q per run and measures a "breaking point" where
//! larger batches stop paying off; Azimi et al. instead let the model
//! decide each cycle how much parallelism it can stand. Per cycle: a
//! multistart EI maximization picks the leader and its EI value `v0`,
//! then the batch keeps growing Kriging-Believer style — condition on
//! the posterior mean, re-maximize EI — for as long as the fantasy
//! model's best EI stays at least `hybrid_eta · v0`. When conditioning
//! degrades expected one-step improvement below that fraction, the
//! batch stops: a sharp, well-identified optimum yields q = 1
//! (sequential behaviour), a flat uncertain posterior grows the batch
//! up to the configured cap. The chosen q therefore varies cycle to
//! cycle, which is exactly what the variable-q ask/tell surface
//! ([`crate::algorithms::BatchStepper::propose_q`]) exists to carry.

use super::acq_multistart;
use crate::budget::Budget;
use crate::engine::{AlgoConfig, Engine};
use crate::record::RunRecord;
use pbo_acq::single::{optimize_single, ExpectedImprovement};
use pbo_gp::FantasySurrogate;
use pbo_opt::Bounds;
use pbo_problems::Problem;

/// Build one adaptive batch of between 1 and `q_max` candidates.
/// Returns the batch plus the summed multistart restart shortfall
/// (including the final, rejected maximization — its work was done).
pub fn hybrid_batch<S: FantasySurrogate>(
    gp: &S,
    bounds: &Bounds,
    q_max: usize,
    cfg: &AlgoConfig,
    seed: u64,
) -> (Vec<Vec<f64>>, usize) {
    let mut model = gp.clone();
    let mut batch = Vec::with_capacity(q_max);
    let mut shortfall = 0usize;
    let mut v0 = 0.0;
    for i in 0..q_max {
        let f_best = model.best_observed(false);
        let ei = ExpectedImprovement { f_best };
        let ms = acq_multistart(cfg, seed.wrapping_add(i as u64));
        let r = optimize_single(&model as &dyn pbo_gp::Surrogate, &ei, bounds, &[], &ms);
        shortfall += r.restart_shortfall;
        if i == 0 {
            v0 = r.value;
            batch.push(r.x.clone());
            // No expected improvement anywhere (or a NaN value): a
            // vacuous threshold (v_i >= eta·0) must not grow the batch
            // to q_max.
            if v0.is_nan() || v0 <= 0.0 {
                break;
            }
        } else {
            if r.value < cfg.acq.hybrid_eta * v0 {
                break;
            }
            batch.push(r.x.clone());
        }
        if batch.len() < q_max {
            let y_fantasy = model.predict_mean(&r.x);
            match model.condition_on(std::slice::from_ref(&r.x), &[y_fantasy]) {
                Ok(updated) => model = updated,
                // A numerically degenerate conditioning means the
                // fantasy EI is meaningless; stop growing.
                Err(_) => break,
            }
        }
    }
    (batch, shortfall)
}

/// Drive a prepared engine with the adaptive-q hybrid to budget
/// exhaustion.
pub fn drive(e: Engine) -> RunRecord {
    super::drive_stepper(super::AlgorithmKind::HybridQ, e)
}

/// Run the adaptive-q hybrid to budget exhaustion. The budget's q acts
/// as the per-cycle cap `q_max`.
pub fn run(problem: &dyn Problem, budget: Budget, cfg: AlgoConfig, seed: u64) -> RunRecord {
    let e = Engine::builder(problem)
        .budget(budget)
        .config(cfg)
        .seed(seed)
        .algorithm("hybrid-q")
        .build()
        .expect("invalid hybrid-q configuration");
    drive(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use pbo_problems::SyntheticFn;

    #[test]
    fn batch_size_respects_the_cap() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(4, 4).with_initial_samples(10);
        let r = run(&p, budget, AlgoConfig::test_profile(), 3);
        assert_eq!(r.algorithm, "hybrid-q");
        assert_eq!(r.n_cycles(), 4);
        // Every cycle commits between 1 and q_max points.
        let committed = r.n_simulations() - 10;
        assert!(committed >= 4 && committed <= 16, "{committed} points over 4 cycles");
        let doe_best: f64 = r.y_min[..10].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(r.best_y() <= doe_best);
    }

    #[test]
    fn eta_one_is_most_conservative() {
        // eta = 1 only grows the batch while the fantasy EI does not
        // drop at all, so it never commits more points than eta = 0.01.
        let p = SyntheticFn::schwefel(3);
        let budget = Budget::cycles(3, 4).with_initial_samples(10);
        let mut tight = AlgoConfig::test_profile();
        tight.acq.hybrid_eta = 1.0;
        let mut loose = AlgoConfig::test_profile();
        loose.acq.hybrid_eta = 0.01;
        let a = run(&p, budget, tight, 9);
        let b = run(&p, budget, loose, 9);
        assert!(a.n_simulations() <= b.n_simulations());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SyntheticFn::ackley(3);
        let budget = Budget::cycles(2, 3).with_initial_samples(8);
        let a = run(&p, budget, AlgoConfig::test_profile(), 11);
        let b = run(&p, budget, AlgoConfig::test_profile(), 11);
        assert_eq!(a.y_min, b.y_min);
        assert_eq!(a.n_simulations(), b.n_simulations());
    }
}
