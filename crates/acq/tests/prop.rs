//! Property-based tests of acquisition-function invariants.

use pbo_acq::mc::QExpectedImprovement;
use pbo_acq::single::{ExpectedImprovement, ProbabilityOfImprovement, UpperConfidenceBound};
use pbo_acq::Acquisition;
use pbo_gp::kernel::{Kernel, KernelType};
use pbo_gp::GaussianProcess;
use pbo_linalg::Matrix;
use proptest::prelude::*;

fn model(rows: &[(f64, f64, f64)]) -> GaussianProcess {
    let mut x = Matrix::zeros(0, 2);
    let mut y = Vec::new();
    for (a, b, v) in rows {
        x.push_row(&[*a, *b]).unwrap();
        y.push(*v);
    }
    let mut kernel = Kernel::new(KernelType::Matern52, 2);
    kernel.lengthscales = vec![0.35; 2];
    GaussianProcess::new(x, &y, kernel, 1e-4).unwrap()
}

fn data() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec(((0.0f64..1.0), (0.0f64..1.0), (-3.0f64..3.0)), 4..15)
}

/// Constant targets with a near-zero nugget: the target scale bottoms
/// out at its 1e-8 floor, so the raw-scale posterior σ near the
/// training points dips below the criteria's 1e-12 floor.
fn degenerate_model() -> GaussianProcess {
    let pts = [[0.2, 0.2], [0.8, 0.3], [0.5, 0.5], [0.1, 0.9], [0.7, 0.8], [0.4, 0.1]];
    let x = Matrix::from_rows(&pts.iter().map(|p| p.to_vec()).collect::<Vec<_>>()).unwrap();
    let y = vec![0.5; pts.len()];
    let mut kernel = Kernel::new(KernelType::Matern52, 2);
    kernel.lengthscales = vec![0.35; 2];
    GaussianProcess::new(x, &y, kernel, 1e-10).unwrap()
}

#[test]
fn sigma_floor_is_reachable() {
    // Guard that the degenerate model actually exercises the σ floor.
    let gp = degenerate_model();
    let (_, var) = gp.predict(&[0.2, 0.2]);
    assert!(
        var.sqrt() < 1e-12,
        "expected sub-floor σ at a training point, got {}",
        var.sqrt()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ei_decreases_in_f_best_gap(rows in data(), px in 0.0f64..1.0, py in 0.0f64..1.0) {
        // EI with a lower (harder) incumbent is never larger.
        let gp = model(&rows);
        let f0 = gp.best_observed(false);
        let easy = ExpectedImprovement { f_best: f0 + 1.0 };
        let hard = ExpectedImprovement { f_best: f0 - 1.0 };
        let p = [px, py];
        prop_assert!(hard.value(&gp, &p) <= easy.value(&gp, &p) + 1e-12);
    }

    #[test]
    fn ucb_increases_with_beta(rows in data(), px in 0.0f64..1.0, py in 0.0f64..1.0) {
        let gp = model(&rows);
        let low = UpperConfidenceBound { beta: 0.5 };
        let high = UpperConfidenceBound { beta: 3.0 };
        let p = [px, py];
        prop_assert!(high.value(&gp, &p) >= low.value(&gp, &p) - 1e-12);
    }

    #[test]
    fn qei_invariant_under_batch_permutation(rows in data(),
                                             q1 in 0.0f64..1.0, q2 in 0.0f64..1.0,
                                             q3 in 0.0f64..1.0, q4 in 0.0f64..1.0) {
        // q-EI is a symmetric function of the batch; since base samples
        // are coordinate-indexed, use a permutation-averaged check: the
        // estimator differs per ordering, but with a common covariance
        // the *exact* qEI is symmetric — verify the MC estimates agree
        // within the MC tolerance at high sample count.
        let gp = model(&rows);
        let f_best = gp.best_observed(false);
        let qei = QExpectedImprovement::new(f_best, 2, 4096, 9);
        let a = Matrix::from_rows(&[vec![q1, q2], vec![q3, q4]]).unwrap();
        let b = Matrix::from_rows(&[vec![q3, q4], vec![q1, q2]]).unwrap();
        let va = qei.value(&gp, &a);
        let vb = qei.value(&gp, &b);
        prop_assert!((va - vb).abs() < 0.08 * (1.0 + va.abs()),
                     "qEI not permutation-symmetric: {va} vs {vb}");
    }

    #[test]
    fn qei_at_least_max_marginal_ei(rows in data(),
                                    q1 in 0.0f64..1.0, q2 in 0.0f64..1.0,
                                    q3 in 0.0f64..1.0, q4 in 0.0f64..1.0) {
        // qEI of a batch ≥ EI of each member (up to MC error).
        let gp = model(&rows);
        let f_best = gp.best_observed(false);
        let qei = QExpectedImprovement::new(f_best, 2, 4096, 11);
        let ei = ExpectedImprovement { f_best };
        let batch = Matrix::from_rows(&[vec![q1, q2], vec![q3, q4]]).unwrap();
        let v = qei.value(&gp, &batch);
        let m1 = ei.value(&gp, &[q1, q2]);
        let m2 = ei.value(&gp, &[q3, q4]);
        let floor = m1.max(m2);
        prop_assert!(v >= floor - 0.05 * (1.0 + floor), "qEI {v} < max marginal {floor}");
    }

    #[test]
    fn extreme_u_gradients_match_central_differences(rows in data(),
                                                     px in 0.05f64..0.95,
                                                     py in 0.05f64..0.95,
                                                     u in -30.0f64..30.0) {
        // Hardening check for the analytic criteria at extreme
        // improvement scores: synthesize the incumbent so that
        // u = (f_best − μ)/σ takes any prescribed value at the query,
        // then compare every analytic gradient against central finite
        // differences. At u = −30 the EI terms cancel down to
        // ≈ φ(u)/u² ~ 1e-198, so this exercises the far tails of the
        // normal primitives without leaving f64 range.
        let gp = model(&rows);
        let p = [px, py];
        let (mean, var) = gp.predict(&p);
        let sigma = var.sqrt().max(1e-12);
        let f_best = mean + u * sigma;
        let acqs: [&dyn Acquisition; 2] = [
            &ExpectedImprovement { f_best },
            &ProbabilityOfImprovement { f_best },
        ];
        for acq in acqs {
            let (v, g) = acq.value_grad(&gp, &p);
            prop_assert!(v.is_finite(), "{} value not finite at u={u}", acq.name());
            let fd = pbo_opt::fd_gradient(|x| acq.value(&gp, x), &p, 1e-6);
            for j in 0..2 {
                prop_assert!(g[j].is_finite(), "{} grad not finite at u={u}", acq.name());
                let tol = 2e-4 * (1.0 + fd[j].abs() + g[j].abs());
                prop_assert!((g[j] - fd[j]).abs() <= tol,
                             "{} at u={u}: grad[{j}] {} vs fd {}",
                             acq.name(), g[j], fd[j]);
            }
        }
    }

    #[test]
    fn sigma_floor_region_stays_finite_and_consistent(px in 0.0f64..1.0,
                                                      py in 0.0f64..1.0,
                                                      u in -30.0f64..30.0) {
        // A constant-target GP drives the target scale to its 1e-8
        // floor, pushing posterior σ below the criteria's 1e-12 floor
        // near the training points (`sigma_floor_is_reachable` below
        // checks this is not vacuous). Values and gradients must stay
        // finite and EI nonnegative across the floor boundary.
        let gp = degenerate_model();
        let p = [px, py];
        let (mean, var) = gp.predict(&p);
        let f_best = mean + u * var.sqrt().max(1e-12);
        let acqs: [&dyn Acquisition; 2] = [
            &ExpectedImprovement { f_best },
            &ProbabilityOfImprovement { f_best },
        ];
        for acq in acqs {
            let val = acq.value(&gp, &p);
            let (v, g) = acq.value_grad(&gp, &p);
            prop_assert!(val.is_finite() && v.is_finite());
            prop_assert!(g.iter().all(|gi| gi.is_finite()));
        }
        let ei = ExpectedImprovement { f_best };
        prop_assert!(ei.value(&gp, &p) >= 0.0);
    }

    #[test]
    fn qei_gradient_finite_everywhere(rows in data(),
                                      flat in prop::collection::vec(0.0f64..1.0, 6)) {
        let gp = model(&rows);
        let f_best = gp.best_observed(false);
        let qei = QExpectedImprovement::new(f_best, 3, 128, 5);
        let (v, g) = qei.value_grad_flat(&gp, &flat);
        prop_assert!(v.is_finite());
        for gi in &g {
            prop_assert!(gi.is_finite());
        }
    }
}
